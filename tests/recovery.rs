//! Workspace integration tests for the degraded-mode run supervisor's
//! storage and liveness domains: a checkpoint chain damaged at *any* byte
//! of its newest entry still recovers the last-good checkpoint and
//! resumes to the fault-free golden result, a crash after any save is a
//! valid kill point, and a hung oracle worker is converted by the
//! watchdog into a deterministic timeout whose trace does not depend on
//! the worker count.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{
    ChainCheckpointStore, Checkpoint, CheckpointError, CheckpointStore, PpaTuner, PpaTunerConfig,
    SourceData, TuneResult, VecOracle, WatchdogOracle,
};
use proptest::prelude::*;
use testkit::chaos::HangingOracle;
use testkit::trace::canonical_jsonl;

/// Records every checkpoint the tuner writes, so tests can replay the
/// save sequence into fresh on-disk chains and crash anywhere.
#[derive(Default)]
struct CaptureStore {
    all: RefCell<Vec<Checkpoint>>,
}

impl CheckpointStore for CaptureStore {
    fn save(&self, c: &Checkpoint) -> Result<(), CheckpointError> {
        self.all.borrow_mut().push(c.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(self.all.borrow().last().cloned())
    }
}

/// The fault-free reference: one checkpointed run, its golden result, and
/// every checkpoint it saved, computed once and shared by all tests.
struct Fixture {
    candidates: Vec<Vec<f64>>,
    truth: Vec<Vec<f64>>,
    source: SourceData,
    config: PpaTunerConfig,
    golden: TuneResult,
    checkpoints: Vec<Checkpoint>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = Scenario::two_with_counts(9, 90, 70).with_source_budget(50);
        let space = ObjectiveSpace::PowerDelay;
        let (sx, sy) = scenario.source_xy(space);
        let candidates = scenario.target_candidates();
        let truth = scenario.target_table(space);
        let source = SourceData::new(sx, sy).expect("scenario source data");
        let config = PpaTunerConfig {
            initial_samples: 8,
            max_iterations: 12,
            seed: testkit::test_seed(),
            threads: 1,
            ..Default::default()
        };
        let store = CaptureStore::default();
        let mut oracle = VecOracle::new(truth.clone());
        let golden = PpaTuner::new(config.clone())
            .run_checkpointed(&source, &candidates, &mut oracle, &obs::NULL_SINK, &store)
            .expect("fault-free run succeeds");
        let checkpoints = store.all.into_inner();
        assert!(
            checkpoints.len() >= 3,
            "run too short to exercise the chain ({} checkpoints)",
            checkpoints.len()
        );
        Fixture {
            candidates,
            truth,
            source,
            config,
            golden,
            checkpoints,
        }
    })
}

/// A unique scratch directory per call, removed by the caller.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ppatuner_recovery_{tag}_{}_{n}",
        std::process::id()
    ))
}

fn assert_identical(full: &TuneResult, resumed: &TuneResult, label: &str) {
    assert_eq!(
        resumed.pareto_indices, full.pareto_indices,
        "{label}: front"
    );
    assert_eq!(resumed.evaluated, full.evaluated, "{label}: evaluated set");
    assert_eq!(resumed.runs, full.runs, "{label}: runs");
    assert_eq!(resumed.iterations, full.iterations, "{label}: iterations");
    assert_eq!(resumed.delta, full.delta, "{label}: final delta");
    assert_eq!(
        resumed.degraded_fits, full.degraded_fits,
        "{label}: degraded fits"
    );
    assert_eq!(
        (resumed.eval_failures, resumed.eval_retries),
        (full.eval_failures, full.eval_retries),
        "{label}: failure counters"
    );
}

/// Truncating the newest chain entry at every byte boundary — a torn
/// write frozen at any point of the save — always recovers the previous
/// checkpoint, and reports exactly one skipped entry. Exhaustive, not
/// sampled: the digest and the parser must have no lucky prefix.
#[test]
fn every_byte_truncation_recovers_the_last_good_checkpoint() {
    let f = fixture();
    let dir = scratch_dir("truncate");
    let chain = ChainCheckpointStore::new(&dir, 4);
    let n = f.checkpoints.len();
    for c in &f.checkpoints {
        chain.save(c).expect("chain save");
    }
    let newest = dir.join(format!("ckpt-{:08}.json", n - 1));
    let bytes = std::fs::read(&newest).expect("newest entry readable");
    let last_good = &f.checkpoints[n - 2];

    // Untruncated baseline: the newest entry itself is recovered cleanly.
    let clean = chain.recover().expect("clean recover");
    assert_eq!(clean.skipped, 0);
    assert_eq!(
        clean.checkpoint.as_ref().map(Checkpoint::content_digest),
        Some(f.checkpoints[n - 1].content_digest())
    );

    for cut in 0..bytes.len() {
        std::fs::write(&newest, &bytes[..cut]).expect("truncate entry");
        let recovery = chain
            .recover()
            .unwrap_or_else(|e| panic!("recover after cut at byte {cut} failed: {e}"));
        assert_eq!(recovery.skipped, 1, "cut at byte {cut}: skipped");
        assert_eq!(recovery.scanned, 2, "cut at byte {cut}: scanned");
        let got = recovery
            .checkpoint
            .unwrap_or_else(|| panic!("cut at byte {cut}: no checkpoint recovered"));
        assert_eq!(
            got.content_digest(),
            last_good.content_digest(),
            "cut at byte {cut}: recovered the wrong checkpoint"
        );
        assert_eq!(got.next_iteration, last_good.next_iteration);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A crash after any checkpoint save is a valid kill point: replaying the
/// save prefix into a fresh on-disk chain and resuming from it lands on
/// the golden result, bit for bit.
#[test]
fn chain_resume_from_every_kill_point_matches_the_golden_run() {
    let f = fixture();
    for k in 0..f.checkpoints.len() {
        let dir = scratch_dir("killpoint");
        let chain = ChainCheckpointStore::new(&dir, 3);
        for c in &f.checkpoints[..=k] {
            chain.save(c).expect("chain save");
        }
        let mut oracle = VecOracle::new(f.truth.clone());
        let resumed = PpaTuner::new(f.config.clone())
            .resume(
                &f.source,
                &f.candidates,
                &mut oracle,
                &obs::NULL_SINK,
                &chain,
            )
            .unwrap_or_else(|e| panic!("resume from kill point {k} failed: {e}"));
        assert_identical(&f.golden, &resumed, &format!("kill point {k}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Resume through a torn newest entry: recovery scans back to the
    /// last-good checkpoint, announces the scan as a `RecoveryScan`
    /// trace event, and the resumed run still reproduces the golden
    /// result exactly.
    #[test]
    fn truncated_chain_still_resumes_to_the_golden_result(cut in 0usize..1 << 20) {
        let f = fixture();
        let dir = scratch_dir("resume");
        let chain = ChainCheckpointStore::new(&dir, 4);
        let n = f.checkpoints.len();
        for c in &f.checkpoints {
            chain.save(c).expect("chain save");
        }
        let newest = dir.join(format!("ckpt-{:08}.json", n - 1));
        let bytes = std::fs::read(&newest).expect("newest entry readable");
        let cut = cut % bytes.len();
        std::fs::write(&newest, &bytes[..cut]).expect("truncate entry");

        let sink = obs::RecordingSink::new();
        let mut oracle = VecOracle::new(f.truth.clone());
        let resumed = PpaTuner::new(f.config.clone())
            .resume(&f.source, &f.candidates, &mut oracle, &sink, &chain)
            .expect("resume through the torn entry");
        std::fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(&resumed.pareto_indices, &f.golden.pareto_indices);
        prop_assert_eq!(resumed.runs, f.golden.runs);
        prop_assert_eq!(resumed.iterations, f.golden.iterations);
        prop_assert_eq!(sink.count("RecoveryScan"), 1, "cut at byte {}", cut);
        let scan_ok = sink.events().iter().any(|e| matches!(
            e,
            obs::Event::RecoveryScan { scanned: 2, skipped: 1, .. }
        ));
        prop_assert!(scan_ok, "RecoveryScan must report the one skipped entry");
    }
}

/// A hung worker becomes a deterministic watchdog timeout: every first
/// attempt stalls past the deadline, the watchdog converts each stall
/// into `EvalError::Timeout`, the retry succeeds, and the canonical
/// trace — watchdog firings included — is byte-identical whether one
/// worker or four served the waves.
#[test]
fn watchdog_timeouts_are_worker_count_invariant() {
    // The golden batch scenario — the one configuration the invariant
    // checker is proven against (`run_golden_batch`) — with every
    // candidate's first attempt stalled past the deadline.
    let scenario = Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let truth = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("golden scenario source data");
    let run = |workers: usize| {
        let config = PpaTunerConfig {
            initial_samples: 10,
            max_iterations: 20,
            tau: 3.0, // matches run_golden; see the comment there
            max_eval_attempts: 3,
            seed: testkit::test_seed(),
            threads: 1,
            batch_size: 4,
            eval_workers: workers,
            ..Default::default()
        };
        let hangs: Vec<(usize, usize)> = (0..truth.len()).map(|i| (i, 1)).collect();
        let oracle = WatchdogOracle::new(HangingOracle::new(truth.clone(), hangs, 5.0), 0.05);
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(config)
            .run_concurrent(&source, &candidates, &oracle, &sink)
            .expect("watchdogged run completes");
        (result, sink.events())
    };

    let (serial, serial_events) = run(1);
    let (wide, wide_events) = run(4);
    assert_identical(&serial, &wide, "worker counts");
    assert!(
        serial.eval_failures > 0,
        "every candidate hangs once; failures must be visible"
    );

    let fired = serial_events
        .iter()
        .filter(|e| matches!(e, obs::Event::WatchdogFired { .. }))
        .count();
    assert!(fired > 0, "the watchdog never fired");
    assert_eq!(
        fired, serial.eval_failures,
        "each failure here is a watchdog timeout"
    );
    for e in &serial_events {
        if let obs::Event::WatchdogFired { deadline_s, .. } = e {
            assert_eq!(*deadline_s, 0.05, "deadline is configured, not measured");
        }
    }

    let report = testkit::invariants::check_trace(&serial_events, Some(&truth))
        .expect("watchdogged trace is lawful");
    assert_eq!(report.watchdog_firings, fired);

    assert_eq!(
        canonical_jsonl(&serial_events),
        canonical_jsonl(&wide_events),
        "canonical traces must not depend on the worker count"
    );
}

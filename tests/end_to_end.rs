//! Workspace integration tests: the full pipeline from netlist generation
//! through benchmark construction, tuning, and metric evaluation.

use benchgen::{Benchmark, BenchmarkId, Scenario};
use pdsim::{Design, ObjectiveSpace, PdFlow, ToolParams};
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

/// A reduced-scale Scenario Two shared by several tests.
fn small_scenario() -> Scenario {
    Scenario::two_with_counts(9, 120, 100).with_source_budget(60)
}

#[test]
fn benchmarks_feed_the_tuner_end_to_end() {
    let scenario = small_scenario();
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("consistent source");

    let mut oracle = VecOracle::new(table.clone());
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 10,
        seed: testkit::test_seed(),
        ..Default::default()
    };
    let result = PpaTuner::new(config)
        .run(&source, &candidates, &mut oracle)
        .expect("tuning succeeds");

    assert!(!result.pareto_indices.is_empty());
    assert!(result.runs <= 20);
    // The final set must be mutually non-dominated in golden values.
    for &i in &result.pareto_indices {
        for &j in &result.pareto_indices {
            if i != j {
                assert!(
                    !pareto::dominance::dominates(&table[i], &table[j]),
                    "{i} dominates {j} in the final set"
                );
            }
        }
    }
}

#[test]
fn tuning_beats_random_search_on_average() {
    let scenario = small_scenario();
    let space = ObjectiveSpace::AreaPowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = pareto::hypervolume::reference_point(&table, 1.1).expect("ref");
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");

    let hv_of = |indices: &[usize]| {
        let pts: Vec<Vec<f64>> = indices.iter().map(|&i| table[i].clone()).collect();
        pareto::hypervolume::hypervolume_error(&golden, &pts, &reference).expect("hv")
    };

    let mut tuner_sum = 0.0;
    let mut random_sum = 0.0;
    let seeds = testkit::test_seeds(3);
    for &seed in &seeds {
        let mut oracle = VecOracle::new(table.clone());
        let config = PpaTunerConfig {
            initial_samples: 10,
            max_iterations: 12,
            seed,
            ..Default::default()
        };
        let r = PpaTuner::new(config)
            .run(&source, &candidates, &mut oracle)
            .expect("tuning succeeds");
        tuner_sum += hv_of(&r.pareto_indices);

        let mut oracle = VecOracle::new(table.clone());
        let rs = baselines::RandomSearch::new(22, seed)
            .tune(&candidates, &mut oracle)
            .expect("random search");
        random_sum += hv_of(&rs.pareto_indices);
    }
    assert!(
        tuner_sum <= random_sum + 1e-9,
        "tuner mean HV {} should not lose to random {}",
        tuner_sum / seeds.len() as f64,
        random_sum / seeds.len() as f64
    );
}

#[test]
fn all_baselines_run_on_generated_benchmarks() {
    let scenario = small_scenario();
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");

    let mut o = VecOracle::new(table.clone());
    assert!(baselines::Tcad19::new(baselines::Tcad19Params {
        budget: 20,
        initial_samples: 8,
        seed: testkit::test_seed(),
        ..Default::default()
    })
    .tune(&candidates, &mut o)
    .is_ok());

    let mut o = VecOracle::new(table.clone());
    assert!(baselines::Mlcad19::new(baselines::Mlcad19Params {
        budget: 16,
        initial_samples: 8,
        seed: testkit::test_seed(),
        ..Default::default()
    })
    .tune(&candidates, &mut o)
    .is_ok());

    let mut o = VecOracle::new(table.clone());
    assert!(baselines::Dac19::new(baselines::Dac19Params {
        budget: 20,
        initial_samples: 10,
        seed: testkit::test_seed(),
        ..Default::default()
    })
    .tune(&candidates, &mut o)
    .is_ok());

    let mut o = VecOracle::new(table.clone());
    assert!(baselines::Aspdac20::new(baselines::Aspdac20Params {
        budget: 16,
        initial_samples: 8,
        seed: testkit::test_seed(),
        ..Default::default()
    })
    .tune(&source, &candidates, &mut o)
    .is_ok());
}

#[test]
fn table1_spaces_bind_onto_the_flow() {
    // Every benchmark's configurations must be convertible to ToolParams
    // and runnable through the matching design's flow.
    for id in BenchmarkId::ALL {
        let bench = Benchmark::generate_with_count(id, 12);
        let space = id.space();
        let flow = PdFlow::new(id.design());
        for c in bench.configs() {
            let params = ToolParams::from_config(&space, c).expect("config binds");
            let qor = flow.run(&params);
            assert!(qor.is_valid(), "{id}: invalid QoR {qor}");
        }
    }
}

#[test]
fn scenario_candidates_are_jointly_encoded() {
    let scenario = small_scenario();
    // Joint encoding: all coordinates in the unit cube, dimension equals
    // the Table 1 space dimension.
    for p in scenario.target_candidates() {
        assert_eq!(p.len(), 9);
        assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }
    let (sx, _) = scenario.source_xy(ObjectiveSpace::PowerDelay);
    for p in sx {
        assert_eq!(p.len(), 9);
        assert!(p.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }
}

#[test]
fn live_flow_oracle_counts_runs() {
    use ppatuner::{CountingOracle, QorOracle};
    let flow = PdFlow::new(Design::mac_small(3));
    let space = BenchmarkId::Source2.space();
    let bench = Benchmark::generate_with_count(BenchmarkId::Source2, 5);
    let configs: Vec<_> = bench.configs().to_vec();
    let mut oracle = CountingOracle::new(|i: usize| {
        let params = ToolParams::from_config(&space, &configs[i]).expect("valid");
        flow.run(&params).project(ObjectiveSpace::AreaPowerDelay)
    });
    let y = oracle.evaluate(0).expect("closure oracles are infallible");
    assert_eq!(y.len(), 3);
    assert_eq!(oracle.runs(), 1);
}

#[test]
fn golden_fronts_are_stable_across_regeneration() {
    let a = Benchmark::generate_with_count(BenchmarkId::Target2, 80);
    let b = Benchmark::generate_with_count(BenchmarkId::Target2, 80);
    assert_eq!(
        a.golden_front(ObjectiveSpace::PowerDelay),
        b.golden_front(ObjectiveSpace::PowerDelay)
    );
}

//! Workspace-level golden-trace gate: replays the reference scenario and
//! diffs its canonical event stream against the committed snapshot, so a
//! plain `cargo test` at the workspace root catches behavioral drift even
//! when `-p testkit` is not run explicitly.
//!
//! Re-bless after an intentional change with
//! `TESTKIT_BLESS=1 cargo test -p testkit` and commit the diff.

use testkit::invariants::check_trace;
use testkit::trace::{canonical_jsonl, check_or_bless, run_golden};

#[test]
fn golden_trace_matches_committed_snapshot() {
    let run = run_golden();
    let canonical = canonical_jsonl(&run.events);
    check_or_bless("scenario_two_seeded.jsonl", &canonical);
    // The same stream must also satisfy every cross-crate invariant
    // against the scenario's hidden truth table.
    let report = check_trace(&run.events, Some(&run.table)).expect("invariants hold");
    assert!(report.pareto_checked >= 1, "vacuous run: {report:?}");
}

//! Property-based tests of the tuner's invariants on randomized toy
//! landscapes.

use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};
use proptest::prelude::*;

/// Strategy: a random bi-objective landscape over 1-D candidates with
/// values in (0, 3).
fn landscape(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.05f64..3.0, 0.05f64..3.0), n)
        .prop_map(|pts| pts.into_iter().map(|(a, b)| vec![a, b]).collect())
}

/// Derives the tuner seed from the workspace-wide base seed
/// ([`testkit::test_seed`]) and the case's salt, so every randomized test
/// reseeds through the same helper instead of ad-hoc constants.
fn quick_config(salt: u64) -> PpaTunerConfig {
    PpaTunerConfig {
        initial_samples: 6,
        max_iterations: 8,
        refit_every: 10,
        fit_budget: gp::optimize::FitBudget {
            restarts: 1,
            evals_per_restart: 40,
        },
        threads: 1,
        seed: testkit::test_seed() ^ salt,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn final_set_is_mutually_nondominated(truth in landscape(24), seed in 0u64..50) {
        let candidates: Vec<Vec<f64>> =
            (0..truth.len()).map(|i| vec![i as f64 / 23.0]).collect();
        let mut oracle = VecOracle::new(truth.clone());
        let result = PpaTuner::new(quick_config(seed))
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        prop_assert!(!result.pareto_indices.is_empty());
        for &i in &result.pareto_indices {
            for &j in &result.pareto_indices {
                if i != j {
                    prop_assert!(!pareto::dominance::dominates(&truth[i], &truth[j]));
                }
            }
        }
    }

    #[test]
    fn runs_are_bounded_by_budget(truth in landscape(20), seed in 0u64..50) {
        let candidates: Vec<Vec<f64>> =
            (0..truth.len()).map(|i| vec![i as f64 / 19.0]).collect();
        let mut oracle = VecOracle::new(truth);
        let cfg = quick_config(seed);
        let budget = cfg.initial_samples + cfg.max_iterations * cfg.batch_size;
        let result = PpaTuner::new(cfg)
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        prop_assert!(result.runs <= budget, "runs {} > budget {budget}", result.runs);
        prop_assert_eq!(result.runs, result.evaluated.len());
    }

    #[test]
    fn final_set_covers_the_best_measured_point(truth in landscape(20), seed in 0u64..50) {
        // The measured front is always folded into the final set, so the
        // scalarization-best measured point must be weakly covered.
        let candidates: Vec<Vec<f64>> =
            (0..truth.len()).map(|i| vec![i as f64 / 19.0]).collect();
        let mut oracle = VecOracle::new(truth.clone());
        let result = PpaTuner::new(quick_config(seed))
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        let best_measured = result
            .evaluated
            .iter()
            .min_by(|a, b| {
                (a.1[0] + a.1[1])
                    .partial_cmp(&(b.1[0] + b.1[1]))
                    .unwrap()
            })
            .map(|(i, _)| *i)
            .unwrap();
        let covered = result.pareto_indices.iter().any(|&i| {
            i == best_measured
                || pareto::dominance::weakly_dominates(&truth[i], &truth[best_measured])
        });
        prop_assert!(covered, "best measured point neither kept nor dominated");
    }
}

//! End-to-end check of the telemetry contract: a real (small) tuning run
//! observed through the recording sink emits a complete, consistent trace.

use obs::{Event, RecordingSink};
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

#[test]
fn small_run_emits_a_complete_trace() {
    let scenario = benchgen::Scenario::two_with_counts(11, 160, 120);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");
    let config = PpaTunerConfig {
        initial_samples: 12,
        max_iterations: 6,
        seed: 3,
        ..Default::default()
    };
    let mut oracle = VecOracle::new(scenario.target_table(space));

    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("tuning succeeds");
    assert!(
        result.iterations > 0,
        "run must iterate to exercise the trace"
    );

    let events = sink.events();
    assert_eq!(sink.count("RunStart"), 1);
    assert_eq!(sink.count("RunEnd"), 1);

    // Every iteration of Algorithm 1 contributes at least one GP fit (one
    // per objective), one tool evaluation, and exactly one IterationEnd.
    // The final iteration may classify every remaining candidate and stop
    // without selecting anything, so it alone is exempt from ToolEval.
    for t in 0..result.iterations {
        let of = |kind: &str| {
            events
                .iter()
                .filter(|e| e.kind() == kind && e.iteration() == Some(t))
                .count()
        };
        assert!(of("GpFit") >= 1, "iteration {t}: no GpFit event");
        if t + 1 < result.iterations {
            assert!(of("ToolEval") >= 1, "iteration {t}: no ToolEval event");
        }
        assert_eq!(of("IterationEnd"), 1, "iteration {t}: IterationEnd count");
    }

    // Trace totals match the result's accounting.
    assert_eq!(sink.count("IterationEnd"), result.history.len());
    assert_eq!(
        sink.count("ToolEval"),
        result.runs + result.verification_runs
    );

    // Causal spans: starts and ends pair up, and the tree covers the run,
    // every iteration, and every successful evaluation attempt.
    assert_eq!(sink.count("SpanStart"), sink.count("SpanEnd"));
    assert!(
        sink.count("SpanStart") >= 1 + result.iterations + result.runs + result.verification_runs,
        "span tree too sparse: {} spans",
        sink.count("SpanStart")
    );
    // One resource sample per iteration, with real work attributed to it.
    assert_eq!(sink.count("ResourceSample"), result.iterations);
    let busy = events.iter().any(|e| {
        matches!(e, Event::ResourceSample { chol_flops, kernel_assemblies, .. }
            if *chol_flops > 0 && *kernel_assemblies > 0)
    });
    assert!(busy, "no iteration recorded Cholesky/kernel work");

    // The trace is JSONL-serializable end to end.
    for e in &events {
        let line = serde_json::to_string(e).expect("event serializes");
        assert_eq!(serde_json::from_str::<Event>(&line).expect("parses"), *e);
    }
}

//! Workspace integration tests for checkpoint/resume: a run interrupted at
//! an arbitrary checkpoint and resumed from disk must finish with exactly
//! the same `TuneResult` as the uninterrupted run — fault-free or under
//! deterministic fault injection with a fresh oracle process.

use std::cell::RefCell;

use benchgen::Scenario;
use pdsim::{FaultPlan, ObjectiveSpace};
use ppatuner::{
    Checkpoint, CheckpointError, CheckpointStore, FileCheckpointStore, PpaTuner, PpaTunerConfig,
    SourceData, TuneResult, VecOracle,
};
use testkit::chaos::FaultyVecOracle;

/// Records every checkpoint the tuner writes so tests can simulate a crash
/// at any boundary, not just the last one.
#[derive(Default)]
struct CaptureStore {
    all: RefCell<Vec<Checkpoint>>,
}

impl CheckpointStore for CaptureStore {
    fn save(&self, c: &Checkpoint) -> Result<(), CheckpointError> {
        self.all.borrow_mut().push(c.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(self.all.borrow().last().cloned())
    }
}

struct Setup {
    candidates: Vec<Vec<f64>>,
    truth: Vec<Vec<f64>>,
    source: SourceData,
    config: PpaTunerConfig,
}

fn setup() -> Setup {
    let scenario = Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let (sx, sy) = scenario.source_xy(space);
    Setup {
        candidates: scenario.target_candidates(),
        truth: scenario.target_table(space),
        source: SourceData::new(sx, sy).expect("scenario source data"),
        config: PpaTunerConfig {
            initial_samples: 10,
            max_iterations: 15,
            seed: testkit::test_seed(),
            threads: 1,
            ..Default::default()
        },
    }
}

fn assert_identical(full: &TuneResult, resumed: &TuneResult, label: &str) {
    assert_eq!(
        resumed.pareto_indices, full.pareto_indices,
        "{label}: front"
    );
    assert_eq!(resumed.evaluated, full.evaluated, "{label}: evaluated set");
    assert_eq!(resumed.runs, full.runs, "{label}: runs");
    assert_eq!(
        resumed.verification_runs, full.verification_runs,
        "{label}: verification runs"
    );
    assert_eq!(resumed.iterations, full.iterations, "{label}: iterations");
    assert_eq!(resumed.delta, full.delta, "{label}: final delta");
    assert_eq!(resumed.quarantined, full.quarantined, "{label}: quarantine");
    assert_eq!(
        (resumed.eval_failures, resumed.eval_retries),
        (full.eval_failures, full.eval_retries),
        "{label}: failure counters"
    );
    // History rows carry wall-clock timings; compare the structural part.
    let shape = |r: &TuneResult| -> Vec<(usize, usize, usize, usize, usize, usize)> {
        r.history
            .iter()
            .map(|h| {
                (
                    h.iteration,
                    h.undecided,
                    h.pareto,
                    h.dropped,
                    h.quarantined,
                    h.runs,
                )
            })
            .collect()
    };
    assert_eq!(shape(resumed), shape(full), "{label}: iteration history");
}

/// Every checkpoint of a fault-free run is a valid crash point: resuming
/// from each — through an on-disk store, like a real restart would — lands
/// on the identical final result.
#[test]
fn resume_from_every_checkpoint_matches_the_uninterrupted_run() {
    let s = setup();
    let store = CaptureStore::default();
    let mut oracle = VecOracle::new(s.truth.clone());
    let full = PpaTuner::new(s.config.clone())
        .run_checkpointed(
            &s.source,
            &s.candidates,
            &mut oracle,
            &obs::NULL_SINK,
            &store,
        )
        .expect("uninterrupted run succeeds");

    let checkpoints = store.all.borrow();
    assert!(
        checkpoints.len() >= 2,
        "run too short to exercise resume ({} checkpoints)",
        checkpoints.len()
    );
    let dir = std::env::temp_dir().join(format!("ppatuner_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (k, ckpt) in checkpoints.iter().enumerate() {
        let file = FileCheckpointStore::new(dir.join(format!("crash_at_{k}.json")));
        file.save(ckpt).expect("checkpoint persists");
        let mut oracle = VecOracle::new(s.truth.clone());
        let resumed = PpaTuner::new(s.config.clone())
            .resume(
                &s.source,
                &s.candidates,
                &mut oracle,
                &obs::NULL_SINK,
                &file,
            )
            .unwrap_or_else(|e| panic!("resume from checkpoint {k} failed: {e}"));
        assert_identical(&full, &resumed, &format!("checkpoint {k}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume also replays through injected failures: a fresh faulty oracle
/// (attempt counters reset, as after a real process crash) regenerates the
/// same fault stream, and the resumed run matches the original exactly —
/// retries, quarantines, and all.
#[test]
fn resume_replays_faithfully_under_fault_injection() {
    let s = setup();
    let plan = FaultPlan {
        seed: 1009,
        crash_prob: 0.12,
        timeout_prob: 0.06,
        nan_prob: 0.04,
        outlier_prob: 0.03,
        flaky_max_failures: 2,
        always_fail: vec![27, 56],
        ..FaultPlan::default()
    };
    let config = PpaTunerConfig {
        max_eval_attempts: plan.flaky_max_failures + 2,
        ..s.config.clone()
    };

    let store = CaptureStore::default();
    let mut oracle = FaultyVecOracle::new(s.truth.clone(), plan.clone());
    let full = PpaTuner::new(config.clone())
        .run_checkpointed(
            &s.source,
            &s.candidates,
            &mut oracle,
            &obs::NULL_SINK,
            &store,
        )
        .expect("chaotic run completes");
    assert!(full.eval_failures > 0, "the plan should have injected");

    let checkpoints = store.all.borrow();
    assert!(checkpoints.len() >= 2);
    for k in [0, checkpoints.len() / 2, checkpoints.len() - 1] {
        let crash_point = CaptureStore::default();
        crash_point.save(&checkpoints[k]).unwrap();
        let mut fresh = FaultyVecOracle::new(s.truth.clone(), plan.clone());
        let resumed = PpaTuner::new(config.clone())
            .resume(
                &s.source,
                &s.candidates,
                &mut fresh,
                &obs::NULL_SINK,
                &crash_point,
            )
            .unwrap_or_else(|e| panic!("faulty resume from checkpoint {k} failed: {e}"));
        assert_identical(&full, &resumed, &format!("faulty checkpoint {k}"));
    }
}

/// Mid-run resume of a q-batch concurrent run: checkpoints land on whole
/// batch boundaries, and resuming from any of them replays the earlier
/// waves silently, then re-emits the remaining ones with the *same batch
/// composition and span IDs* as the uninterrupted run — the resumed
/// trace's batch events are an exact suffix of the full trace's.
#[test]
fn concurrent_resume_replays_whole_batches_with_identical_spans() {
    use ppatuner::SharedOracle;

    let s = setup();
    let config = PpaTunerConfig {
        batch_size: 4,
        eval_workers: 4,
        ..s.config.clone()
    };
    // Only the events that pin batch structure: which members each wave
    // took, and the causal span IDs of the fan-out.
    let batch_shape = |events: &[obs::Event]| -> Vec<String> {
        events
            .iter()
            .filter_map(|e| match e {
                obs::Event::BatchSelect {
                    iteration,
                    q,
                    chosen,
                    ..
                } => Some(format!("select it={iteration} q={q} chosen={chosen:?}")),
                obs::Event::SpanStart { id, parent, name }
                    if name == "batch_eval" || name == "eval_attempt" =>
                {
                    Some(format!("span {name} id={id} parent={parent:?}"))
                }
                _ => None,
            })
            .collect()
    };

    let store = CaptureStore::default();
    let oracle = SharedOracle::new(VecOracle::new(s.truth.clone()));
    let full_sink = obs::RecordingSink::new();
    let full = PpaTuner::new(config.clone())
        .run_concurrent_checkpointed(&s.source, &s.candidates, &oracle, &full_sink, &store)
        .expect("uninterrupted batch run succeeds");
    let full_shape = batch_shape(&full_sink.events());
    assert!(
        full_shape.iter().any(|l| l.starts_with("select")),
        "run never batch-selected: {full_shape:?}"
    );

    let checkpoints = store.all.borrow();
    assert!(checkpoints.len() >= 2);
    for (k, ckpt) in checkpoints.iter().enumerate() {
        let crash_point = CaptureStore::default();
        crash_point.save(ckpt).unwrap();
        let fresh = SharedOracle::new(VecOracle::new(s.truth.clone()));
        let resumed_sink = obs::RecordingSink::new();
        let resumed = PpaTuner::new(config.clone())
            .resume_concurrent(
                &s.source,
                &s.candidates,
                &fresh,
                &resumed_sink,
                &crash_point,
            )
            .unwrap_or_else(|e| panic!("batch resume from checkpoint {k} failed: {e}"));
        assert_identical(&full, &resumed, &format!("batch checkpoint {k}"));
        let resumed_shape = batch_shape(&resumed_sink.events());
        assert!(
            resumed_shape.len() <= full_shape.len(),
            "checkpoint {k}: resumed trace has extra batch events"
        );
        assert_eq!(
            resumed_shape.as_slice(),
            &full_shape[full_shape.len() - resumed_shape.len()..],
            "checkpoint {k}: resumed batch events are not a suffix of the full trace"
        );
    }
}

/// A checkpoint from a different configuration (different seed, so a
/// different config digest) is refused instead of silently producing a
/// diverged run.
#[test]
fn resume_refuses_a_checkpoint_from_another_run() {
    let s = setup();
    let store = CaptureStore::default();
    let mut oracle = VecOracle::new(s.truth.clone());
    PpaTuner::new(s.config.clone())
        .run_checkpointed(
            &s.source,
            &s.candidates,
            &mut oracle,
            &obs::NULL_SINK,
            &store,
        )
        .expect("run succeeds");

    let other = PpaTunerConfig {
        seed: s.config.seed + 1,
        ..s.config.clone()
    };
    let mut oracle = VecOracle::new(s.truth.clone());
    let err = PpaTuner::new(other)
        .resume(
            &s.source,
            &s.candidates,
            &mut oracle,
            &obs::NULL_SINK,
            &store,
        )
        .expect_err("foreign checkpoint must be rejected");
    assert!(
        matches!(err, ppatuner::TunerError::Checkpoint { .. }),
        "unexpected error: {err}"
    );
}

//! Figure 2 of the paper, as runnable code: uncertainty regions, their
//! monotone shrinkage (Eq. 10), and the δ-classification rules
//! (Eqs. 11–12) on a hand-crafted two-objective example.
//!
//! Run with: `cargo run --example uncertainty_regions`

use ppatuner::{classify, Status, UncertaintyRegion};

fn main() {
    // Three candidates in a (power, delay) space:
    //   a: measured exactly at (2, 2)        — a strong trade-off point;
    //   b: uncertain box around (1.5, 3.5)   — might extend the front;
    //   c: uncertain box around (4, 4)       — probably dominated.
    let a = UncertaintyRegion::point(&[2.0, 2.0]);

    let mut b = UncertaintyRegion::unbounded(2);
    b.intersect(&[1.0, 3.0], &[2.0, 4.0]);

    let mut c = UncertaintyRegion::unbounded(2);
    c.intersect(&[3.0, 3.0], &[5.0, 5.0]);

    let regions = vec![a, b, c];
    let mut statuses = vec![Status::Undecided; 3];
    let delta = [0.1, 0.1];

    println!("iteration 1: wide model uncertainty");
    for (i, r) in regions.iter().enumerate() {
        println!(
            "  candidate {i}: optimistic {:?}, pessimistic {:?}, diameter {:.3}",
            r.optimistic(),
            r.pessimistic(),
            r.diameter()
        );
    }
    let outcome = classify(&regions, &mut statuses, &delta);
    println!(
        "  dropped: {:?}, promoted: {:?}",
        outcome.dropped, outcome.promoted
    );
    println!("  statuses: {statuses:?}");

    // The model saw more data: candidate b's region shrinks (Eq. 10 —
    // intersection can only tighten), candidate c is unchanged.
    let mut regions = regions;
    regions[1].intersect(&[1.2, 3.1], &[1.6, 3.6]);
    println!(
        "\niteration 2: candidate 1 tightened to {:?} .. {:?}",
        regions[1].optimistic(),
        regions[1].pessimistic()
    );
    let outcome = classify(&regions, &mut statuses, &delta);
    println!(
        "  dropped: {:?}, promoted: {:?}",
        outcome.dropped, outcome.promoted
    );
    println!("  statuses: {statuses:?}");
    println!("\nδ-accuracy: every promoted candidate is at most δ = {delta:?} worse\nthan any true Pareto point in each objective (Eq. 12).");
}

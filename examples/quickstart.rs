//! Quickstart: tune the physical-design flow of a small MAC design over
//! the power–delay trade-off, transferring knowledge from a source task.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;

use benchgen::Scenario;
use obs::{Event, Observer, StderrSink, Verbosity};
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-scale version of the paper's Scenario Two: a 1440-point
    // source benchmark on the small MAC and a 727-point target benchmark
    // on the large MAC, here shrunk to keep the example fast.
    let scenario = Scenario::two_with_counts(42, 300, 250);
    let space = ObjectiveSpace::PowerDelay;

    // Tool-parameter configurations of the target task, unit-cube encoded.
    let candidates = scenario.target_candidates();

    // The "PD tool": here a precomputed golden table; swap in any
    // `QorOracle` implementation to drive a live flow.
    let mut oracle = VecOracle::new(scenario.target_table(space));

    // 200 historical tool runs from the source task.
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy)?;

    let config = PpaTunerConfig {
        initial_samples: 16,
        max_iterations: 20,
        seed: 7,
        ..Default::default()
    };
    // A quiet stderr sink: only run-level telemetry, no per-iteration noise.
    let sink = StderrSink::new(Verbosity::Quiet);
    let t0 = Instant::now();
    let result = PpaTuner::new(config).run_observed(&source, &candidates, &mut oracle, &sink)?;

    println!(
        "tuned with {} tool runs (+{} verification runs), {} iterations",
        result.runs, result.verification_runs, result.iterations
    );
    println!("predicted Pareto-optimal configurations:");
    let table = scenario.target_table(space);
    for &i in &result.pareto_indices {
        println!(
            "  candidate {:>4}: power = {:6.3} mW, delay = {:6.4} ns",
            i, table[i][0], table[i][1]
        );
    }

    // How good is it? Compare against the golden front of the benchmark.
    let golden = scenario.target().golden_front(space);
    let predicted: Vec<Vec<f64>> = result
        .pareto_indices
        .iter()
        .map(|&i| table[i].clone())
        .collect();
    let reference = pareto::hypervolume::reference_point(&table, 1.1)?;
    let hv_err = pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)?;
    let adrs = pareto::metrics::adrs(&golden, &predicted)?;
    println!("hypervolume error = {hv_err:.4}, ADRS = {adrs:.4}");
    sink.emit(&Event::Message {
        text: format!(
            "quickstart: {:.2} s wall-clock, {} tool runs, hypervolume error {hv_err:.4}",
            t0.elapsed().as_secs_f64(),
            result.runs
        ),
    });
    Ok(())
}

//! Scenario One of the paper (§4.2.1): same design, different parameter
//! preferences. Shows the value of transferring source-task knowledge by
//! running the tuner with and without the historical data.
//!
//! Run with: `cargo run --release --example scenario_same_design`

use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced-scale Source1 → Target1 (full scale is 5000 + 5000 points).
    let scenario = Scenario::one_with_counts(1, 600, 500).with_source_budget(200);
    let space = ObjectiveSpace::AreaPowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = pareto::hypervolume::reference_point(&table, 1.1)?;

    let (sx, sy) = scenario.source_xy(space);
    let with_history = SourceData::new(sx, sy)?;

    println!(
        "Scenario One: tuning {} candidates in {} objectives",
        candidates.len(),
        space.dim()
    );
    for (label, source) in [
        ("with transfer", with_history),
        ("without transfer", SourceData::empty()),
    ] {
        let config = PpaTunerConfig {
            initial_samples: 25,
            max_iterations: 20,
            seed: 11,
            ..Default::default()
        };
        let mut oracle = VecOracle::new(table.clone());
        let result = PpaTuner::new(config).run(&source, &candidates, &mut oracle)?;
        let predicted: Vec<Vec<f64>> = result
            .pareto_indices
            .iter()
            .map(|&i| table[i].clone())
            .collect();
        let hv = pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)?;
        let adrs = pareto::metrics::adrs(&golden, &predicted)?;
        println!(
            "{label:<18}: HV error = {hv:.4}, ADRS = {adrs:.4}, runs = {}, |front| = {}",
            result.runs,
            result.pareto_indices.len()
        );
    }
    Ok(())
}

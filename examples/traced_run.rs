//! A tuning run with full telemetry: human-readable progress on stderr plus
//! a machine-readable JSONL trace on disk.
//!
//! Run with: `cargo run --release --example traced_run`
//!
//! Then aggregate the trace into a timing/convergence report:
//! `cargo run -p bench --release --bin trace_report -- traced_run.jsonl`

use obs::{JsonlSink, MultiSink, Observer, StderrSink, Verbosity};
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = benchgen::Scenario::two_with_counts(42, 300, 250);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let mut oracle = VecOracle::new(scenario.target_table(space));
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy)?;

    // Two sinks fanned out behind one observer: per-iteration progress for
    // the terminal, and every event — GP hyperparameters, per-evaluation
    // QoR, classification counts — to traced_run.jsonl for offline digging.
    let stderr = StderrSink::new(Verbosity::Normal);
    let jsonl = JsonlSink::create("traced_run.jsonl")?;
    let mut observer = MultiSink::new();
    observer.push(&stderr);
    observer.push(&jsonl);

    let config = PpaTunerConfig {
        initial_samples: 16,
        max_iterations: 20,
        seed: 7,
        ..Default::default()
    };
    let result =
        PpaTuner::new(config).run_observed(&source, &candidates, &mut oracle, &observer)?;
    jsonl.flush();

    println!(
        "done: {} tool runs over {} iterations, {} Pareto-optimal configurations",
        result.runs,
        result.iterations,
        result.pareto_indices.len()
    );
    println!("trace written to traced_run.jsonl; summarize it with:");
    println!("  cargo run -p bench --release --bin trace_report -- traced_run.jsonl");
    Ok(())
}

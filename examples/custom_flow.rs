//! Driving the tuner against a **live** PD flow instead of a precomputed
//! table: define a custom design and parameter space, wrap `pdsim` in a
//! [`ppatuner::CountingOracle`], and tune.
//!
//! Run with: `cargo run --release --example custom_flow`

use doe::{LatinHypercube, ParamDef, ParamSpace};
use pdsim::{Design, MacConfig, ObjectiveSpace, PdFlow, ToolParams};
use ppatuner::{CountingOracle, PpaTuner, PpaTunerConfig, QorOracle, SourceData};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom design: a narrow 4-lane MAC.
    let netlist = MacConfig {
        width: 12,
        lanes: 4,
        accum_guard: 6,
        two_stage_adders: false,
    }
    .generate();
    let design = Design::from_stats("my-mac", netlist.stats(&pdsim::CellLibrary::sevennm()), 123);
    println!(
        "custom design `{}`: {} cells, depth {}",
        design.name(),
        design.stats().cells,
        design.stats().comb_depth
    );
    let flow = PdFlow::new(design);

    // A custom 5-knob tuning space.
    let space = ParamSpace::new(vec![
        ParamDef::float("freq", 900.0, 1250.0)?,
        ParamDef::enumeration("flowEffort", &["standard", "extreme"])?,
        ParamDef::float("max_Density", 0.55, 0.95)?,
        ParamDef::int("max_fanout", 20, 48)?,
        ParamDef::float("max_transition", 0.12, 0.32)?,
    ])?;

    // Candidate configurations by Latin hypercube.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let configs = LatinHypercube::new().sample(&space, 200, &mut rng);
    let encoded: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| space.encode(c))
        .collect::<Result<_, _>>()?;

    // A live oracle: each evaluation actually runs the flow.
    let objective = ObjectiveSpace::AreaPowerDelay;
    let mut oracle = CountingOracle::new(|i: usize| {
        let params = ToolParams::from_config(&space, &configs[i]).expect("valid config");
        flow.run(&params).project(objective)
    });

    let config = PpaTunerConfig {
        initial_samples: 15,
        max_iterations: 15,
        seed: 3,
        ..Default::default()
    };
    // No historical data for a brand-new space: tune from scratch.
    let result = PpaTuner::new(config).run(&SourceData::empty(), &encoded, &mut oracle)?;

    println!(
        "live flow evaluated {} times; {} Pareto configurations found:",
        oracle.runs(),
        result.pareto_indices.len()
    );
    for &i in result.pareto_indices.iter().take(8) {
        let params = ToolParams::from_config(&space, &configs[i])?;
        let qor = flow.run(&params);
        println!("  {} -> {}", configs[i], qor);
    }
    Ok(())
}

//! Scenario Two of the paper (§4.2.2): transferring from a small design
//! to a similar larger one, with every method of Tables 2–3 compared on
//! the same reduced-scale benchmark.
//!
//! Run with: `cargo run --release --example scenario_similar_designs`

use baselines::{
    Aspdac20, Aspdac20Params, Dac19, Dac19Params, Mlcad19, Mlcad19Params, RandomSearch, Tcad19,
    Tcad19Params,
};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::two_with_counts(5, 400, 300).with_source_budget(200);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = pareto::hypervolume::reference_point(&table, 1.1)?;
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy)?;

    let report = |label: &str, indices: &[usize], runs: usize| {
        let predicted: Vec<Vec<f64>> = indices.iter().map(|&i| table[i].clone()).collect();
        let hv = pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference).unwrap();
        let adrs = pareto::metrics::adrs(&golden, &predicted).unwrap();
        println!("{label:<12} HV={hv:.4} ADRS={adrs:.4} runs={runs}");
    };

    println!(
        "Scenario Two on {} target candidates ({} golden front points)",
        candidates.len(),
        golden.len()
    );

    let budget = 36;

    let mut o = VecOracle::new(table.clone());
    let r = RandomSearch::new(budget, 5).tune(&candidates, &mut o)?;
    report("random", &r.pareto_indices, r.runs);

    let mut o = VecOracle::new(table.clone());
    let r = Tcad19::new(Tcad19Params {
        budget: budget + 12,
        initial_samples: 12,
        seed: 5,
        ..Default::default()
    })
    .tune(&candidates, &mut o)?;
    report("TCAD'19", &r.pareto_indices, r.runs);

    let mut o = VecOracle::new(table.clone());
    let r = Mlcad19::new(Mlcad19Params {
        budget,
        initial_samples: 12,
        seed: 5,
        ..Default::default()
    })
    .tune(&candidates, &mut o)?;
    report("MLCAD'19", &r.pareto_indices, r.runs);

    let mut o = VecOracle::new(table.clone());
    let r = Dac19::new(Dac19Params {
        budget: budget + 30,
        initial_samples: 15,
        seed: 5,
        ..Default::default()
    })
    .tune(&candidates, &mut o)?;
    report("DAC'19", &r.pareto_indices, r.runs);

    let mut o = VecOracle::new(table.clone());
    let r = Aspdac20::new(Aspdac20Params {
        budget,
        initial_samples: 12,
        seed: 5,
        ..Default::default()
    })
    .tune(&source, &candidates, &mut o)?;
    report("ASPDAC'20", &r.pareto_indices, r.runs);

    let mut o = VecOracle::new(table.clone());
    let r = PpaTuner::new(PpaTunerConfig {
        initial_samples: 15,
        max_iterations: 18,
        seed: 5,
        ..Default::default()
    })
    .run(&source, &candidates, &mut o)?;
    report("PPATuner", &r.pareto_indices, r.runs);

    Ok(())
}

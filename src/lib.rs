//! Workspace umbrella crate of the PPATuner reproduction.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the actual library
//! surface lives in the member crates, re-exported here for convenience:
//!
//! - [`ppatuner`] — the Pareto-driven transfer-GP auto-tuner (the paper's
//!   contribution);
//! - [`benchgen`] — the paper's four offline benchmarks and two transfer
//!   scenarios;
//! - [`pdsim`] — the physical-design-flow simulator standing in for the
//!   closed commercial tool;
//! - [`baselines`] — the compared methods of Tables 2–3;
//! - [`gp`], [`pareto`], [`doe`], [`boost`], [`linalg`] — substrates.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md`
//! for the reproduction methodology and measured results.

pub use baselines;
pub use benchgen;
pub use boost;
pub use doe;
pub use gp;
pub use linalg;
pub use pareto;
pub use pdsim;
pub use ppatuner;

//! Property-based tests of the PD-flow simulator: the monotone physical
//! relationships the tuner relies on must hold across the whole
//! parameter domain, not just at hand-picked points.

use pdsim::{Design, PdFlow, ToolParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ToolParams> {
    (
        900.0f64..1350.0,
        1.0f64..1.3,
        10.0f64..220.0,
        0.6f64..0.95,
        150.0f64..360.0,
        (
            0.45f64..1.0,
            0.08f64..0.36,
            0.05f64..0.21,
            20i64..52,
            0.0f64..0.3,
        ),
    )
        .prop_map(
            |(freq, rc, unc, dens, len, (util, tran, cap, fan, allowed))| ToolParams {
                freq_mhz: freq,
                place_rcfactor: rc,
                place_uncertainty_ps: unc,
                max_density: dens,
                max_length_um: len,
                max_utilization: util,
                max_transition_ns: tran,
                max_capacitance_pf: cap,
                max_fanout: fan,
                max_allowed_delay_ns: allowed,
                ..ToolParams::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qor_is_always_valid(p in arb_params()) {
        let flow = PdFlow::new(Design::mac_small(42));
        let q = flow.run(&p);
        prop_assert!(q.is_valid(), "{q}");
        // Sanity windows for a ~24k-cell block at GHz-class clocks.
        prop_assert!((1_000.0..200_000.0).contains(&q.area_um2), "area {q}");
        prop_assert!((0.1..500.0).contains(&q.power_mw), "power {q}");
        prop_assert!((0.05..10.0).contains(&q.delay_ns), "delay {q}");
    }

    #[test]
    fn higher_frequency_never_cuts_power(p in arb_params()) {
        let flow = PdFlow::new(Design::mac_small(42)).with_jitter(0.0);
        let slow = flow.run(&ToolParams { freq_mhz: 950.0, ..p.clone() });
        let fast = flow.run(&ToolParams { freq_mhz: 1300.0, ..p });
        prop_assert!(fast.power_mw > slow.power_mw);
    }

    #[test]
    fn looser_utilization_always_costs_area(p in arb_params()) {
        let flow = PdFlow::new(Design::mac_small(42)).with_jitter(0.0);
        let tight = flow.run(&ToolParams { max_utilization: 0.95, ..p.clone() });
        let loose = flow.run(&ToolParams { max_utilization: 0.55, ..p });
        prop_assert!(loose.area_um2 > tight.area_um2);
    }

    #[test]
    fn determinism_holds_everywhere(p in arb_params()) {
        let flow = PdFlow::new(Design::mac_large(43));
        prop_assert_eq!(flow.run(&p), flow.run(&p));
    }

    #[test]
    fn jitter_scales_with_amplitude(p in arb_params()) {
        let d = Design::mac_small(42);
        let clean = PdFlow::new(d.clone()).with_jitter(0.0).run(&p);
        let noisy = PdFlow::new(d).with_jitter(0.05).run(&p);
        for (c, n) in clean.to_vec().iter().zip(noisy.to_vec()) {
            prop_assert!((n / c - 1.0).abs() <= 0.0500001);
        }
    }

    #[test]
    fn similar_designs_move_together_under_frequency(p in arb_params()) {
        // The transfer premise as a property: a frequency push moves both
        // designs' power up and their delays in the same direction —
        // except in wire-dominated corners where the responses are both
        // near zero (there, small opposite-signed drifts are physical).
        let small = PdFlow::new(Design::mac_small(1)).with_jitter(0.0);
        let large = PdFlow::new(Design::mac_large(2)).with_jitter(0.0);
        let lo = ToolParams { freq_mhz: 950.0, ..p.clone() };
        let hi = ToolParams { freq_mhz: 1320.0, ..p };
        let (s_lo, s_hi) = (small.run(&lo), small.run(&hi));
        let (l_lo, l_hi) = (large.run(&lo), large.run(&hi));
        prop_assert!(s_hi.power_mw > s_lo.power_mw);
        prop_assert!(l_hi.power_mw > l_lo.power_mw);
        let ds = s_hi.delay_ns - s_lo.delay_ns;
        let dl = l_hi.delay_ns - l_lo.delay_ns;
        let small_magnitude =
            ds.abs() < 0.03 * s_lo.delay_ns || dl.abs() < 0.03 * l_lo.delay_ns;
        prop_assert!(
            ds * dl >= 0.0 || small_magnitude,
            "designs diverge strongly: {ds} vs {dl}"
        );
    }
}

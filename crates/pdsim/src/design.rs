use serde::{Deserialize, Serialize};

use crate::library::CellLibrary;
use crate::netlist::{MacConfig, NetlistStats};

/// Deterministic 64-bit mixer (splitmix64) used to derive per-design
/// response coefficients and per-run jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform value in `[lo, hi]`.
pub(crate) fn hash_to_range(h: u64, lo: f64, hi: f64) -> f64 {
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    lo + u * (hi - lo)
}

/// Per-design response coefficients.
///
/// Two designs of the same family share the functional form of the flow
/// model but differ in these multipliers — this is exactly the
/// "architecture properties of similar designs change little" premise the
/// paper's transfer learning exploits (§1). Coefficients are derived
/// deterministically from the design seed and stay within a few percent
/// of 1 (the paper: "the impact of architecture properties of similar
/// designs may have little change").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignCharacter {
    /// Wirelength scale relative to the Rent's-rule estimate.
    pub wire_scale: f64,
    /// Congestion sensitivity.
    pub cong_sens: f64,
    /// Effectiveness of upsizing on delay.
    pub sizing_response: f64,
    /// Leakage scale (process corner flavor).
    pub leak_scale: f64,
    /// Clock-network cost scale.
    pub clock_scale: f64,
    /// Average switching activity of data nets.
    pub activity: f64,
}

impl DesignCharacter {
    fn from_seed(seed: u64) -> Self {
        let h = |i: u64| splitmix64(seed.wrapping_add(i.wrapping_mul(0x9e37)));
        DesignCharacter {
            wire_scale: hash_to_range(h(1), 0.97, 1.03),
            cong_sens: hash_to_range(h(2), 0.96, 1.04),
            sizing_response: hash_to_range(h(3), 0.97, 1.03),
            leak_scale: hash_to_range(h(4), 0.96, 1.04),
            clock_scale: hash_to_range(h(5), 0.97, 1.03),
            activity: hash_to_range(h(6), 0.115, 0.125),
        }
    }
}

/// A design under physical implementation: netlist features, library, and
/// design-specific response coefficients.
///
/// # Example
///
/// ```
/// use pdsim::Design;
///
/// let d = Design::mac_small(42);
/// assert!(d.stats().cells > 10_000);
/// assert_eq!(d.name(), "mac-small");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    name: String,
    seed: u64,
    stats: NetlistStats,
    library: CellLibrary,
    character: DesignCharacter,
}

impl Design {
    /// Builds a design from explicit netlist statistics (for custom
    /// designs or tests).
    pub fn from_stats(name: &str, stats: NetlistStats, seed: u64) -> Self {
        Design {
            name: name.to_owned(),
            seed,
            stats,
            library: CellLibrary::sevennm(),
            character: DesignCharacter::from_seed(seed),
        }
    }

    /// The ~20k-cell MAC used by Source1/Target1/Source2 in the paper.
    ///
    /// The seed only perturbs the response coefficients (±10 %); the
    /// netlist itself is deterministic.
    pub fn mac_small(seed: u64) -> Self {
        let lib = CellLibrary::sevennm();
        let nl = MacConfig::small().generate();
        let stats = nl.stats(&lib);
        Design {
            name: "mac-small".to_owned(),
            seed,
            stats,
            library: lib,
            character: DesignCharacter::from_seed(seed),
        }
    }

    /// The ~67k-cell MAC used by Target2 in the paper.
    pub fn mac_large(seed: u64) -> Self {
        let lib = CellLibrary::sevennm();
        let nl = MacConfig::large().generate();
        let stats = nl.stats(&lib);
        Design {
            name: "mac-large".to_owned(),
            seed,
            stats,
            library: lib,
            character: DesignCharacter::from_seed(seed),
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The design seed (drives character + run jitter).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The netlist features.
    pub fn stats(&self) -> &NetlistStats {
        &self.stats
    }

    /// The cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The per-design response coefficients.
    pub fn character(&self) -> &DesignCharacter {
        &self.character
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn hash_to_range_bounds() {
        for i in 0..100u64 {
            let v = hash_to_range(splitmix64(i), -2.0, 3.0);
            assert!((-2.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn character_within_a_few_percent() {
        for seed in [0u64, 7, 42, 9999] {
            let c = DesignCharacter::from_seed(seed);
            for v in [
                c.wire_scale,
                c.cong_sens,
                c.sizing_response,
                c.leak_scale,
                c.clock_scale,
            ] {
                assert!((0.95..=1.05).contains(&v), "seed {seed}: {v}");
            }
            assert!((0.115..=0.125).contains(&c.activity));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DesignCharacter::from_seed(1);
        let b = DesignCharacter::from_seed(2);
        assert_ne!(a, b);
    }

    #[test]
    fn designs_expose_consistent_stats() {
        let d = Design::mac_small(42);
        assert!(d.stats().cells > 10_000);
        assert!(d.stats().flops > 0);
        let d2 = Design::mac_small(42);
        assert_eq!(d, d2);
    }

    #[test]
    fn large_design_is_larger_but_similarly_pipelined() {
        let s = Design::mac_small(1);
        let l = Design::mac_large(1);
        assert!(l.stats().cells > 2 * s.stats().cells);
        // The wide MAC is pipelined deeper (two-stage adders), so its
        // register-to-register depth stays comparable — the premise that
        // lets tool knowledge transfer between the two designs.
        let ratio = l.stats().comb_depth as f64 / s.stats().comb_depth as f64;
        assert!((0.7..1.4).contains(&ratio), "depth ratio {ratio}");
    }
}

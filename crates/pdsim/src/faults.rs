//! Deterministic fault injection for the simulated PD flow.
//!
//! Real tool farms fail in mundane ways: license servers drop
//! connections, routers hit wall-clock limits on congested floorplans,
//! and report parsers occasionally emit garbage (unit mix-ups, truncated
//! tables). A robust tuner has to survive all of it, so this module
//! models the failure channel the same way the rest of the crate models
//! QoR — as a *deterministic* function of hashes, never of wall-clock or
//! ambient randomness. The same [`FaultPlan`] replayed against the same
//! `(candidate, attempt)` sequence injects byte-identical faults, which
//! is what makes chaos tests reproducible and failure traces replayable.
//!
//! Injected failures come in two flavours:
//!
//! - **Flow faults** ([`FlowFault`]): the run produces no QoR at all — a
//!   crash or a stage timeout. [`FaultyFlow::run_timed`] returns these as
//!   `Err`.
//! - **Corruptions**: the run "succeeds" but the reported QoR is garbage
//!   (NaN from a truncated report, a gross outlier from a unit mix-up).
//!   These are returned as `Ok` — detecting them is the *consumer's* job,
//!   exactly as with a real tool.
//!
//! # Example
//!
//! ```
//! use pdsim::{Design, FaultPlan, FaultyFlow, PdFlow, ToolParams};
//!
//! let plan = FaultPlan { crash_prob: 0.5, ..FaultPlan::default() };
//! let flow = FaultyFlow::new(PdFlow::new(Design::mac_small(7)), plan);
//! let p = ToolParams::default();
//! // Deterministic: the same (candidate, attempt) always fails — or
//! // succeeds — the same way.
//! assert_eq!(
//!     flow.run_timed(0, 1, &p).is_err(),
//!     flow.run_timed(0, 1, &p).is_err()
//! );
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::design::{hash_to_range, splitmix64};
use crate::flow::{PdFlow, StageTimings};
use crate::params::ToolParams;
use crate::qor::Qor;

/// A failure that prevented the flow from producing any QoR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowFault {
    /// The tool process died (license drop, segfault, OOM kill).
    Crash {
        /// Human-readable cause.
        detail: String,
    },
    /// The flow exceeded its wall-clock limit inside one stage.
    Timeout {
        /// The stage that was running when the limit hit.
        stage: String,
        /// Seconds burned before the kill.
        elapsed_s: f64,
    },
}

impl fmt::Display for FlowFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowFault::Crash { detail } => write!(f, "flow crashed: {detail}"),
            FlowFault::Timeout { stage, elapsed_s } => {
                write!(f, "flow timed out in {stage} after {elapsed_s:.1} s")
            }
        }
    }
}

impl std::error::Error for FlowFault {}

/// What the plan injects into one `(candidate, attempt)` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The run proceeds normally.
    None,
    /// The run crashes before producing QoR.
    Crash,
    /// The run times out in the stage with this index (flow order:
    /// synth, place, cts, route, signoff).
    Timeout(usize),
    /// The run succeeds but reports NaN QoR (truncated report).
    CorruptNan,
    /// The run succeeds but reports QoR scaled by
    /// [`FaultPlan::outlier_factor`] (unit mix-up).
    CorruptOutlier,
}

/// A serializable, seeded recipe of which runs fail and how.
///
/// Probabilities are evaluated in order — crash, timeout, NaN, outlier —
/// on a single uniform draw, so their sum must stay ≤ 1. The draw is a
/// pure hash of `(seed, candidate, attempt)`: replaying the plan injects
/// the same faults, and a retry (next attempt) gets an independent draw,
/// which is how flaky-then-succeed behaviour arises naturally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the flow's QoR jitter).
    pub seed: u64,
    /// Probability a run crashes outright.
    pub crash_prob: f64,
    /// Probability a run times out mid-stage.
    pub timeout_prob: f64,
    /// Probability the reported QoR is NaN.
    pub nan_prob: f64,
    /// Probability the reported QoR is a gross outlier.
    pub outlier_prob: f64,
    /// Multiplier applied to every objective of an outlier run.
    pub outlier_factor: f64,
    /// Upper bound on consecutive injected failures per candidate: from
    /// attempt `flaky_max_failures + 1` on, probabilistic faults are
    /// suppressed and the run succeeds cleanly. `0` disables the bound
    /// (faults can repeat forever). Candidates in
    /// [`FaultPlan::always_fail`] ignore this.
    pub flaky_max_failures: usize,
    /// Candidates that crash on every attempt, no matter what — the
    /// "this configuration hard-hangs the router" case that forces
    /// quarantine.
    pub always_fail: Vec<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            crash_prob: 0.0,
            timeout_prob: 0.0,
            nan_prob: 0.0,
            outlier_prob: 0.0,
            outlier_factor: 1e3,
            flaky_max_failures: 0,
            always_fail: Vec::new(),
        }
    }
}

/// Names of the flow stages a timeout can land in, in flow order.
pub const STAGE_NAMES: [&str; 5] = ["synth", "place", "cts", "route", "signoff"];

impl FaultPlan {
    /// Validates the plan: probabilities in `[0, 1]` summing to at most
    /// 1, and a finite positive outlier factor.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("crash_prob", self.crash_prob),
            ("timeout_prob", self.timeout_prob),
            ("nan_prob", self.nan_prob),
            ("outlier_prob", self.outlier_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total} > 1"));
        }
        if !self.outlier_factor.is_finite() || self.outlier_factor <= 0.0 {
            return Err(format!(
                "outlier_factor must be finite and positive, got {}",
                self.outlier_factor
            ));
        }
        Ok(())
    }

    /// Total probability that an attempt fails or corrupts its QoR.
    pub fn failure_rate(&self) -> f64 {
        self.crash_prob + self.timeout_prob + self.nan_prob + self.outlier_prob
    }

    /// What happens to attempt number `attempt` (1-based) on `candidate`.
    /// Pure: no state, no RNG — the same arguments always return the same
    /// decision.
    pub fn decide(&self, candidate: usize, attempt: usize) -> FaultDecision {
        if self.always_fail.contains(&candidate) {
            return FaultDecision::Crash;
        }
        if self.flaky_max_failures > 0 && attempt > self.flaky_max_failures {
            return FaultDecision::None;
        }
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((candidate as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
                .wrapping_add(attempt as u64),
        );
        let u = hash_to_range(h, 0.0, 1.0);
        let mut edge = self.crash_prob;
        if u < edge {
            return FaultDecision::Crash;
        }
        edge += self.timeout_prob;
        if u < edge {
            // Independent sub-draw for the stage the timeout lands in.
            let stage = (splitmix64(h) % STAGE_NAMES.len() as u64) as usize;
            return FaultDecision::Timeout(stage);
        }
        edge += self.nan_prob;
        if u < edge {
            return FaultDecision::CorruptNan;
        }
        edge += self.outlier_prob;
        if u < edge {
            return FaultDecision::CorruptOutlier;
        }
        FaultDecision::None
    }
}

/// A [`PdFlow`] wrapped with a [`FaultPlan`]: the fallible tool a robust
/// tuner actually faces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyFlow {
    flow: PdFlow,
    plan: FaultPlan,
}

impl FaultyFlow {
    /// Binds a plan to a flow.
    ///
    /// # Panics
    ///
    /// Panics when the plan fails [`FaultPlan::validate`] — a malformed
    /// plan would silently skew injection rates.
    pub fn new(flow: PdFlow, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultyFlow { flow, plan }
    }

    /// The wrapped fault-free flow.
    pub fn flow(&self) -> &PdFlow {
        &self.flow
    }

    /// The injection recipe.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runs attempt `attempt` (1-based) of `candidate`, injecting
    /// whatever the plan decides. Corrupted QoR comes back as `Ok` — the
    /// caller's sanitization is part of what is under test.
    pub fn run_timed(
        &self,
        candidate: usize,
        attempt: usize,
        params: &ToolParams,
    ) -> Result<(Qor, StageTimings), FlowFault> {
        match self.plan.decide(candidate, attempt) {
            FaultDecision::Crash => Err(FlowFault::Crash {
                detail: format!("injected crash (candidate {candidate}, attempt {attempt})"),
            }),
            FaultDecision::Timeout(stage) => {
                // The flow ran the completed stages for real before dying.
                let (_, timings) = self.flow.run_timed(params);
                let elapsed_s: f64 = timings
                    .stages()
                    .iter()
                    .take(stage + 1)
                    .map(|(_, s)| s)
                    .sum();
                Err(FlowFault::Timeout {
                    stage: STAGE_NAMES[stage].to_string(),
                    elapsed_s,
                })
            }
            FaultDecision::CorruptNan => {
                let (_, timings) = self.flow.run_timed(params);
                Ok((Qor::new(f64::NAN, f64::NAN, f64::NAN), timings))
            }
            FaultDecision::CorruptOutlier => {
                let (q, timings) = self.flow.run_timed(params);
                let f = self.plan.outlier_factor;
                Ok((
                    Qor::new(q.area_um2 * f, q.power_mw * f, q.delay_ns * f),
                    timings,
                ))
            }
            FaultDecision::None => Ok(self.flow.run_timed(params)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;

    fn chaos_plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            crash_prob: 0.15,
            timeout_prob: 0.1,
            nan_prob: 0.05,
            outlier_prob: 0.05,
            flaky_max_failures: 2,
            always_fail: vec![3],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = chaos_plan();
        for c in 0..50 {
            for a in 1..5 {
                assert_eq!(plan.decide(c, a), plan.decide(c, a));
            }
        }
    }

    #[test]
    fn always_fail_overrides_everything() {
        let plan = chaos_plan();
        for a in 1..20 {
            assert_eq!(plan.decide(3, a), FaultDecision::Crash);
        }
    }

    #[test]
    fn flaky_bound_guarantees_eventual_success() {
        let plan = chaos_plan();
        for c in 0..100 {
            if c == 3 {
                continue;
            }
            assert_eq!(plan.decide(c, 3), FaultDecision::None, "candidate {c}");
        }
    }

    #[test]
    fn injection_rate_tracks_probabilities() {
        let plan = FaultPlan {
            seed: 5,
            crash_prob: 0.2,
            timeout_prob: 0.1,
            ..FaultPlan::default()
        };
        let n = 2000;
        let failed = (0..n)
            .filter(|&c| plan.decide(c, 1) != FaultDecision::None)
            .count();
        let rate = failed as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn faulty_flow_injects_and_recovers() {
        let plan = FaultPlan {
            seed: 2,
            crash_prob: 0.5,
            timeout_prob: 0.3,
            flaky_max_failures: 1,
            ..FaultPlan::default()
        };
        let flow = FaultyFlow::new(PdFlow::new(Design::mac_small(7)), plan);
        let p = ToolParams::default();
        let clean = flow.flow().run(&p);
        let mut saw_fault = false;
        for c in 0..20 {
            match flow.run_timed(c, 1, &p) {
                Ok((q, _)) => assert!(q.is_valid()),
                Err(e) => {
                    saw_fault = true;
                    assert!(!e.to_string().is_empty());
                }
            }
            // Attempt 2 is past the flaky bound: always the clean QoR.
            let (q, _) = flow.run_timed(c, 2, &p).expect("bounded flakiness");
            assert_eq!(q, clean);
        }
        assert!(saw_fault, "a 0.8 failure rate must trip within 20 runs");
    }

    #[test]
    fn corruptions_come_back_as_ok() {
        let nan_only = FaultPlan {
            nan_prob: 1.0,
            ..FaultPlan::default()
        };
        let flow = FaultyFlow::new(PdFlow::new(Design::mac_small(7)), nan_only);
        let (q, _) = flow.run_timed(0, 1, &ToolParams::default()).unwrap();
        assert!(q.area_um2.is_nan());

        let outlier_only = FaultPlan {
            outlier_prob: 1.0,
            outlier_factor: 1e3,
            ..FaultPlan::default()
        };
        let flow = FaultyFlow::new(PdFlow::new(Design::mac_small(7)), outlier_only);
        let clean = flow.flow().run(&ToolParams::default());
        let (q, _) = flow.run_timed(0, 1, &ToolParams::default()).unwrap();
        assert!((q.delay_ns / clean.delay_ns - 1e3).abs() < 1e-6);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = chaos_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan {
            crash_prob: 1.5,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            crash_prob: 0.6,
            timeout_prob: 0.6,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            outlier_factor: 0.0,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
        assert!(chaos_plan().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn faulty_flow_rejects_invalid_plans() {
        let _ = FaultyFlow::new(
            PdFlow::new(Design::mac_small(1)),
            FaultPlan {
                crash_prob: 2.0,
                ..FaultPlan::default()
            },
        );
    }
}

//! Per-stage models of the physical-design flow.
//!
//! Each stage is a pure function from (design features, tool parameters,
//! upstream results) to a small result struct; [`crate::PdFlow`] composes
//! them. The models are first-order physical: logical-effort gate delays,
//! Rent's-rule wirelength, RC wire delay with buffer segmentation,
//! `C·V²·f` dynamic power. Their purpose is to give the tuner a truthful
//! *shape* of parameter→QoR response, not sign-off accuracy.

use crate::design::Design;
use crate::library::{CellKind, Drive};
use crate::params::{CongEffort, FlowEffort, TimingEffort, ToolParams};

/// Virtual sizing chosen by synthesis/pre-route optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisResult {
    /// Mean drive-strength multiplier applied to the netlist (≥ 0.8).
    pub sizing: f64,
    /// The timing pressure that produced it (ideal delay / required
    /// period); > 1 means the target is aggressive.
    pub pressure: f64,
    /// Whether the optimizer escalated to aggressive restructuring
    /// (commercial tools switch strategy once the target looks
    /// unreachable, producing a QoR regime change rather than a smooth
    /// response).
    pub restructured: bool,
}

/// Placement outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementResult {
    /// Core area in µm² (cell area over utilization).
    pub core_area_um2: f64,
    /// Average point-to-point net length, µm.
    pub avg_net_len_um: f64,
    /// Congestion figure (≈ 0.3 relaxed … > 1 congested).
    pub congestion: f64,
}

/// Clock-tree synthesis outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsResult {
    /// Global skew + uncertainty margin actually consumed, ps.
    pub skew_ps: f64,
    /// Clock-network power, mW.
    pub clock_power_mw: f64,
    /// Inserted clock buffers.
    pub clock_buffers: usize,
}

/// Routing and DRV-fixing outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteResult {
    /// Detour factor from congestion (≥ 1).
    pub detour: f64,
    /// Signal buffers inserted to satisfy DRV rules.
    pub buffers: usize,
    /// Total routed wire capacitance, fF.
    pub wire_cap_ff: f64,
    /// Wire delay along the critical path, ps.
    pub critical_wire_ps: f64,
}

/// Synthesis / pre-route optimization: pick a virtual sizing from the
/// timing pressure.
pub fn synthesize(design: &Design, p: &ToolParams) -> SynthesisResult {
    let st = design.stats();
    let lib = design.library();

    // Ideal (sizing = 1) register-to-register delay estimate.
    let avg_cin = st.input_cap_ff / st.pins.max(1) as f64;
    let avg_load = avg_cin * st.avg_fanout + 1.0 * lib.wire_cap_ff_per_um * 5.0;
    let stage_ps = lib.stage_delay_ps(CellKind::Nand2, Drive::X1, avg_load);
    let ideal_ns = st.comb_depth as f64 * stage_ps * 1e-3;

    // Required period after subtracting margins; max_AllowedDelay relaxes.
    let t_req =
        (p.clock_period_ns() - p.place_uncertainty_ps * 1e-3 + p.max_allowed_delay_ns).max(0.1);
    let pressure = ideal_ns / t_req;

    let mut sizing = 0.75 + 0.45 * pressure.powf(1.6);
    // RC pessimism makes the optimizer see slower wires and upsize.
    sizing *= p.place_rcfactor.powf(0.35);
    if p.timing_effort == TimingEffort::High {
        sizing *= 1.10;
    }
    if p.flow_effort == FlowEffort::Extreme {
        // Smarter restructuring substitutes for brute-force upsizing.
        sizing *= 0.96;
    }
    // Regime switch: once the target looks unreachable, the optimizer
    // escalates to aggressive restructuring — a discontinuity in the
    // parameter→QoR mapping (cheaper delay, big power/area surcharge),
    // shared by designs of the same family since it is a property of the
    // flow, not of one netlist.
    let threshold = 0.47 * p.place_rcfactor.powf(0.15);
    let restructured = pressure > threshold;
    if restructured {
        sizing *= 1.10;
    }
    SynthesisResult {
        sizing: sizing.clamp(0.8, 3.0),
        pressure,
        restructured,
    }
}

/// Global placement: core area, statistical wirelength, congestion.
pub fn place(design: &Design, p: &ToolParams, syn: &SynthesisResult) -> PlacementResult {
    let st = design.stats();
    let ch = design.character();

    let placed_area = st.area_x1_um2 * syn.sizing.powf(0.9);
    let core_area = placed_area / p.max_utilization.clamp(0.3, 1.0);

    // Rent's-rule-flavoured average net length.
    let pitch = (core_area / st.cells.max(1) as f64).sqrt();
    let mut avg_len = 1.25 * pitch * st.avg_fanout.powf(0.6) * ch.wire_scale;

    // Congestion driven by utilization and local bin density.
    let mut congestion = 0.55
        * (p.max_utilization / 0.75).powf(2.5)
        * (p.max_density / 0.80).powf(1.5)
        * ch.cong_sens;
    if p.uniform_density {
        congestion *= 0.82;
        avg_len *= 1.05;
    }
    if p.cong_effort == CongEffort::High {
        congestion *= 0.75;
        avg_len *= 1.03;
    }
    if p.flow_effort == FlowEffort::Extreme {
        congestion *= 0.90;
        avg_len *= 0.97;
    }
    PlacementResult {
        core_area_um2: core_area,
        avg_net_len_um: avg_len,
        congestion,
    }
}

/// Clock-tree synthesis: skew and clock power.
pub fn cts(design: &Design, p: &ToolParams, pl: &PlacementResult) -> CtsResult {
    let st = design.stats();
    let lib = design.library();
    let ch = design.character();

    let clock_buffers = st.flops.div_ceil(18);
    let mut skew_ps = 18.0 * (1.0 + 0.30 * pl.congestion) * ch.clock_scale;

    // Clock network capacitance: flop clock pins + buffers + clock wiring.
    let mut clock_cap_ff = st.flops as f64 * lib.dff_clk_cap_ff()
        + clock_buffers as f64 * lib.input_cap(CellKind::ClkBuf, Drive::X2)
        + st.flops as f64 * 1.6 * lib.wire_cap_ff_per_um;
    if p.clock_power_driven {
        // Power-aware CTS: smaller tree, slightly worse skew.
        clock_cap_ff *= 0.84;
        skew_ps *= 1.12;
    }
    if p.flow_effort == FlowEffort::Extreme {
        skew_ps *= 0.92;
    }
    // Clock toggles every cycle: P = C·V²·f (fF · V² · MHz → nW → mW).
    let clock_power_mw = clock_cap_ff * lib.vdd * lib.vdd * p.freq_mhz * 1e-6 * ch.clock_scale;
    CtsResult {
        skew_ps,
        clock_power_mw,
        clock_buffers,
    }
}

/// Detailed routing and DRV fixing: detour, buffer insertion, wire
/// parasitics, critical-path wire delay.
pub fn route(design: &Design, p: &ToolParams, pl: &PlacementResult) -> RouteResult {
    let st = design.stats();
    let lib = design.library();

    let detour = 1.0 + 0.80 * (pl.congestion - 0.50).max(0.0).powf(1.5);

    // DRV-driven buffering. Each rule converts a violation rate into
    // inserted buffers; tighter rules buffer more nets.
    let nets = st.nets as f64;
    let buf_len = nets * 0.045 * ((400.0 - p.max_length_um) / 300.0).max(0.0).powf(1.3);
    let buf_tran = nets * 0.080 * ((0.30 - p.max_transition_ns) / 0.25).max(0.0).powf(1.2);
    let buf_cap = nets * 0.050 * ((0.15 - p.max_capacitance_pf) / 0.15).max(0.0).powf(1.2);
    let buf_fan = nets * 0.50 * (-(p.max_fanout as f64) / 12.0).exp();
    let buffers = (buf_len + buf_tran + buf_cap + buf_fan).round().max(0.0) as usize;

    // Total wire capacitance.
    let wire_cap_ff = nets * pl.avg_net_len_um * detour * lib.wire_cap_ff_per_um
        + buffers as f64 * lib.input_cap(CellKind::Buf, Drive::X2);

    // Critical wire: a multi-hop cross-die net, segmented by the
    // effective max length (transition and capacitance rules also shorten
    // segments). Repeaters are strong (X4) buffers.
    let die_edge = pl.core_area_um2.sqrt();
    let l_crit = 3.5 * die_edge * detour;
    let seg_tran = p.max_transition_ns / 0.25; // relative slack of the slew rule
    let seg_cap = p.max_capacitance_pf / 0.10;
    let eff_seg_um = (p.max_length_um * seg_tran.min(seg_cap).clamp(0.5, 1.5)).max(20.0);
    let segments = (l_crit / eff_seg_um).ceil().max(1.0);
    let seg_len = l_crit / segments;
    let r = lib.wire_res_ohm_per_um * seg_len;
    let c = lib.wire_cap_ff_per_um * seg_len;
    // 0.5·R·C per segment (fF·Ω = fs → ps) plus a repeater delay per hop.
    let per_seg_ps = 0.5 * r * c * 1e-3
        + if segments > 1.0 {
            lib.stage_delay_ps(CellKind::Buf, Drive::X4, c)
        } else {
            0.0
        };
    let critical_wire_ps = segments * per_seg_ps;

    RouteResult {
        detour,
        buffers,
        wire_cap_ff,
        critical_wire_ps,
    }
}

/// Static timing analysis: critical-path delay in ns.
pub fn sta(
    design: &Design,
    p: &ToolParams,
    syn: &SynthesisResult,
    pl: &PlacementResult,
    ct: &CtsResult,
    rt: &RouteResult,
) -> f64 {
    let st = design.stats();
    let lib = design.library();
    let ch = design.character();

    // Effective logic depth: restructuring at higher efforts removes
    // levels.
    let mut depth = st.comb_depth as f64;
    if p.timing_effort == TimingEffort::High {
        depth *= 0.94;
    }
    if p.flow_effort == FlowEffort::Extreme {
        depth *= 0.95;
    }

    // Average stage delay under the chosen sizing: the cell's own input
    // cap scales with sizing, the wire load does not.
    let avg_cin = st.input_cap_ff / st.pins.max(1) as f64;
    let wire_load = pl.avg_net_len_um * rt.detour * lib.wire_cap_ff_per_um;
    let gate_load = avg_cin * syn.sizing * st.avg_fanout;
    let spec = lib.spec(CellKind::Nand2);
    let h = (gate_load + wire_load) / (avg_cin * syn.sizing);
    let stage_ps = spec.intrinsic_ps + lib.tau_ps * spec.logical_effort * h;

    // Critical-path-selective upsizing buys delay with diminishing
    // returns; congestion (layer demotion, coupling) taxes every stage.
    let sizing_gain = syn.sizing.powf(0.35 * ch.sizing_response);
    let cong_penalty = 1.0 + 0.12 * (pl.congestion - 0.55).max(0.0);
    // Restructuring shortens the path beyond what sizing alone buys.
    let restructure_gain = if syn.restructured { 0.96 } else { 1.0 };
    let logic_ps = depth * stage_ps * cong_penalty * restructure_gain / sizing_gain;
    let wire_ps = rt.critical_wire_ps;
    let margin_ps = ct.skew_ps + lib.dff_setup_ps();

    (logic_ps + wire_ps + margin_ps) * 1e-3
}

/// Power roll-up: dynamic + clock + leakage, in mW.
pub fn power(
    design: &Design,
    p: &ToolParams,
    syn: &SynthesisResult,
    ct: &CtsResult,
    rt: &RouteResult,
) -> f64 {
    let st = design.stats();
    let lib = design.library();
    let ch = design.character();

    let switched_cap_ff = st.input_cap_ff * syn.sizing + rt.wire_cap_ff;
    let mut dynamic_mw = ch.activity * switched_cap_ff * lib.vdd * lib.vdd * p.freq_mhz * 1e-6;
    // Internal cell energy.
    dynamic_mw += ch.activity * st.cells as f64 * 0.2 * syn.sizing * p.freq_mhz * 1e-6; // fJ·MHz → nW → mW

    let buf_leak_nw = rt.buffers as f64 * lib.leakage(CellKind::Buf, Drive::X2);
    let leakage_mw = (st.leakage_nw * syn.sizing.powf(1.6) + buf_leak_nw) * ch.leak_scale * 1e-6;

    let mut total = dynamic_mw + ct.clock_power_mw + leakage_mw;
    if p.flow_effort == FlowEffort::Extreme {
        total *= 0.97;
    }
    total
}

/// Area roll-up: core area including DRV buffers, in µm².
pub fn area(design: &Design, p: &ToolParams, syn: &SynthesisResult, rt: &RouteResult) -> f64 {
    let st = design.stats();
    let lib = design.library();
    let placed = st.area_x1_um2 * syn.sizing.powf(0.9)
        + rt.buffers as f64 * lib.area(CellKind::Buf, Drive::X2);
    let mut a = placed / p.max_utilization.clamp(0.3, 1.0);
    if p.flow_effort == FlowEffort::Extreme {
        a *= 0.985;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Design;

    fn design() -> Design {
        Design::mac_small(42)
    }

    #[test]
    fn sizing_grows_with_frequency() {
        let d = design();
        let slow = synthesize(
            &d,
            &ToolParams {
                freq_mhz: 950.0,
                ..Default::default()
            },
        );
        let fast = synthesize(
            &d,
            &ToolParams {
                freq_mhz: 1300.0,
                ..Default::default()
            },
        );
        assert!(fast.sizing > slow.sizing);
        assert!(fast.pressure > slow.pressure);
    }

    #[test]
    fn allowed_delay_relaxes_sizing() {
        let d = design();
        let tight = synthesize(
            &d,
            &ToolParams {
                max_allowed_delay_ns: 0.0,
                ..Default::default()
            },
        );
        let relaxed = synthesize(
            &d,
            &ToolParams {
                max_allowed_delay_ns: 0.25,
                ..Default::default()
            },
        );
        assert!(relaxed.sizing < tight.sizing);
    }

    #[test]
    fn rc_pessimism_upsizes() {
        let d = design();
        let nominal = synthesize(
            &d,
            &ToolParams {
                place_rcfactor: 1.0,
                ..Default::default()
            },
        );
        let pessimistic = synthesize(
            &d,
            &ToolParams {
                place_rcfactor: 1.3,
                ..Default::default()
            },
        );
        assert!(pessimistic.sizing > nominal.sizing);
    }

    #[test]
    fn utilization_trades_area_for_congestion() {
        let d = design();
        let syn = synthesize(&d, &ToolParams::default());
        let loose = place(
            &d,
            &ToolParams {
                max_utilization: 0.55,
                ..Default::default()
            },
            &syn,
        );
        let tight = place(
            &d,
            &ToolParams {
                max_utilization: 0.95,
                ..Default::default()
            },
            &syn,
        );
        assert!(tight.core_area_um2 < loose.core_area_um2);
        assert!(tight.congestion > loose.congestion);
    }

    #[test]
    fn congestion_relief_options_work() {
        let d = design();
        let syn = synthesize(&d, &ToolParams::default());
        let base = place(&d, &ToolParams::default(), &syn);
        let uniform = place(
            &d,
            &ToolParams {
                uniform_density: true,
                ..Default::default()
            },
            &syn,
        );
        let high_cong = place(
            &d,
            &ToolParams {
                cong_effort: CongEffort::High,
                ..Default::default()
            },
            &syn,
        );
        assert!(uniform.congestion < base.congestion);
        assert!(uniform.avg_net_len_um > base.avg_net_len_um);
        assert!(high_cong.congestion < base.congestion);
    }

    #[test]
    fn power_driven_cts_saves_clock_power() {
        let d = design();
        let syn = synthesize(&d, &ToolParams::default());
        let pl = place(&d, &ToolParams::default(), &syn);
        let base = cts(&d, &ToolParams::default(), &pl);
        let saver = cts(
            &d,
            &ToolParams {
                clock_power_driven: true,
                ..Default::default()
            },
            &pl,
        );
        assert!(saver.clock_power_mw < base.clock_power_mw);
        assert!(saver.skew_ps > base.skew_ps);
    }

    #[test]
    fn tighter_drv_rules_insert_more_buffers() {
        let d = design();
        let syn = synthesize(&d, &ToolParams::default());
        let pl = place(&d, &ToolParams::default(), &syn);
        let loose = route(
            &d,
            &ToolParams {
                max_length_um: 350.0,
                max_transition_ns: 0.34,
                max_capacitance_pf: 0.20,
                max_fanout: 50,
                ..Default::default()
            },
            &pl,
        );
        let tight = route(
            &d,
            &ToolParams {
                max_length_um: 160.0,
                max_transition_ns: 0.10,
                max_capacitance_pf: 0.05,
                max_fanout: 25,
                ..Default::default()
            },
            &pl,
        );
        assert!(tight.buffers > loose.buffers);
        // Repeatered critical wire beats the unsegmented long wire.
        assert!(
            tight.critical_wire_ps < loose.critical_wire_ps,
            "tight {} vs loose {}",
            tight.critical_wire_ps,
            loose.critical_wire_ps
        );
    }

    #[test]
    fn sta_produces_sub_5ns_delay() {
        let d = design();
        let p = ToolParams::default();
        let syn = synthesize(&d, &p);
        let pl = place(&d, &p, &syn);
        let ct = cts(&d, &p, &pl);
        let rt = route(&d, &p, &pl);
        let delay = sta(&d, &p, &syn, &pl, &ct, &rt);
        assert!((0.05..5.0).contains(&delay), "delay {delay} ns");
    }

    #[test]
    fn power_in_milliwatt_range() {
        let d = design();
        let p = ToolParams::default();
        let syn = synthesize(&d, &p);
        let pl = place(&d, &p, &syn);
        let ct = cts(&d, &p, &pl);
        let rt = route(&d, &p, &pl);
        let pw = power(&d, &p, &syn, &ct, &rt);
        assert!((0.5..200.0).contains(&pw), "power {pw} mW");
    }

    #[test]
    fn higher_frequency_costs_power() {
        let d = design();
        let run = |freq: f64| {
            let p = ToolParams {
                freq_mhz: freq,
                ..Default::default()
            };
            let syn = synthesize(&d, &p);
            let pl = place(&d, &p, &syn);
            let ct = cts(&d, &p, &pl);
            let rt = route(&d, &p, &pl);
            power(&d, &p, &syn, &ct, &rt)
        };
        assert!(run(1300.0) > run(950.0));
    }

    #[test]
    fn area_includes_buffers_and_utilization() {
        let d = design();
        let p = ToolParams::default();
        let syn = synthesize(&d, &p);
        let pl = place(&d, &p, &syn);
        let rt = route(&d, &p, &pl);
        let a = area(&d, &p, &syn, &rt);
        assert!(a > d.stats().area_x1_um2, "area must exceed raw cell area");
        let p_tight = ToolParams {
            max_utilization: 0.90,
            ..Default::default()
        };
        let a_tight = area(&d, &p_tight, &syn, &rt);
        assert!(a_tight < a);
    }
}

//! Tunable tool parameters — the knobs of the paper's Table 1.
//!
//! The struct covers the union of both benchmark families' parameters; a
//! benchmark that does not tune a knob simply leaves it at the default
//! (matching the "-" cells of Table 1). [`ToolParams::from_config`] binds a
//! [`doe::Config`] drawn from a named [`doe::ParamSpace`] onto the struct,
//! so tuners stay agnostic of the flow's internals.

use doe::{Config, ParamSpace};
use serde::{Deserialize, Serialize};

/// `flowEffort`: overall flow effort (quality vs. turnaround trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FlowEffort {
    /// Balanced default flow.
    #[default]
    Standard,
    /// Maximum-effort flow: better QoR, much longer runtime.
    Extreme,
}

/// `timing_effort`: effort of timing-driven optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TimingEffort {
    /// Default timing effort.
    #[default]
    Medium,
    /// Aggressive timing optimization (upsizing, restructuring).
    High,
}

/// `cong_effort`: effort of congestion relief during placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CongEffort {
    /// Tool-selected effort.
    #[default]
    Auto,
    /// Maximum congestion-relief effort.
    High,
}

/// One full tool-parameter configuration (the union of Table 1 rows).
///
/// # Example
///
/// ```
/// use pdsim::{ToolParams, FlowEffort};
///
/// let p = ToolParams {
///     freq_mhz: 1200.0,
///     flow_effort: FlowEffort::Extreme,
///     ..ToolParams::default()
/// };
/// assert!(p.clock_period_ns() < 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToolParams {
    /// Target clock frequency, MHz (`freq`).
    pub freq_mhz: f64,
    /// RC pessimism factor used by pre-route optimization
    /// (`place_rcfactor`).
    pub place_rcfactor: f64,
    /// Clock uncertainty margin during placement, ps
    /// (`place_uncertainty`).
    pub place_uncertainty_ps: f64,
    /// Overall flow effort (`flowEffort`).
    pub flow_effort: FlowEffort,
    /// Timing optimization effort (`timing_effort`).
    pub timing_effort: TimingEffort,
    /// Power-aware clock-tree synthesis (`clock_power_driven`).
    pub clock_power_driven: bool,
    /// Even cell distribution for low-utilization designs
    /// (`uniform_density`).
    pub uniform_density: bool,
    /// Congestion-relief effort (`cong_effort`).
    pub cong_effort: CongEffort,
    /// Maximum local-bin density during global placement (`max_density`).
    pub max_density: f64,
    /// Maximum wire length before buffering, µm (`max_Length`, a DRV rule).
    pub max_length_um: f64,
    /// Maximum area utilization (`max_Density`).
    pub max_utilization: f64,
    /// Maximum transition (slew) time, ns (`max_transition`).
    pub max_transition_ns: f64,
    /// Maximum pin capacitance, pF (`max_capacitance`).
    pub max_capacitance_pf: f64,
    /// Maximum fanout before buffering (`max_fanout`).
    pub max_fanout: i64,
    /// Extra allowed path delay (slack relaxation), ns
    /// (`max_AllowedDelay`).
    pub max_allowed_delay_ns: f64,
}

impl Default for ToolParams {
    fn default() -> Self {
        ToolParams {
            freq_mhz: 1000.0,
            place_rcfactor: 1.1,
            place_uncertainty_ps: 50.0,
            flow_effort: FlowEffort::Standard,
            timing_effort: TimingEffort::Medium,
            clock_power_driven: false,
            uniform_density: false,
            cong_effort: CongEffort::Auto,
            max_density: 0.80,
            max_length_um: 250.0,
            max_utilization: 0.75,
            max_transition_ns: 0.25,
            max_capacitance_pf: 0.10,
            max_fanout: 32,
            max_allowed_delay_ns: 0.0,
        }
    }
}

impl ToolParams {
    /// Target clock period, ns.
    pub fn clock_period_ns(&self) -> f64 {
        1000.0 / self.freq_mhz
    }

    /// Binds a [`Config`] from `space` onto a parameter struct, starting
    /// from the defaults. Parameters absent from the space keep their
    /// default values (the "-" cells of Table 1).
    ///
    /// Recognized parameter names are the Table 1 spellings: `freq`,
    /// `place_rcfactor`, `place_uncertainty`, `flowEffort`,
    /// `timing_effort`, `clock_power_driven`, `uniform_density`,
    /// `cong_effort`, `max_density`, `max_Length`, `max_Density`,
    /// `max_transition`, `max_capacitance`, `max_fanout`,
    /// `max_AllowedDelay`.
    ///
    /// # Errors
    ///
    /// Propagates [`doe::DoeError`] when the configuration does not match
    /// the space; unknown parameter names are ignored (forward
    /// compatibility with extended spaces).
    pub fn from_config(space: &ParamSpace, config: &Config) -> Result<Self, doe::DoeError> {
        space.validate(config)?;
        let mut p = ToolParams::default();
        for (def, value) in space.iter().zip(config.values()) {
            match def.name() {
                "freq" => p.freq_mhz = value.to_f64(),
                "place_rcfactor" => p.place_rcfactor = value.to_f64(),
                "place_uncertainty" => p.place_uncertainty_ps = value.to_f64(),
                "flowEffort" => {
                    p.flow_effort = if value.to_f64() >= 1.0 {
                        FlowEffort::Extreme
                    } else {
                        FlowEffort::Standard
                    }
                }
                "timing_effort" => {
                    p.timing_effort = if value.to_f64() >= 1.0 {
                        TimingEffort::High
                    } else {
                        TimingEffort::Medium
                    }
                }
                "clock_power_driven" => {
                    p.clock_power_driven = value.as_bool().unwrap_or(value.to_f64() >= 0.5)
                }
                "uniform_density" => {
                    p.uniform_density = value.as_bool().unwrap_or(value.to_f64() >= 0.5)
                }
                "cong_effort" => {
                    p.cong_effort = if value.to_f64() >= 1.0 {
                        CongEffort::High
                    } else {
                        CongEffort::Auto
                    }
                }
                "max_density" => p.max_density = value.to_f64(),
                "max_Length" => p.max_length_um = value.to_f64(),
                "max_Density" => p.max_utilization = value.to_f64(),
                "max_transition" => p.max_transition_ns = value.to_f64(),
                "max_capacitance" => p.max_capacitance_pf = value.to_f64(),
                "max_fanout" => p.max_fanout = value.as_int().unwrap_or(value.to_f64() as i64),
                "max_AllowedDelay" => p.max_allowed_delay_ns = value.to_f64(),
                _ => {}
            }
        }
        Ok(p)
    }

    /// A stable 64-bit fingerprint of the configuration (used to seed the
    /// flow's deterministic noise).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        let mut mix = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.freq_mhz.to_bits());
        mix(self.place_rcfactor.to_bits());
        mix(self.place_uncertainty_ps.to_bits());
        mix(self.flow_effort as u64);
        mix(self.timing_effort as u64);
        mix(self.clock_power_driven as u64);
        mix(self.uniform_density as u64);
        mix(self.cong_effort as u64);
        mix(self.max_density.to_bits());
        mix(self.max_length_um.to_bits());
        mix(self.max_utilization.to_bits());
        mix(self.max_transition_ns.to_bits());
        mix(self.max_capacitance_pf.to_bits());
        mix(self.max_fanout as u64);
        mix(self.max_allowed_delay_ns.to_bits());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::float("freq", 1000.0, 1300.0).unwrap(),
            ParamDef::enumeration("flowEffort", &["standard", "extreme"]).unwrap(),
            ParamDef::boolean("uniform_density"),
            ParamDef::int("max_fanout", 25, 50).unwrap(),
            ParamDef::float("max_Density", 0.65, 0.90).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn default_period_is_one_ns() {
        assert!((ToolParams::default().clock_period_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_config_binds_named_parameters() {
        use doe::ParamValue::*;
        let s = space();
        let c = Config::new(vec![
            Float(1200.0),
            Enum(1),
            Bool(true),
            Int(40),
            Float(0.9),
        ]);
        let p = ToolParams::from_config(&s, &c).unwrap();
        assert_eq!(p.freq_mhz, 1200.0);
        assert_eq!(p.flow_effort, FlowEffort::Extreme);
        assert!(p.uniform_density);
        assert_eq!(p.max_fanout, 40);
        assert_eq!(p.max_utilization, 0.9);
        // Unbound parameters keep defaults.
        assert_eq!(p.place_rcfactor, ToolParams::default().place_rcfactor);
    }

    #[test]
    fn from_config_rejects_mismatched() {
        use doe::ParamValue::*;
        let s = space();
        let wrong = Config::new(vec![Float(1200.0)]);
        assert!(ToolParams::from_config(&s, &wrong).is_err());
    }

    #[test]
    fn unknown_names_are_ignored() {
        use doe::ParamValue::*;
        let s = ParamSpace::new(vec![
            ParamDef::float("freq", 900.0, 1100.0).unwrap(),
            ParamDef::float("mystery_knob", 0.0, 1.0).unwrap(),
        ])
        .unwrap();
        let c = Config::new(vec![Float(1000.0), Float(0.3)]);
        let p = ToolParams::from_config(&s, &c).unwrap();
        assert_eq!(p.freq_mhz, 1000.0);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = ToolParams::default();
        let mut b = a.clone();
        b.max_fanout = 33;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), ToolParams::default().fingerprint());
    }

    #[test]
    fn enum_defaults() {
        assert_eq!(FlowEffort::default(), FlowEffort::Standard);
        assert_eq!(TimingEffort::default(), TimingEffort::Medium);
        assert_eq!(CongEffort::default(), CongEffort::Auto);
    }
}

//! The composed PD flow: synthesis → placement → CTS → routing → STA /
//! power / area, plus deterministic run-to-run jitter.

use serde::{Deserialize, Serialize};

use crate::design::{hash_to_range, splitmix64, Design};
use crate::params::ToolParams;
use crate::qor::Qor;
use crate::stages;

/// A runnable physical-design flow bound to one [`Design`].
///
/// `run` is deterministic: the same design and parameters always produce
/// the same QoR. Run-to-run tool noise is modelled as a small multiplicative
/// jitter seeded by the (design, parameters) fingerprint, so it behaves
/// like a fixed property of each configuration — exactly how the paper's
/// offline benchmark tables treat it. The default amplitude (2.5 %)
/// reflects the placement-seed "layout lottery" of commercial flows, where
/// near-identical configurations routinely differ by a few percent.
///
/// # Example
///
/// ```
/// use pdsim::{Design, PdFlow, ToolParams};
///
/// let flow = PdFlow::new(Design::mac_small(7));
/// let a = flow.run(&ToolParams::default());
/// let b = flow.run(&ToolParams::default());
/// assert_eq!(a, b); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdFlow {
    design: Design,
    /// Relative amplitude of the deterministic jitter (default 1 %).
    jitter: f64,
}

impl PdFlow {
    /// Binds a flow to a design with the default 2.5 % jitter.
    pub fn new(design: Design) -> Self {
        PdFlow {
            design,
            jitter: 0.025,
        }
    }

    /// Sets the jitter amplitude (0 disables noise).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(jitter.is_finite() && jitter >= 0.0, "jitter must be >= 0");
        self.jitter = jitter;
        self
    }

    /// The bound design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs the flow for one parameter configuration and reports QoR.
    pub fn run(&self, params: &ToolParams) -> Qor {
        self.run_timed(params).0
    }

    /// Runs the flow and additionally stamps per-stage wall-clock timings
    /// (synthesis, placement, CTS, routing, signoff). The QoR is identical
    /// to [`PdFlow::run`]; the timings measure this process, so they vary
    /// run to run.
    pub fn run_timed(&self, params: &ToolParams) -> (Qor, StageTimings) {
        let t0 = std::time::Instant::now();
        let syn = stages::synthesize(&self.design, params);
        let t_synth = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let pl = stages::place(&self.design, params, &syn);
        let t_place = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let ct = stages::cts(&self.design, params, &pl);
        let t_cts = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let rt = stages::route(&self.design, params, &pl);
        let t_route = t0.elapsed().as_secs_f64();

        let t0 = std::time::Instant::now();
        let delay_ns = stages::sta(&self.design, params, &syn, &pl, &ct, &rt);
        let power_mw = stages::power(&self.design, params, &syn, &ct, &rt);
        let area_um2 = stages::area(&self.design, params, &syn, &rt);
        let t_signoff = t0.elapsed().as_secs_f64();

        let timings = StageTimings {
            synth_s: t_synth,
            place_s: t_place,
            cts_s: t_cts,
            route_s: t_route,
            signoff_s: t_signoff,
        };

        // Deterministic per-configuration jitter.
        let base = self
            .design
            .seed()
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(params.fingerprint());
        let j = |salt: u64| {
            1.0 + self.jitter * hash_to_range(splitmix64(base.wrapping_add(salt)), -1.0, 1.0)
        };
        let qor = Qor {
            area_um2: area_um2 * j(1),
            power_mw: power_mw * j(2),
            delay_ns: delay_ns * j(3),
        };
        (qor, timings)
    }
}

/// Wall-clock seconds each flow stage spent in one [`PdFlow::run_timed`]
/// call.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Logic synthesis.
    pub synth_s: f64,
    /// Placement.
    pub place_s: f64,
    /// Clock-tree synthesis.
    pub cts_s: f64,
    /// Routing.
    pub route_s: f64,
    /// Signoff (STA + power + area extraction).
    pub signoff_s: f64,
}

impl StageTimings {
    /// Total seconds across all stages.
    pub fn total_s(&self) -> f64 {
        self.synth_s + self.place_s + self.cts_s + self.route_s + self.signoff_s
    }

    /// `(name, seconds)` pairs in flow order, for sinks and reports.
    pub fn stages(&self) -> [(&'static str, f64); 5] {
        [
            ("synth", self.synth_s),
            ("place", self.place_s),
            ("cts", self.cts_s),
            ("route", self.route_s),
            ("signoff", self.signoff_s),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FlowEffort, TimingEffort};

    fn flow() -> PdFlow {
        PdFlow::new(Design::mac_small(42))
    }

    #[test]
    fn run_is_deterministic() {
        let f = flow();
        let p = ToolParams::default();
        assert_eq!(f.run(&p), f.run(&p));
    }

    #[test]
    fn qor_is_valid() {
        let q = flow().run(&ToolParams::default());
        assert!(q.is_valid(), "{q}");
    }

    #[test]
    fn run_timed_matches_run_and_times_stages() {
        let f = flow();
        let p = ToolParams::default();
        let (q, t) = f.run_timed(&p);
        assert_eq!(q, f.run(&p));
        for (name, secs) in t.stages() {
            assert!(secs >= 0.0, "{name} {secs}");
        }
        let total: f64 = t.stages().iter().map(|(_, s)| s).sum();
        assert!((t.total_s() - total).abs() < 1e-15);
    }

    #[test]
    fn jitter_is_bounded() {
        let noisy = flow();
        let clean = flow().with_jitter(0.0);
        let p = ToolParams::default();
        let qn = noisy.run(&p);
        let qc = clean.run(&p);
        for (n, c) in qn.to_vec().iter().zip(qc.to_vec()) {
            assert!((n / c - 1.0).abs() <= 0.0250001, "n={n} c={c}");
        }
    }

    #[test]
    fn different_configs_get_different_jitter() {
        let f = flow();
        let a = f.run(&ToolParams::default());
        let b = f.run(&ToolParams {
            max_fanout: 33,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn frequency_trades_delay_for_power() {
        let f = flow().with_jitter(0.0);
        let slow = f.run(&ToolParams {
            freq_mhz: 950.0,
            ..Default::default()
        });
        let fast = f.run(&ToolParams {
            freq_mhz: 1300.0,
            ..Default::default()
        });
        assert!(fast.delay_ns < slow.delay_ns, "fast {fast} vs slow {slow}");
        assert!(fast.power_mw > slow.power_mw);
        assert!(fast.area_um2 > slow.area_um2);
    }

    #[test]
    fn timing_effort_trades_power_for_delay() {
        let f = flow().with_jitter(0.0);
        let med = f.run(&ToolParams {
            timing_effort: TimingEffort::Medium,
            ..Default::default()
        });
        let high = f.run(&ToolParams {
            timing_effort: TimingEffort::High,
            ..Default::default()
        });
        assert!(high.delay_ns < med.delay_ns);
        assert!(high.power_mw > med.power_mw);
    }

    #[test]
    fn extreme_effort_improves_qor_broadly() {
        let f = flow().with_jitter(0.0);
        let std = f.run(&ToolParams {
            flow_effort: FlowEffort::Standard,
            ..Default::default()
        });
        let ext = f.run(&ToolParams {
            flow_effort: FlowEffort::Extreme,
            ..Default::default()
        });
        assert!(ext.delay_ns < std.delay_ns);
        assert!(ext.power_mw < std.power_mw);
        assert!(ext.area_um2 < std.area_um2);
    }

    #[test]
    fn utilization_trades_area_for_delay() {
        let f = flow().with_jitter(0.0);
        let loose = f.run(&ToolParams {
            max_utilization: 0.55,
            ..Default::default()
        });
        let tight = f.run(&ToolParams {
            max_utilization: 0.95,
            ..Default::default()
        });
        assert!(tight.area_um2 < loose.area_um2);
        assert!(
            tight.delay_ns > loose.delay_ns,
            "congestion should slow tight floorplans"
        );
    }

    #[test]
    fn similar_designs_respond_similarly() {
        // The transfer-learning premise: the small and large MAC move in
        // the same direction under the same parameter change.
        let small = PdFlow::new(Design::mac_small(1)).with_jitter(0.0);
        let large = PdFlow::new(Design::mac_large(2)).with_jitter(0.0);
        let base = ToolParams::default();
        let tuned = ToolParams {
            timing_effort: TimingEffort::High,
            ..Default::default()
        };
        let ds = small.run(&tuned).delay_ns - small.run(&base).delay_ns;
        let dl = large.run(&tuned).delay_ns - large.run(&base).delay_ns;
        assert!(ds < 0.0 && dl < 0.0, "both should speed up: {ds} {dl}");
    }

    #[test]
    fn large_design_uses_more_area_and_power() {
        let small = PdFlow::new(Design::mac_small(1)).with_jitter(0.0);
        let large = PdFlow::new(Design::mac_large(1)).with_jitter(0.0);
        let p = ToolParams::default();
        let qs = small.run(&p);
        let ql = large.run(&p);
        assert!(ql.area_um2 > 2.0 * qs.area_um2);
        assert!(ql.power_mw > 1.5 * qs.power_mw);
    }

    #[test]
    #[should_panic(expected = "jitter must be >= 0")]
    fn negative_jitter_rejected() {
        let _ = flow().with_jitter(-0.5);
    }
}

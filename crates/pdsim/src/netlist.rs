//! Structural netlist representation and the MAC design generator.
//!
//! The paper's benchmarks are multiply-accumulate (MAC) designs at two
//! sizes (~20k and ~67k placed cells). This module generates structurally
//! real MAC netlists — Booth-style partial products, a 3:2 compressor
//! reduction array, carry-lookahead final adders, accumulators, and a
//! cross-lane reduction tree — so that the features the flow model consumes
//! (cell count, combinational depth, pin capacitance, fanout profile) come
//! from an actual gate-level structure rather than hand-picked constants.

use serde::{Deserialize, Serialize};

use crate::library::{CellKind, CellLibrary, Drive};

/// Identifier of a net (an index into the netlist's net tables).
pub type NetId = usize;

/// Identifier of a cell (an index into [`Netlist::cells`]).
pub type CellId = usize;

/// One cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Function of the cell.
    pub kind: CellKind,
    /// Drive strength (as generated; the flow may virtually resize).
    pub drive: Drive,
}

/// A gate-level netlist: cells plus driver/sink connectivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    /// All cell instances.
    cells: Vec<Cell>,
    /// Input nets of each cell (parallel to `cells`).
    cell_inputs: Vec<Vec<NetId>>,
    /// Driving cell of each net; `None` for primary inputs.
    net_driver: Vec<Option<CellId>>,
    /// Sink count of each net (cells listening to it).
    net_sink_count: Vec<u32>,
}

impl Netlist {
    fn new() -> Self {
        Netlist {
            cells: Vec::new(),
            cell_inputs: Vec::new(),
            net_driver: Vec::new(),
            net_sink_count: Vec::new(),
        }
    }

    /// Creates a primary-input net.
    fn primary_input(&mut self) -> NetId {
        self.net_driver.push(None);
        self.net_sink_count.push(0);
        self.net_driver.len() - 1
    }

    /// Adds a cell with the given inputs; returns its output net.
    fn add_cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        let id = self.cells.len();
        self.cells.push(Cell {
            kind,
            drive: Drive::X1,
        });
        for &n in inputs {
            self.net_sink_count[n] += 1;
        }
        self.cell_inputs.push(inputs.to_vec());
        self.net_driver.push(Some(id));
        self.net_sink_count.push(0);
        self.net_driver.len() - 1
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets (primary inputs + cell outputs).
    pub fn net_count(&self) -> usize {
        self.net_driver.len()
    }

    /// Borrows the cell list.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of sequential cells.
    pub fn flop_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_sequential()).count()
    }

    /// Longest combinational path in gate levels (register-to-register:
    /// flop outputs restart at level 0, flop D-pins terminate paths).
    pub fn combinational_depth(&self) -> usize {
        // level[c] = combinational level of cell c's output.
        let n = self.cells.len();
        let mut level = vec![u32::MAX; n];
        let mut max_depth = 0u32;
        // Iterative DFS with explicit stack (netlists can be deep-ish).
        for start in 0..n {
            if level[start] != u32::MAX {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            while let Some(&(c, phase)) = stack.last() {
                if phase == 0 {
                    stack.last_mut().expect("nonempty").1 = 1;
                    if self.cells[c].kind.is_sequential() {
                        level[c] = 0;
                        stack.pop();
                        continue;
                    }
                    for &net in &self.cell_inputs[c] {
                        if let Some(d) = self.net_driver[net] {
                            if level[d] == u32::MAX && !self.cells[d].kind.is_sequential() {
                                stack.push((d, 0));
                            }
                        }
                    }
                } else {
                    let mut lv = 0u32;
                    for &net in &self.cell_inputs[c] {
                        if let Some(d) = self.net_driver[net] {
                            let dl = if self.cells[d].kind.is_sequential() {
                                0
                            } else {
                                level[d]
                            };
                            lv = lv.max(dl + 1);
                        } else {
                            lv = lv.max(1);
                        }
                    }
                    level[c] = lv;
                    max_depth = max_depth.max(lv);
                    stack.pop();
                }
            }
        }
        max_depth as usize
    }

    /// The distinct cells driving `cell`'s inputs (primary inputs are
    /// skipped; duplicates collapse).
    pub fn driver_cells(&self, cell: CellId) -> Vec<CellId> {
        let mut out = Vec::new();
        for &net in &self.cell_inputs[cell] {
            if let Some(d) = self.net_driver[net] {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Number of sinks listening to `cell`'s output net.
    pub fn fanout_count(&self, cell: CellId) -> usize {
        self.net_driver
            .iter()
            .position(|&d| d == Some(cell))
            .map_or(0, |net| self.net_sink_count[net] as usize)
    }

    /// Sink counts of every cell's output net in one pass (index = cell
    /// id) — use instead of per-cell [`Netlist::fanout_count`] in loops.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.cells.len()];
        for (net, &driver) in self.net_driver.iter().enumerate() {
            if let Some(c) = driver {
                out[c] = self.net_sink_count[net] as usize;
            }
        }
        out
    }

    /// Aggregate features used by the flow model.
    pub fn stats(&self, lib: &CellLibrary) -> NetlistStats {
        let mut area = 0.0;
        let mut cap = 0.0;
        let mut leak = 0.0;
        let mut pins = 0usize;
        for (c, ins) in self.cells.iter().zip(&self.cell_inputs) {
            area += lib.area(c.kind, c.drive);
            cap += lib.input_cap(c.kind, c.drive) * ins.len() as f64;
            leak += lib.leakage(c.kind, c.drive);
            pins += ins.len() + 1;
        }
        let driven_nets = self
            .net_sink_count
            .iter()
            .filter(|&&s| s > 0)
            .count()
            .max(1);
        let total_sinks: u64 = self.net_sink_count.iter().map(|&s| s as u64).sum();
        let max_fanout = self.net_sink_count.iter().copied().max().unwrap_or(0) as usize;
        NetlistStats {
            cells: self.cell_count(),
            flops: self.flop_count(),
            nets: self.net_count(),
            pins,
            comb_depth: self.combinational_depth(),
            area_x1_um2: area,
            input_cap_ff: cap,
            leakage_nw: leak,
            avg_fanout: total_sinks as f64 / driven_nets as f64,
            max_fanout,
        }
    }
}

/// Aggregate netlist features consumed by the flow model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Cell instances.
    pub cells: usize,
    /// Sequential cells.
    pub flops: usize,
    /// Nets.
    pub nets: usize,
    /// Total pins.
    pub pins: usize,
    /// Longest register-to-register path in gate levels.
    pub comb_depth: usize,
    /// Total cell area at drive X1, µm².
    pub area_x1_um2: f64,
    /// Total input pin capacitance, fF.
    pub input_cap_ff: f64,
    /// Total leakage, nW.
    pub leakage_nw: f64,
    /// Mean sinks per driven net.
    pub avg_fanout: f64,
    /// Largest structural fanout.
    pub max_fanout: usize,
}

/// Parameters of the generated multiply-accumulate design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Operand width in bits.
    pub width: usize,
    /// Number of parallel MAC lanes.
    pub lanes: usize,
    /// Extra accumulator guard bits beyond `2 * width`.
    pub accum_guard: usize,
    /// Pipeline the carry chains of wide adders into two stages.
    ///
    /// Wide MACs are engineered this way in practice precisely so the
    /// design meets the same clock target as its narrower siblings — the
    /// "similar designs respond similarly to the tool" premise of the
    /// paper's Scenario Two.
    pub two_stage_adders: bool,
}

impl MacConfig {
    /// The ~20k-cell MAC of the paper (Source1/Target1/Source2 design).
    pub fn small() -> Self {
        MacConfig {
            width: 16,
            lanes: 24,
            accum_guard: 8,
            two_stage_adders: false,
        }
    }

    /// The ~67k-cell MAC of the paper (Target2 design).
    pub fn large() -> Self {
        MacConfig {
            width: 32,
            lanes: 20,
            accum_guard: 8,
            two_stage_adders: true,
        }
    }

    /// Generates the gate-level netlist.
    ///
    /// # Panics
    ///
    /// Panics if `width < 4` or `lanes == 0`.
    pub fn generate(&self) -> Netlist {
        assert!(self.width >= 4, "MAC width must be at least 4 bits");
        assert!(self.lanes >= 1, "MAC needs at least one lane");
        let mut nl = Netlist::new();
        let mut lane_outputs: Vec<Vec<NetId>> = Vec::with_capacity(self.lanes);
        for _ in 0..self.lanes {
            lane_outputs.push(generate_lane(
                &mut nl,
                self.width,
                self.accum_guard,
                self.two_stage_adders,
            ));
        }
        // Cross-lane reduction: pairwise adder tree with a pipeline register
        // after each level.
        let mut current = lane_outputs;
        while current.len() > 1 {
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            let mut it = current.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => {
                        let sum = adder(&mut nl, &a, &b, self.two_stage_adders);
                        next.push(register_bank(&mut nl, &sum));
                    }
                    None => next.push(a),
                }
            }
            current = next;
        }
        nl
    }
}

/// One MAC lane: operand registers → Booth-style partial products →
/// 3:2 reduction array → carry-lookahead adder → pipeline register →
/// accumulator. Returns the accumulator output nets.
fn generate_lane(nl: &mut Netlist, width: usize, guard: usize, two_stage: bool) -> Vec<NetId> {
    // Operand registers (primary inputs clocked in).
    let a: Vec<NetId> = (0..width)
        .map(|_| {
            let d = nl.primary_input();
            let clk = nl.primary_input();
            nl.add_cell(CellKind::Dff, &[d, clk])
        })
        .collect();
    let b: Vec<NetId> = (0..width)
        .map(|_| {
            let d = nl.primary_input();
            let clk = nl.primary_input();
            nl.add_cell(CellKind::Dff, &[d, clk])
        })
        .collect();

    // Booth encoders: one per bit pair of `b`, three select signals each.
    let rows = width / 2;
    let mut pp_rows: Vec<Vec<NetId>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let b0 = b[(2 * r).min(width - 1)];
        let b1 = b[(2 * r + 1).min(width - 1)];
        let bm = if r == 0 { b[0] } else { b[2 * r - 1] };
        let sel_single = nl.add_cell(CellKind::Xor2, &[b0, bm]);
        let sel_double = nl.add_cell(CellKind::Xor2, &[b1, b0]);
        let sel_neg = nl.add_cell(CellKind::Nor2, &[b1, sel_single]);
        // Partial-product row: width+1 mux bits plus a sign-correction inv.
        let mut row: Vec<NetId> = (0..=width)
            .map(|i| {
                let ai = a[i.min(width - 1)];
                let aj = a[i.saturating_sub(1)];
                nl.add_cell(CellKind::Mux2, &[ai, aj, sel_double])
            })
            .collect();
        let sign = nl.add_cell(CellKind::Inv, &[sel_neg]);
        row.push(sign);
        pp_rows.push(row);
    }

    // 3:2 reduction array down to two rows.
    let out_width = 2 * width + 2;
    while pp_rows.len() > 2 {
        let mut next: Vec<Vec<NetId>> = Vec::new();
        let mut it = pp_rows.into_iter();
        while let Some(r0) = it.next() {
            match (it.next(), it.next()) {
                (Some(r1), Some(r2)) => {
                    let (sums, carries) = compress_3_2(nl, &r0, &r1, &r2, out_width);
                    next.push(sums);
                    next.push(carries);
                }
                (Some(r1), None) => {
                    next.push(r0);
                    next.push(r1);
                }
                _ => next.push(r0),
            }
        }
        pp_rows = next;
        // 3 rows → 2 rows per pass group; terminates because each group of
        // three becomes two.
        if pp_rows.len() <= 2 {
            break;
        }
    }
    let row0 = pp_rows.first().cloned().unwrap_or_default();
    let row1 = pp_rows.get(1).cloned().unwrap_or_else(|| row0.clone());

    // Final carry-lookahead adder and pipeline register.
    let product = adder(nl, &row0, &row1, two_stage);
    let piped = register_bank(nl, &product);

    // Accumulator: product + accumulator register, fed back through flops.
    let acc_width = 2 * width + guard;
    // Accumulator register outputs (feedback) — model as flops fed by the
    // adder outputs below; to avoid a constructive cycle, materialize the
    // register first from primary "reset" inputs, then the adder reads it.
    let acc_regs: Vec<NetId> = (0..acc_width)
        .map(|_| {
            let d = nl.primary_input();
            let clk = nl.primary_input();
            nl.add_cell(CellKind::Dff, &[d, clk])
        })
        .collect();
    let sum = adder(nl, &piped, &acc_regs, two_stage);
    register_bank(nl, &sum)
}

/// One 3:2 compression step over three rows: full adders where all three
/// rows have a bit, half adders where two do, pass-through otherwise.
fn compress_3_2(
    nl: &mut Netlist,
    r0: &[NetId],
    r1: &[NetId],
    r2: &[NetId],
    out_width: usize,
) -> (Vec<NetId>, Vec<NetId>) {
    let w = r0.len().max(r1.len()).max(r2.len()).min(out_width);
    let mut sums = Vec::with_capacity(w);
    let mut carries = Vec::with_capacity(w + 1);
    // Carry row is shifted left by one: seed column 0 with a pass-through.
    for col in 0..w {
        let bits: Vec<NetId> = [r0.get(col), r1.get(col), r2.get(col)]
            .into_iter()
            .flatten()
            .copied()
            .collect();
        match bits.len() {
            3 => {
                let x = nl.add_cell(CellKind::Xor2, &[bits[0], bits[1]]);
                let s = nl.add_cell(CellKind::Xor2, &[x, bits[2]]);
                let c = nl.add_cell(CellKind::Maj3, &[bits[0], bits[1], bits[2]]);
                sums.push(s);
                carries.push(c);
            }
            2 => {
                let s = nl.add_cell(CellKind::Xor2, &[bits[0], bits[1]]);
                let c = nl.add_cell(CellKind::And2, &[bits[0], bits[1]]);
                sums.push(s);
                carries.push(c);
            }
            1 => sums.push(bits[0]),
            _ => {}
        }
    }
    (sums, carries)
}

/// An adder, optionally pipelined into two stages at the carry-chain
/// midpoint (registers cut the carry and the not-yet-consumed operand
/// bits, halving the combinational depth at a flop-count cost).
fn adder(nl: &mut Netlist, a: &[NetId], b: &[NetId], two_stage: bool) -> Vec<NetId> {
    if !two_stage || a.len().max(b.len()) < 8 {
        return cla_adder(nl, a, b);
    }
    let w = a.len().max(b.len());
    let cut = w / 2;
    let pad = |v: &[NetId], nl: &mut Netlist| -> Vec<NetId> {
        // Pad the narrower operand with constant-zero primary inputs so
        // both halves line up.
        let mut out = v.to_vec();
        while out.len() < w {
            out.push(nl.primary_input());
        }
        out
    };
    let a = pad(a, nl);
    let b = pad(b, nl);
    // Stage 1: low half, producing sums and a carry-out.
    let low = cla_adder_with_carry(nl, &a[..cut], &b[..cut]);
    let (low_sums, carry) = low;
    // Pipeline registers across the cut: low sums, the carry, and the
    // untouched high operand bits.
    let mut regs_in: Vec<NetId> = low_sums;
    regs_in.push(carry);
    regs_in.extend_from_slice(&a[cut..]);
    regs_in.extend_from_slice(&b[cut..]);
    let regs = register_bank(nl, &regs_in);
    let low_q = &regs[..cut];
    let carry_q = regs[cut];
    let a_hi = &regs[cut + 1..cut + 1 + (w - cut)];
    let b_hi = &regs[cut + 1 + (w - cut)..];
    // Stage 2: high half with the registered carry folded into bit 0.
    let mut high = cla_adder(nl, a_hi, b_hi);
    if let Some(h0) = high.first().copied() {
        high[0] = nl.add_cell(CellKind::Xor2, &[h0, carry_q]);
    }
    let mut sums = low_q.to_vec();
    sums.extend(high);
    sums
}

/// Like [`cla_adder`] but also returns the final carry net.
fn cla_adder_with_carry(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
    let sums = cla_adder(nl, a, b);
    // Regenerate the carry from the top bits (structural approximation:
    // a majority over the top operand bits and top sum).
    let w = a.len().max(b.len());
    let ta = a[w.min(a.len()) - 1];
    let tb = b[w.min(b.len()) - 1];
    let ts = *sums.last().expect("adder has at least one bit");
    let carry = nl.add_cell(CellKind::Maj3, &[ta, tb, ts]);
    (sums, carry)
}

/// Ripple-of-lookahead-groups adder: P/G per bit, AOI carry cell per bit,
/// XOR sum per bit. Returns `max(a.len(), b.len())` sum nets.
fn cla_adder(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let w = a.len().max(b.len());
    let mut sums = Vec::with_capacity(w);
    let mut carry: Option<NetId> = None;
    for i in 0..w {
        match (a.get(i), b.get(i)) {
            (Some(&ai), Some(&bi)) => {
                let p = nl.add_cell(CellKind::Xor2, &[ai, bi]);
                let g = nl.add_cell(CellKind::And2, &[ai, bi]);
                let s = match carry {
                    Some(c) => nl.add_cell(CellKind::Xor2, &[p, c]),
                    None => p,
                };
                let c_out = match carry {
                    Some(c) => nl.add_cell(CellKind::Aoi21, &[p, c, g]),
                    None => g,
                };
                sums.push(s);
                carry = Some(c_out);
            }
            (Some(&x), None) | (None, Some(&x)) => {
                let s = match carry {
                    Some(c) => nl.add_cell(CellKind::Xor2, &[x, c]),
                    None => x,
                };
                let c_out = carry.map(|c| nl.add_cell(CellKind::And2, &[x, c]));
                sums.push(s);
                carry = c_out;
            }
            (None, None) => unreachable!("loop bounded by max width"),
        }
    }
    sums
}

/// A register bank: one DFF per input net, sharing a clock input net.
fn register_bank(nl: &mut Netlist, data: &[NetId]) -> Vec<NetId> {
    let clk = nl.primary_input();
    data.iter()
        .map(|&d| nl.add_cell(CellKind::Dff, &[d, clk]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mac_lands_near_20k_cells() {
        let nl = MacConfig::small().generate();
        let n = nl.cell_count();
        assert!(
            (14_000..=30_000).contains(&n),
            "small MAC has {n} cells, expected ~20k"
        );
    }

    #[test]
    fn large_mac_lands_near_67k_cells() {
        let nl = MacConfig::large().generate();
        let n = nl.cell_count();
        assert!(
            (52_000..=85_000).contains(&n),
            "large MAC has {n} cells, expected ~67k"
        );
    }

    #[test]
    fn large_is_substantially_larger() {
        let s = MacConfig::small().generate().cell_count();
        let l = MacConfig::large().generate().cell_count();
        assert!(l as f64 > 2.0 * s as f64);
    }

    #[test]
    fn depth_is_plausible_for_a_pipelined_mac() {
        let nl = MacConfig::small().generate();
        let d = nl.combinational_depth();
        // Reduction array + CLA carry chains: tens of levels, not thousands.
        assert!((10..=200).contains(&d), "depth {d}");
    }

    #[test]
    fn stats_are_consistent() {
        let lib = CellLibrary::sevennm();
        let nl = MacConfig {
            width: 8,
            lanes: 2,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate();
        let st = nl.stats(&lib);
        assert_eq!(st.cells, nl.cell_count());
        assert_eq!(st.flops, nl.flop_count());
        assert!(st.flops > 0 && st.flops < st.cells);
        assert!(st.area_x1_um2 > 0.0);
        assert!(st.input_cap_ff > 0.0);
        assert!(st.leakage_nw > 0.0);
        assert!(st.avg_fanout >= 1.0);
        assert!(st.max_fanout >= 2);
        assert!(st.nets >= st.cells);
        assert!(st.comb_depth == nl.combinational_depth());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MacConfig {
            width: 8,
            lanes: 3,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate();
        let b = MacConfig {
            width: 8,
            lanes: 3,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate();
        assert_eq!(a, b);
    }

    #[test]
    fn wider_mac_is_deeper() {
        let shallow = MacConfig {
            width: 8,
            lanes: 1,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate()
        .combinational_depth();
        let deep = MacConfig {
            width: 32,
            lanes: 1,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate()
        .combinational_depth();
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    #[should_panic(expected = "at least 4 bits")]
    fn rejects_tiny_width() {
        MacConfig {
            width: 2,
            lanes: 1,
            accum_guard: 2,
            two_stage_adders: false,
        }
        .generate();
    }

    #[test]
    fn cla_adder_width_is_max_of_inputs() {
        let mut nl = Netlist::new();
        let a: Vec<NetId> = (0..4).map(|_| nl.primary_input()).collect();
        let b: Vec<NetId> = (0..6).map(|_| nl.primary_input()).collect();
        let s = cla_adder(&mut nl, &a, &b);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn register_bank_adds_one_flop_per_bit() {
        let mut nl = Netlist::new();
        let data: Vec<NetId> = (0..5).map(|_| nl.primary_input()).collect();
        let q = register_bank(&mut nl, &data);
        assert_eq!(q.len(), 5);
        assert_eq!(nl.flop_count(), 5);
    }
}

//! Quality-of-results types: the (area, power, delay) triple and the
//! objective subspaces explored in the paper's Tables 2–3.

use serde::{Deserialize, Serialize};

/// One post-layout QoR metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Core area in µm² (smaller is better).
    Area,
    /// Total power in mW (smaller is better).
    Power,
    /// Critical-path delay in ns (smaller is better).
    Delay,
}

impl Objective {
    /// All three objectives in canonical (area, power, delay) order.
    pub const ALL: [Objective; 3] = [Objective::Area, Objective::Power, Objective::Delay];

    /// Short lowercase name (`"area"`, `"power"`, `"delay"`).
    pub fn name(self) -> &'static str {
        match self {
            Objective::Area => "area",
            Objective::Power => "power",
            Objective::Delay => "delay",
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An objective subspace: which QoR metrics a tuning run trades off.
///
/// These are the three "Multi-objective" rows of the paper's Tables 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectiveSpace {
    /// Area vs. delay.
    AreaDelay,
    /// Power vs. delay.
    PowerDelay,
    /// Area vs. power vs. delay.
    AreaPowerDelay,
}

impl ObjectiveSpace {
    /// The three spaces in the order the paper tabulates them.
    pub const ALL: [ObjectiveSpace; 3] = [
        ObjectiveSpace::AreaDelay,
        ObjectiveSpace::PowerDelay,
        ObjectiveSpace::AreaPowerDelay,
    ];

    /// The objectives spanned, in tabulation order.
    pub fn objectives(self) -> &'static [Objective] {
        match self {
            ObjectiveSpace::AreaDelay => &[Objective::Area, Objective::Delay],
            ObjectiveSpace::PowerDelay => &[Objective::Power, Objective::Delay],
            ObjectiveSpace::AreaPowerDelay => {
                &[Objective::Area, Objective::Power, Objective::Delay]
            }
        }
    }

    /// Dimensionality of the space (2 or 3).
    pub fn dim(self) -> usize {
        self.objectives().len()
    }

    /// The paper's row label, e.g. `"Area-Delay"`.
    pub fn label(self) -> &'static str {
        match self {
            ObjectiveSpace::AreaDelay => "Area-Delay",
            ObjectiveSpace::PowerDelay => "Power-Delay",
            ObjectiveSpace::AreaPowerDelay => "Area-Power-Delay",
        }
    }
}

impl std::fmt::Display for ObjectiveSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Post-layout quality of results reported by one PD-flow run.
///
/// All three metrics are minimized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qor {
    /// Core area in µm².
    pub area_um2: f64,
    /// Total (dynamic + clock + leakage) power in mW.
    pub power_mw: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
}

impl Qor {
    /// Creates a QoR triple.
    pub fn new(area_um2: f64, power_mw: f64, delay_ns: f64) -> Self {
        Qor {
            area_um2,
            power_mw,
            delay_ns,
        }
    }

    /// The value of one objective.
    pub fn objective(&self, obj: Objective) -> f64 {
        match obj {
            Objective::Area => self.area_um2,
            Objective::Power => self.power_mw,
            Objective::Delay => self.delay_ns,
        }
    }

    /// Projects the QoR onto an objective subspace, in tabulation order.
    pub fn project(&self, space: ObjectiveSpace) -> Vec<f64> {
        space
            .objectives()
            .iter()
            .map(|&o| self.objective(o))
            .collect()
    }

    /// Full (area, power, delay) vector.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![self.area_um2, self.power_mw, self.delay_ns]
    }

    /// `true` when all three metrics are finite and strictly positive.
    pub fn is_valid(&self) -> bool {
        [self.area_um2, self.power_mw, self.delay_ns]
            .iter()
            .all(|v| v.is_finite() && *v > 0.0)
    }
}

impl std::fmt::Display for Qor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "area={:.1}um2 power={:.3}mW delay={:.4}ns",
            self.area_um2, self.power_mw, self.delay_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_names() {
        assert_eq!(Objective::Area.name(), "area");
        assert_eq!(Objective::Power.to_string(), "power");
        assert_eq!(Objective::ALL.len(), 3);
    }

    #[test]
    fn space_projections() {
        let q = Qor::new(100.0, 20.0, 0.9);
        assert_eq!(q.project(ObjectiveSpace::AreaDelay), vec![100.0, 0.9]);
        assert_eq!(q.project(ObjectiveSpace::PowerDelay), vec![20.0, 0.9]);
        assert_eq!(
            q.project(ObjectiveSpace::AreaPowerDelay),
            vec![100.0, 20.0, 0.9]
        );
        assert_eq!(ObjectiveSpace::AreaDelay.dim(), 2);
        assert_eq!(ObjectiveSpace::AreaPowerDelay.dim(), 3);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(ObjectiveSpace::AreaDelay.label(), "Area-Delay");
        assert_eq!(ObjectiveSpace::PowerDelay.label(), "Power-Delay");
        assert_eq!(ObjectiveSpace::AreaPowerDelay.label(), "Area-Power-Delay");
    }

    #[test]
    fn validity() {
        assert!(Qor::new(1.0, 1.0, 1.0).is_valid());
        assert!(!Qor::new(0.0, 1.0, 1.0).is_valid());
        assert!(!Qor::new(1.0, f64::NAN, 1.0).is_valid());
        assert!(!Qor::new(1.0, 1.0, -0.5).is_valid());
    }

    #[test]
    fn display_contains_units() {
        let s = Qor::new(1.0, 2.0, 3.0).to_string();
        assert!(s.contains("um2") && s.contains("mW") && s.contains("ns"));
    }
}

//! Gate-level static timing analysis over the structural netlist.
//!
//! The flow model (`stages::sta`) estimates the critical path from
//! aggregate features (depth × mean stage delay) for speed; this module
//! computes the real thing — levelized arrival-time propagation over the
//! generated netlist with per-cell logical-effort delays — and is used to
//! validate that the aggregate model tracks the structural truth.

use crate::library::CellLibrary;
use crate::netlist::Netlist;

/// Result of a gate-level timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst register-to-register arrival time, ps (excluding setup).
    pub critical_path_ps: f64,
    /// Arrival time per cell output, ps (0 for flop outputs).
    pub arrival_ps: Vec<f64>,
    /// Index of the cell ending the critical path.
    pub critical_endpoint: Option<usize>,
}

impl TimingReport {
    /// The `n` worst endpoint arrival times, descending (for slack
    /// histograms).
    pub fn worst_endpoints(&self, n: usize) -> Vec<(usize, f64)> {
        let mut order: Vec<(usize, f64)> = self.arrival_ps.iter().copied().enumerate().collect();
        order.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        order.truncate(n);
        order
    }
}

/// Propagates arrival times through the netlist.
///
/// Model: each cell contributes its logical-effort stage delay under the
/// load of its fanout's input pins plus `wire_cap_ff` of estimated wire
/// per sink; flop outputs launch at t = 0 and flop D-pins terminate
/// paths. Combinational loops cannot occur in generated netlists (every
/// feedback goes through a flop).
///
/// # Example
///
/// ```
/// use pdsim::{sta_netlist, CellLibrary, MacConfig};
///
/// let netlist = MacConfig { width: 8, lanes: 1, accum_guard: 4, two_stage_adders: false }
///     .generate();
/// let lib = CellLibrary::sevennm();
/// let report = sta_netlist(&netlist, &lib, 0.4);
/// assert!(report.critical_path_ps > 0.0);
/// ```
pub fn sta_netlist(netlist: &Netlist, lib: &CellLibrary, wire_cap_ff: f64) -> TimingReport {
    let n = netlist.cell_count();
    let mut arrival = vec![f64::NAN; n];
    let mut critical = (None, 0.0f64);
    let fanouts = netlist.fanout_counts();

    // Iterative post-order DFS, mirroring `combinational_depth`.
    for start in 0..n {
        if !arrival[start].is_nan() {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some(&(c, expanded)) = stack.last() {
            if !expanded {
                stack.last_mut().expect("nonempty").1 = true;
                if netlist.cells()[c].kind.is_sequential() {
                    arrival[c] = 0.0;
                    stack.pop();
                    continue;
                }
                for d in netlist.driver_cells(c) {
                    if arrival[d].is_nan() && !netlist.cells()[d].kind.is_sequential() {
                        stack.push((d, false));
                    }
                }
            } else {
                let cell = netlist.cells()[c];
                // Load: this cell's fanout input pins + estimated wire.
                let sinks = fanouts[c] as f64;
                let load = sinks * lib.spec(cell.kind).input_cap_ff + sinks * wire_cap_ff;
                let delay = lib.stage_delay_ps(cell.kind, cell.drive, load);
                let mut t_in = 0.0f64;
                for d in netlist.driver_cells(c) {
                    let ta = if netlist.cells()[d].kind.is_sequential() {
                        // Launch: clock-to-q of the upstream flop.
                        lib.spec(crate::library::CellKind::Dff).intrinsic_ps
                    } else {
                        arrival[d]
                    };
                    t_in = t_in.max(ta);
                }
                let t = t_in + delay;
                arrival[c] = t;
                if t > critical.1 {
                    critical = (Some(c), t);
                }
                stack.pop();
            }
        }
    }
    TimingReport {
        critical_path_ps: critical.1,
        arrival_ps: arrival,
        critical_endpoint: critical.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MacConfig;

    fn small() -> Netlist {
        MacConfig {
            width: 8,
            lanes: 2,
            accum_guard: 4,
            two_stage_adders: false,
        }
        .generate()
    }

    #[test]
    fn critical_path_positive_and_bounded() {
        let nl = small();
        let lib = CellLibrary::sevennm();
        let r = sta_netlist(&nl, &lib, 0.4);
        assert!(r.critical_path_ps > 0.0);
        // Bounded by depth × slowest conceivable stage.
        let bound = nl.combinational_depth() as f64 * 200.0;
        assert!(
            r.critical_path_ps < bound,
            "{} vs {bound}",
            r.critical_path_ps
        );
        assert!(r.critical_endpoint.is_some());
    }

    #[test]
    fn arrival_times_respect_topology() {
        // Every combinational cell arrives strictly later than each of its
        // combinational drivers.
        let nl = small();
        let lib = CellLibrary::sevennm();
        let r = sta_netlist(&nl, &lib, 0.4);
        for c in 0..nl.cell_count() {
            if nl.cells()[c].kind.is_sequential() {
                continue;
            }
            for d in nl.driver_cells(c) {
                if !nl.cells()[d].kind.is_sequential() {
                    assert!(
                        r.arrival_ps[c] > r.arrival_ps[d],
                        "cell {c} at {} not after driver {d} at {}",
                        r.arrival_ps[c],
                        r.arrival_ps[d]
                    );
                }
            }
        }
    }

    #[test]
    fn two_stage_adders_cut_the_critical_path() {
        let lib = CellLibrary::sevennm();
        let ripple = MacConfig {
            width: 16,
            lanes: 1,
            accum_guard: 8,
            two_stage_adders: false,
        }
        .generate();
        let piped = MacConfig {
            width: 16,
            lanes: 1,
            accum_guard: 8,
            two_stage_adders: true,
        }
        .generate();
        let t_ripple = sta_netlist(&ripple, &lib, 0.4).critical_path_ps;
        let t_piped = sta_netlist(&piped, &lib, 0.4).critical_path_ps;
        assert!(
            t_piped < t_ripple,
            "pipelined {t_piped} ps should beat ripple {t_ripple} ps"
        );
    }

    #[test]
    fn structural_sta_tracks_aggregate_model_scale() {
        // The flow model's depth-based estimate and the structural STA
        // must agree within a small factor (they share the library).
        let nl = MacConfig::small().generate();
        let lib = CellLibrary::sevennm();
        let structural = sta_netlist(&nl, &lib, 0.4).critical_path_ps;
        let stats = nl.stats(&lib);
        let aggregate = stats.comb_depth as f64 * 12.0; // ~nominal stage
        let ratio = structural / aggregate;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn worst_endpoints_are_sorted() {
        let nl = small();
        let lib = CellLibrary::sevennm();
        let r = sta_netlist(&nl, &lib, 0.4);
        let worst = r.worst_endpoints(5);
        assert_eq!(worst.len(), 5);
        for w in worst.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(worst[0].1, r.critical_path_ps);
    }
}

//! A deterministic physical-design (PD) flow simulator.
//!
//! The PPATuner paper evaluates against Cadence Innovus — a closed
//! commercial tool whose single run takes hours to days. This crate is the
//! substitution (see `DESIGN.md` §2): a physically-motivated model of a
//! modern PD flow whose observable behaviour — the mapping from tool
//! parameters to post-layout **area / power / delay** — has the structure
//! an auto-tuner actually faces:
//!
//! - monotone effort/QoR trade-offs with diminishing returns,
//! - DRV constraints (`max_transition`, `max_capacitance`, `max_fanout`,
//!   `max_Length`) that trade buffer area/power against wire delay,
//! - density/congestion coupling (tight floorplans route worse),
//! - frequency-pressure-driven sizing (speed costs power and area),
//! - design-dependent response coefficients, so *similar designs respond
//!   similarly but not identically* — the transfer-learning premise.
//!
//! The pipeline mirrors a real flow:
//!
//! ```text
//! Netlist (generated MAC design)
//!   └─ synthesis sizing  → placement → CTS → routing/DRV fixing
//!        └─ STA (delay) + power + area roll-ups  →  QoR
//! ```
//!
//! Everything is deterministic given the design and the parameter
//! configuration (tool noise is modelled as hash-seeded jitter), so golden
//! Pareto fronts are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use pdsim::{Design, PdFlow, ToolParams};
//!
//! let design = Design::mac_small(42);
//! let flow = PdFlow::new(design);
//! let qor = flow.run(&ToolParams::default());
//! assert!(qor.delay_ns > 0.0 && qor.power_mw > 0.0 && qor.area_um2 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
pub mod faults;
pub mod flow;
pub mod library;
pub mod netlist;
pub mod params;
pub mod qor;
pub mod sta;
pub mod stages;

pub use design::Design;
pub use faults::{FaultDecision, FaultPlan, FaultyFlow, FlowFault};
pub use flow::{PdFlow, StageTimings};
pub use library::{CellKind, CellLibrary, Drive};
pub use netlist::{MacConfig, Netlist, NetlistStats};
pub use params::{CongEffort, FlowEffort, TimingEffort, ToolParams};
pub use qor::{Objective, ObjectiveSpace, Qor};
pub use sta::{sta_netlist, TimingReport};

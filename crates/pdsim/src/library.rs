//! A fictive 7 nm standard-cell library.
//!
//! The values are not any foundry's numbers; they are chosen to be
//! *mutually consistent* (relative areas, caps, leakages and delays follow
//! the usual ordering of a real library) so that netlist-level roll-ups —
//! total area, pin cap, leakage, logic depth × stage delay — land in
//! realistic ranges for a ~20k-cell block at a GHz-class clock.

use serde::{Deserialize, Serialize};

/// Combinational/sequential cell functions used by the MAC generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input XOR.
    Xor2,
    /// AND-OR-invert (2-1).
    Aoi21,
    /// 3-input majority (carry) gate.
    Maj3,
    /// 2:1 multiplexer.
    Mux2,
    /// D flip-flop (positive edge).
    Dff,
    /// Clock-tree buffer.
    ClkBuf,
}

impl CellKind {
    /// All kinds, for iteration.
    pub const ALL: [CellKind; 11] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Xor2,
        CellKind::Aoi21,
        CellKind::Maj3,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::ClkBuf,
    ];

    /// `true` for sequential cells.
    pub fn is_sequential(self) -> bool {
        self == CellKind::Dff
    }
}

/// Drive strength of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// Numeric strength multiplier.
    pub fn strength(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
        }
    }
}

/// Electrical/physical characteristics of one cell kind at drive X1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Footprint in µm².
    pub area_um2: f64,
    /// Input pin capacitance in fF (per input).
    pub input_cap_ff: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Parasitic (intrinsic) delay in ps.
    pub intrinsic_ps: f64,
    /// Logical effort (relative drive cost of the function).
    pub logical_effort: f64,
    /// Number of inputs.
    pub inputs: usize,
    /// Internal (short-circuit + internal node) energy per toggle, in fJ.
    pub internal_energy_fj: f64,
}

/// The cell library: [`CellSpec`]s per [`CellKind`], with drive-strength
/// scaling rules.
///
/// # Example
///
/// ```
/// use pdsim::{CellLibrary, CellKind, Drive};
///
/// let lib = CellLibrary::sevennm();
/// let inv = lib.spec(CellKind::Inv);
/// assert!(inv.area_um2 < lib.spec(CellKind::Dff).area_um2);
/// assert!(lib.area(CellKind::Inv, Drive::X4) > lib.area(CellKind::Inv, Drive::X1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    specs: Vec<(CellKind, CellSpec)>,
    /// Wire resistance per µm, in Ω.
    pub wire_res_ohm_per_um: f64,
    /// Wire capacitance per µm, in fF.
    pub wire_cap_ff_per_um: f64,
    /// Supply voltage, in V.
    pub vdd: f64,
    /// Technology time constant τ (ps per unit effort delay).
    pub tau_ps: f64,
}

impl CellLibrary {
    /// The fictive 7 nm library used throughout the reproduction.
    pub fn sevennm() -> Self {
        use CellKind::*;
        let specs = vec![
            (
                Inv,
                CellSpec {
                    area_um2: 0.09,
                    input_cap_ff: 0.7,
                    leakage_nw: 1.0,
                    intrinsic_ps: 4.0,
                    logical_effort: 1.00,
                    inputs: 1,
                    internal_energy_fj: 0.10,
                },
            ),
            (
                Buf,
                CellSpec {
                    area_um2: 0.12,
                    input_cap_ff: 0.8,
                    leakage_nw: 1.3,
                    intrinsic_ps: 7.0,
                    logical_effort: 1.10,
                    inputs: 1,
                    internal_energy_fj: 0.16,
                },
            ),
            (
                Nand2,
                CellSpec {
                    area_um2: 0.12,
                    input_cap_ff: 0.9,
                    leakage_nw: 1.5,
                    intrinsic_ps: 5.0,
                    logical_effort: 1.33,
                    inputs: 2,
                    internal_energy_fj: 0.14,
                },
            ),
            (
                Nor2,
                CellSpec {
                    area_um2: 0.12,
                    input_cap_ff: 0.9,
                    leakage_nw: 1.6,
                    intrinsic_ps: 6.0,
                    logical_effort: 1.67,
                    inputs: 2,
                    internal_energy_fj: 0.15,
                },
            ),
            (
                And2,
                CellSpec {
                    area_um2: 0.14,
                    input_cap_ff: 0.9,
                    leakage_nw: 1.7,
                    intrinsic_ps: 7.0,
                    logical_effort: 1.50,
                    inputs: 2,
                    internal_energy_fj: 0.17,
                },
            ),
            (
                Xor2,
                CellSpec {
                    area_um2: 0.22,
                    input_cap_ff: 1.4,
                    leakage_nw: 2.6,
                    intrinsic_ps: 9.0,
                    logical_effort: 1.90,
                    inputs: 2,
                    internal_energy_fj: 0.30,
                },
            ),
            (
                Aoi21,
                CellSpec {
                    area_um2: 0.16,
                    input_cap_ff: 1.0,
                    leakage_nw: 1.9,
                    intrinsic_ps: 7.0,
                    logical_effort: 1.70,
                    inputs: 3,
                    internal_energy_fj: 0.20,
                },
            ),
            (
                Maj3,
                CellSpec {
                    area_um2: 0.25,
                    input_cap_ff: 1.5,
                    leakage_nw: 2.8,
                    intrinsic_ps: 9.0,
                    logical_effort: 2.00,
                    inputs: 3,
                    internal_energy_fj: 0.32,
                },
            ),
            (
                Mux2,
                CellSpec {
                    area_um2: 0.18,
                    input_cap_ff: 1.1,
                    leakage_nw: 2.0,
                    intrinsic_ps: 8.0,
                    logical_effort: 1.70,
                    inputs: 3,
                    internal_energy_fj: 0.22,
                },
            ),
            (
                Dff,
                CellSpec {
                    area_um2: 0.55,
                    input_cap_ff: 1.1,
                    leakage_nw: 3.5,
                    intrinsic_ps: 35.0,
                    logical_effort: 1.50,
                    inputs: 2,
                    internal_energy_fj: 0.90,
                },
            ),
            (
                ClkBuf,
                CellSpec {
                    area_um2: 0.14,
                    input_cap_ff: 1.0,
                    leakage_nw: 1.8,
                    intrinsic_ps: 8.0,
                    logical_effort: 1.10,
                    inputs: 1,
                    internal_energy_fj: 0.20,
                },
            ),
        ];
        CellLibrary {
            specs,
            wire_res_ohm_per_um: 18.0,
            wire_cap_ff_per_um: 0.20,
            vdd: 0.75,
            tau_ps: 1.8,
        }
    }

    /// Borrows the spec for `kind`.
    ///
    /// # Panics
    ///
    /// Never panics for libraries built by [`CellLibrary::sevennm`], which
    /// covers every [`CellKind`].
    pub fn spec(&self, kind: CellKind) -> &CellSpec {
        self.specs
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| s)
            .expect("library covers every cell kind")
    }

    /// Area of an instance at the given drive (stronger transistors grow
    /// the footprint sub-linearly).
    pub fn area(&self, kind: CellKind, drive: Drive) -> f64 {
        self.spec(kind).area_um2 * (0.6 + 0.4 * drive.strength())
    }

    /// Input capacitance per pin at the given drive (scales with strength).
    pub fn input_cap(&self, kind: CellKind, drive: Drive) -> f64 {
        self.spec(kind).input_cap_ff * drive.strength()
    }

    /// Leakage at the given drive (scales with strength).
    pub fn leakage(&self, kind: CellKind, drive: Drive) -> f64 {
        self.spec(kind).leakage_nw * drive.strength()
    }

    /// Stage delay (ps) of an instance driving `load_ff` of capacitance,
    /// in the logical-effort model: `d = intrinsic + τ·g·h` with electrical
    /// effort `h = load / input_cap`.
    pub fn stage_delay_ps(&self, kind: CellKind, drive: Drive, load_ff: f64) -> f64 {
        let s = self.spec(kind);
        let cin = self.input_cap(kind, drive);
        let h = (load_ff / cin).max(0.0);
        s.intrinsic_ps + self.tau_ps * s.logical_effort * h
    }

    /// Setup time of the flip-flop, in ps.
    pub fn dff_setup_ps(&self) -> f64 {
        12.0
    }

    /// Clock pin capacitance of a flip-flop, in fF.
    pub fn dff_clk_cap_ff(&self) -> f64 {
        0.9
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::sevennm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_kinds() {
        let lib = CellLibrary::sevennm();
        for kind in CellKind::ALL {
            let s = lib.spec(kind);
            assert!(s.area_um2 > 0.0 && s.input_cap_ff > 0.0 && s.leakage_nw > 0.0);
            assert!(s.inputs >= 1);
        }
    }

    #[test]
    fn relative_ordering_is_sane() {
        let lib = CellLibrary::sevennm();
        // Flops are the biggest cells; inverters the smallest.
        assert!(lib.spec(CellKind::Dff).area_um2 > lib.spec(CellKind::Xor2).area_um2);
        assert!(lib.spec(CellKind::Inv).area_um2 <= lib.spec(CellKind::Nand2).area_um2);
        // XOR is slower (higher effort) than NAND.
        assert!(lib.spec(CellKind::Xor2).logical_effort > lib.spec(CellKind::Nand2).logical_effort);
    }

    #[test]
    fn drive_scaling_monotone() {
        let lib = CellLibrary::sevennm();
        for kind in CellKind::ALL {
            assert!(lib.area(kind, Drive::X4) > lib.area(kind, Drive::X2));
            assert!(lib.area(kind, Drive::X2) > lib.area(kind, Drive::X1));
            assert!(lib.input_cap(kind, Drive::X4) > lib.input_cap(kind, Drive::X1));
            assert!(lib.leakage(kind, Drive::X4) > lib.leakage(kind, Drive::X1));
        }
    }

    #[test]
    fn stronger_drive_is_faster_under_load() {
        let lib = CellLibrary::sevennm();
        let load = 20.0; // fF
        let d1 = lib.stage_delay_ps(CellKind::Nand2, Drive::X1, load);
        let d4 = lib.stage_delay_ps(CellKind::Nand2, Drive::X4, load);
        assert!(d4 < d1, "X4 {d4} should beat X1 {d1} at heavy load");
    }

    #[test]
    fn stage_delay_grows_with_load() {
        let lib = CellLibrary::sevennm();
        let d_light = lib.stage_delay_ps(CellKind::Inv, Drive::X1, 1.0);
        let d_heavy = lib.stage_delay_ps(CellKind::Inv, Drive::X1, 10.0);
        assert!(d_heavy > d_light);
    }

    #[test]
    fn sequential_flag() {
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Inv.is_sequential());
    }

    #[test]
    fn default_is_sevennm() {
        assert_eq!(CellLibrary::default(), CellLibrary::sevennm());
    }
}

//! Per-candidate uncertainty hyper-rectangles (Eqs. 9–10).

use serde::{Deserialize, Serialize};

/// The running uncertainty hyper-rectangle `U_t(x)` of one candidate in
/// QoR space (minimization convention).
///
/// The region starts as all of `R^n` and is shrunk each iteration by
/// intersecting with the model's `[μ − √τ·σ, μ + √τ·σ]` box (Eq. 10), so
/// it never grows. Once the candidate is evaluated on the real tool, the
/// region collapses to the observed point.
///
/// Terminology (minimization): [`UncertaintyRegion::optimistic`] is the
/// lower corner (best case), [`UncertaintyRegion::pessimistic`] the upper
/// corner (worst case).
///
/// # Example
///
/// ```
/// use ppatuner::UncertaintyRegion;
///
/// let mut u = UncertaintyRegion::unbounded(2);
/// u.intersect(&[1.0, 2.0], &[3.0, 4.0]);
/// u.intersect(&[0.5, 2.5], &[2.5, 5.0]); // only tightens
/// assert_eq!(u.optimistic(), &[1.0, 2.5]);
/// assert_eq!(u.pessimistic(), &[2.5, 4.0]);
/// assert!(u.diameter() > 0.0);
/// ```
/// Serialization note: regions serialize to JSON for checkpoint
/// inspection. JSON has no ±∞ literal — non-finite bounds become `null`
/// and read back as NaN — so still-unbounded coordinates do not survive a
/// round trip exactly. Checkpoint *verification* therefore relies on the
/// finite state (statuses, evaluations, RNG position), never on
/// deserialized regions; resume rebuilds regions by deterministic replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyRegion {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl UncertaintyRegion {
    /// The initial region `U_{−1} = R^n`.
    pub fn unbounded(dim: usize) -> Self {
        UncertaintyRegion {
            lo: vec![f64::NEG_INFINITY; dim],
            hi: vec![f64::INFINITY; dim],
        }
    }

    /// A region that is a single point (an evaluated candidate).
    pub fn point(value: &[f64]) -> Self {
        UncertaintyRegion {
            lo: value.to_vec(),
            hi: value.to_vec(),
        }
    }

    /// Dimension of the QoR space.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Intersects with a new `[lo, hi]` box (Eq. 10). If the boxes are
    /// disjoint in some coordinate (model moved outside the old region —
    /// possible with noisy refits), the region collapses to the tightest
    /// non-empty interval: the point nearest the new box.
    ///
    /// # Panics
    ///
    /// Panics when the box dimensions do not match the region.
    pub fn intersect(&mut self, lo: &[f64], hi: &[f64]) {
        assert_eq!(lo.len(), self.dim(), "intersect: lo dimension");
        assert_eq!(hi.len(), self.dim(), "intersect: hi dimension");
        for i in 0..self.lo.len() {
            let new_lo = self.lo[i].max(lo[i]);
            let new_hi = self.hi[i].min(hi[i]);
            if new_lo <= new_hi {
                self.lo[i] = new_lo;
                self.hi[i] = new_hi;
            } else {
                // Disjoint: collapse to the midpoint of the gap, which is
                // inside neither box but the most defensible single value.
                let mid = 0.5 * (new_lo + new_hi);
                self.lo[i] = mid;
                self.hi[i] = mid;
            }
        }
    }

    /// Collapses the region to an observed value.
    ///
    /// # Panics
    ///
    /// Panics when the value dimension does not match the region.
    pub fn collapse_to(&mut self, value: &[f64]) {
        assert_eq!(value.len(), self.dim(), "collapse_to: dimension");
        self.lo.copy_from_slice(value);
        self.hi.copy_from_slice(value);
    }

    /// The optimistic (lower, best-case) corner `min(U_t(x))`.
    pub fn optimistic(&self) -> &[f64] {
        &self.lo
    }

    /// The pessimistic (upper, worst-case) corner `max(U_t(x))`.
    pub fn pessimistic(&self) -> &[f64] {
        &self.hi
    }

    /// The diameter `‖max(U) − min(U)‖₂` (Eq. 13's selection score).
    /// Infinite while any coordinate is still unbounded.
    pub fn diameter(&self) -> f64 {
        let mut s = 0.0;
        for (l, h) in self.lo.iter().zip(&self.hi) {
            let d = h - l;
            if !d.is_finite() {
                return f64::INFINITY;
            }
            s += d * d;
        }
        s.sqrt()
    }

    /// `true` once the region is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_has_infinite_diameter() {
        let u = UncertaintyRegion::unbounded(3);
        assert_eq!(u.dim(), 3);
        assert_eq!(u.diameter(), f64::INFINITY);
        assert!(!u.is_point());
    }

    #[test]
    fn intersect_only_shrinks() {
        let mut u = UncertaintyRegion::unbounded(2);
        u.intersect(&[0.0, 0.0], &[10.0, 10.0]);
        let d1 = u.diameter();
        u.intersect(&[-5.0, 2.0], &[8.0, 20.0]);
        let d2 = u.diameter();
        assert!(d2 <= d1);
        assert_eq!(u.optimistic(), &[0.0, 2.0]);
        assert_eq!(u.pessimistic(), &[8.0, 10.0]);
    }

    #[test]
    fn disjoint_intersection_collapses_coordinate() {
        let mut u = UncertaintyRegion::unbounded(1);
        u.intersect(&[0.0], &[1.0]);
        u.intersect(&[2.0], &[3.0]); // disjoint
        assert!(u.is_point());
        assert!((u.optimistic()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn collapse_and_point() {
        let mut u = UncertaintyRegion::unbounded(2);
        u.collapse_to(&[1.0, 2.0]);
        assert!(u.is_point());
        assert_eq!(u.diameter(), 0.0);
        let p = UncertaintyRegion::point(&[3.0, 4.0]);
        assert!(p.is_point());
        assert_eq!(p.optimistic(), p.pessimistic());
    }

    #[test]
    fn diameter_is_euclidean() {
        let mut u = UncertaintyRegion::unbounded(2);
        u.intersect(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((u.diameter() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "intersect: lo dimension")]
    fn intersect_checks_dimensions() {
        let mut u = UncertaintyRegion::unbounded(2);
        u.intersect(&[0.0], &[1.0, 1.0]);
    }
}

//! PPATuner: Pareto-driven physical-design tool parameter auto-tuning via
//! Gaussian-process transfer learning (Geng & Xu, DAC 2022).
//!
//! The tuner explores a *finite* candidate set of tool-parameter
//! configurations (the paper's offline benchmarks) and asks a
//! [`QorOracle`] — the expensive PD tool — for golden QoR values as rarely
//! as possible, while classifying every candidate as **Pareto-optimal**
//! (within a δ slack) or **dropped**. Its loop (Algorithm 1):
//!
//! 1. **Model calibration** — one transfer GP per QoR metric predicts
//!    mean μ(x) and uncertainty σ(x) for undecided candidates; each
//!    candidate keeps a monotonically shrinking uncertainty
//!    hyper-rectangle `U_t(x) = U_{t−1}(x) ∩ [μ ± √τ·σ]` (Eqs. 9–10).
//! 2. **Decision-making** — drop candidates whose *optimistic* corner is
//!    δ-dominated by another candidate's *pessimistic* corner (Eq. 11);
//!    promote to Pareto candidates that no other point can δ-dominate
//!    even optimistically (Eq. 12).
//! 3. **Selection** — evaluate the candidate with the longest uncertainty
//!    diameter (Eq. 13) on the real tool, collapse its region. With
//!    `batch_size > 1` this generalizes to a diverse top-q batch
//!    ([`select_batch`]) evaluated concurrently through a
//!    [`ConcurrentOracle`] — same determinism, parallel wall-clock.
//!
//! # Example
//!
//! ```
//! use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};
//!
//! # fn main() -> Result<(), ppatuner::TunerError> {
//! // A toy bi-objective landscape over 1-D configurations.
//! let candidates: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
//! let truth: Vec<Vec<f64>> = candidates
//!     .iter()
//!     .map(|p| vec![p[0], (1.0 - p[0]).powi(2) + 0.1])
//!     .collect();
//! let mut oracle = VecOracle::new(truth.clone());
//! // Historical (source-task) data: the same landscape, slightly shifted.
//! let source = SourceData::new(
//!     candidates.clone(),
//!     truth.iter().map(|q| vec![q[0] + 0.02, q[1] + 0.02]).collect(),
//! )?;
//! let config = PpaTunerConfig { initial_samples: 8, ..PpaTunerConfig::default() };
//! let result = PpaTuner::new(config).run(&source, &candidates, &mut oracle)?;
//! assert!(!result.pareto_indices.is_empty());
//! assert!(result.runs <= 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod decision;
mod error;
mod oracle;
mod pool;
pub mod region;
pub mod supervisor;
mod tuner;

pub use checkpoint::{
    ChainCheckpointStore, Checkpoint, CheckpointError, CheckpointStore, EvalOutcome, EvalRecord,
    FileCheckpointStore, MemoryCheckpointStore, Recovery, StateSnapshot, CHECKPOINT_VERSION,
};
pub use decision::{classify, select_batch, BatchPick, DecisionOutcome, Status};
pub use error::TunerError;
pub use oracle::{
    ConcurrentOracle, CountingOracle, EvalError, FallibleOracle, FnOracle, QorOracle, SharedOracle,
    VecOracle, WatchdogOracle, WATCHDOG_STAGE,
};
pub use pool::{AdaptivePool, RefineOutcome};
pub use region::UncertaintyRegion;
pub use supervisor::{inject_fit_faults, FitFaultGuard, FitFaultPlan};
pub use tuner::{IterationRecord, PpaTuner, PpaTunerConfig, SourceData, TuneResult};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = TunerError> = std::result::Result<T, E>;

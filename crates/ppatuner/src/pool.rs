//! The adaptive candidate pool: ε-PAL-driven refinement of a bisection
//! cell tree ("Beyond Grids"-style adaptive discretization).
//!
//! A fixed LHS pool makes pool size the scaling axis of the whole loop:
//! every iteration predicts over all undecided candidates, so resolution
//! near the front costs resolution everywhere. The adaptive pool instead
//! starts from the caller's candidates as leaf representatives of a
//! [`doe::CellTree`] and *refines locally*: a leaf is bisected only while
//! its representative is still in the race and its ε-PAL
//! uncertainty-region diameter exceeds a Lipschitz-style bound
//! proportional to the cell's own diameter
//! (`diam(U_t(rep)) > scale · diam(cell)`). Where the model is already
//! certain — or the candidate is decided — cells stay coarse; dense
//! sampling concentrates where the predicted front lives.
//!
//! An optional *refinement ceiling* bounds the condition from above:
//! leaves whose representative's region diameter is at or past the
//! ceiling are treated as prior-dominated and skipped. Without it, the
//! split queue is permanently dominated by unexplored corners — a
//! far-field representative keeps a huge posterior σ no matter how often
//! its cell is halved (the statistical term does not shrink with
//! geometry), so each pass re-splits the same few exploration chains and
//! the budget never reaches the front. The ceiling encodes the
//! evaluate-vs-refine split of adaptive ε-PAL ("Beyond Grids"): where
//! uncertainty is prior-scale, an evaluation is worth more than any
//! amount of subdivision, and ε-PAL's max-diameter selection rule will
//! send one there anyway; where data has already tightened the region to
//! below the ceiling but geometry still dominates
//! (`diam(U) > scale · diam(cell)`), subdivision is what actually adds
//! resolution — and those cells are, by classification pressure, the
//! ones straddling the predicted front.
//!
//! Each split appends exactly one new candidate (the empty sibling's
//! center) to the caller's candidate list; existing candidates, statuses,
//! and regions are never touched, so refinement can never resurrect a
//! decided candidate. Split order is deterministic (largest region
//! diameter first, lowest leaf index on ties), which keeps golden traces
//! and checkpoint/resume replay exact.

use doe::CellTree;

use crate::decision::Status;
use crate::region::UncertaintyRegion;
use crate::TunerError;

/// What one refinement pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Leaves bisected (= candidates appended) this pass.
    pub splits: usize,
    /// Leaf count of the tree after the pass.
    pub leaves: usize,
    /// Effective pool size after the pass (see
    /// [`AdaptivePool::effective_pool`]).
    pub effective_pool: f64,
}

/// The tuner-facing adaptive pool: a [`CellTree`] plus the refinement
/// policy. Candidate coordinates stay owned by the tuner; the pool holds
/// only cell geometry and representative indices.
#[derive(Debug, Clone)]
pub struct AdaptivePool {
    tree: CellTree,
}

impl AdaptivePool {
    /// Builds the pool over the initial candidates. The parameter box is
    /// the unit cube, extended per-axis to cover any candidate that lies
    /// outside it (candidates are unit-cube encoded by convention, but
    /// the pool must not reject a caller's unconventional scaling).
    ///
    /// # Errors
    ///
    /// [`TunerError::InvalidInput`] when the candidate list is empty or
    /// the tree rejects it (ragged/non-finite rows are caught by the
    /// tuner before this).
    pub fn new(candidates: &[Vec<f64>]) -> crate::Result<Self> {
        let Some(first) = candidates.first() else {
            return Err(TunerError::InvalidInput {
                reason: "adaptive pool needs at least one candidate",
            });
        };
        let dim = first.len();
        let mut lo = vec![0.0f64; dim];
        let mut hi = vec![1.0f64; dim];
        for row in candidates {
            for (d, &v) in row.iter().enumerate() {
                if v < lo[d] {
                    lo[d] = v;
                }
                if v > hi[d] {
                    hi[d] = v;
                }
            }
        }
        let tree = CellTree::build(&lo, &hi, candidates).map_err(|_| TunerError::InvalidInput {
            reason: "adaptive pool rejected the candidate set",
        })?;
        Ok(AdaptivePool { tree })
    }

    /// Number of leaf cells.
    pub fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Effective pool size: the fixed-pool size whose uniform resolution
    /// matches the tree's finest leaf (`box volume / min leaf volume`).
    pub fn effective_pool(&self) -> f64 {
        self.tree.effective_pool()
    }

    /// One refinement pass. Splits every leaf whose representative is
    /// still active and whose region diameter is finite, larger than
    /// `scale` times the cell diameter, and strictly below `ceiling`
    /// (pass `f64::INFINITY` to disable the prior-dominated skip) —
    /// largest region diameter first, lowest leaf index on ties —
    /// bounded by `max_refines` splits per pass and `max_size` total
    /// candidates. Each split appends the new sibling-center candidate
    /// to `candidates` and registers it as that cell's representative;
    /// the caller extends its parallel state (status, region, flags) to
    /// the new length.
    #[allow(clippy::too_many_arguments)]
    pub fn refine(
        &mut self,
        candidates: &mut Vec<Vec<f64>>,
        regions: &[UncertaintyRegion],
        statuses: &[Status],
        scale: f64,
        ceiling: f64,
        max_refines: usize,
        max_size: usize,
    ) -> RefineOutcome {
        // (region diameter, leaf) of every leaf that wants a split.
        let mut due: Vec<(f64, usize)> = Vec::new();
        for leaf in self.tree.leaf_cells() {
            let Some(rep) = self.tree.rep(leaf) else {
                continue;
            };
            if !statuses[rep].is_active() {
                continue;
            }
            let d = regions[rep].diameter();
            if d.is_finite() && d > scale * self.tree.diameter(leaf) && d < ceiling {
                due.push((d, leaf));
            }
        }
        due.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut splits = 0;
        for (_, leaf) in due {
            if splits >= max_refines || candidates.len() >= max_size {
                break;
            }
            let rep = self.tree.rep(leaf).expect("due leaves have reps");
            let Some(split) = self.tree.split(leaf, &candidates[rep]) else {
                continue; // depth cap: the cell is as fine as f64 allows
            };
            let index = candidates.len();
            candidates.push(split.new_center);
            self.tree.set_rep(split.new_child, index);
            splits += 1;
        }
        RefineOutcome {
            splits,
            leaves: self.tree.leaf_count(),
            effective_pool: self.tree.effective_pool(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbounded(n: usize) -> Vec<UncertaintyRegion> {
        (0..n).map(|_| UncertaintyRegion::unbounded(2)).collect()
    }

    fn boxed(lo: f64, hi: f64) -> UncertaintyRegion {
        let mut r = UncertaintyRegion::unbounded(2);
        r.intersect(&[lo, lo], &[hi, hi]);
        r
    }

    #[test]
    fn refine_splits_only_uncertain_active_leaves() {
        let mut candidates = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        // Candidate 0: huge (finite) uncertainty; candidate 1: tiny.
        let regions = vec![boxed(0.0, 100.0), boxed(0.0, 1e-6)];
        let statuses = vec![Status::Undecided, Status::Undecided];
        let before = candidates.len();
        let out = pool.refine(
            &mut candidates,
            &regions,
            &statuses,
            1.0,
            f64::INFINITY,
            8,
            1000,
        );
        assert_eq!(out.splits, 1, "only the uncertain leaf splits");
        assert_eq!(candidates.len(), before + 1);
        assert_eq!(out.leaves, pool.leaf_count());
        assert!(out.effective_pool > 2.0);
    }

    #[test]
    fn unbounded_regions_never_trigger_refinement() {
        let mut candidates = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        let regions = unbounded(2);
        let statuses = vec![Status::Undecided; 2];
        let out = pool.refine(
            &mut candidates,
            &regions,
            &statuses,
            1.0,
            f64::INFINITY,
            8,
            1000,
        );
        assert_eq!(out.splits, 0, "infinite diameters carry no evidence");
    }

    #[test]
    fn decided_candidates_are_never_split() {
        let mut candidates = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        let regions = vec![boxed(0.0, 100.0), boxed(0.0, 100.0)];
        for statuses in [
            vec![Status::Dropped, Status::Quarantined],
            vec![Status::Dropped, Status::Dropped],
        ] {
            let out = pool.refine(
                &mut candidates,
                &regions,
                &statuses,
                1.0,
                f64::INFINITY,
                8,
                1000,
            );
            assert_eq!(out.splits, 0, "decided reps must stay put");
        }
        assert_eq!(candidates.len(), 2);
    }

    #[test]
    fn prior_dominated_leaves_are_skipped_by_the_ceiling() {
        let mut candidates = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        // Candidate 0 is prior-dominated (diameter past the ceiling);
        // candidate 1 is data-informed but still geometry-limited.
        let regions = vec![boxed(0.0, 100.0), boxed(0.0, 10.0)];
        let statuses = vec![Status::Undecided, Status::Undecided];
        let out = pool.refine(&mut candidates, &regions, &statuses, 1.0, 50.0, 8, 1000);
        assert_eq!(out.splits, 1, "only the informed leaf splits");
        assert_eq!(candidates.len(), 3);
        // A zero ceiling shuts refinement off entirely.
        let mut fresh = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        let mut pool = AdaptivePool::new(&fresh).unwrap();
        let out = pool.refine(&mut fresh, &regions, &statuses, 1.0, 0.0, 8, 1000);
        assert_eq!(out.splits, 0);
    }

    #[test]
    fn caps_bound_the_pass() {
        let mut candidates: Vec<Vec<f64>> =
            (0..8).map(|i| vec![(i as f64 + 0.5) / 8.0, 0.5]).collect();
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        let regions: Vec<UncertaintyRegion> = (0..8).map(|_| boxed(0.0, 100.0)).collect();
        let statuses = vec![Status::Undecided; 8];
        // max_refines cap.
        let out = pool.refine(
            &mut candidates,
            &regions,
            &statuses,
            1.0,
            f64::INFINITY,
            3,
            1000,
        );
        assert_eq!(out.splits, 3);
        // max_size cap: already at 11 candidates, cap at 12 → one split.
        let regions: Vec<UncertaintyRegion> =
            (0..candidates.len()).map(|_| boxed(0.0, 100.0)).collect();
        let statuses = vec![Status::Undecided; candidates.len()];
        let out = pool.refine(
            &mut candidates,
            &regions,
            &statuses,
            1.0,
            f64::INFINITY,
            100,
            12,
        );
        assert_eq!(out.splits, 1);
        assert_eq!(candidates.len(), 12);
    }

    #[test]
    fn refinement_is_deterministic() {
        let seed: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![(i as f64 + 0.3) / 6.0, ((i * 7 % 6) as f64 + 0.6) / 6.0])
            .collect();
        let regions: Vec<UncertaintyRegion> = (0..6).map(|i| boxed(0.0, 10.0 + i as f64)).collect();
        let statuses = vec![Status::Undecided; 6];
        let run = || {
            let mut candidates = seed.clone();
            let mut pool = AdaptivePool::new(&candidates).unwrap();
            pool.refine(
                &mut candidates,
                &regions,
                &statuses,
                1.0,
                f64::INFINITY,
                4,
                1000,
            );
            candidates
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_candidate_set_is_rejected() {
        assert!(AdaptivePool::new(&[]).is_err());
    }
}

//! The expensive-evaluation interface: what stands in for the PD tool.
//!
//! Real tool invocations crash, hang, and emit garbage QoR, so the
//! contract is fallible: [`QorOracle::evaluate`] returns
//! `Result<Vec<f64>, EvalError>` and the tuner's resilient executor
//! decides whether a failure is retried, quarantined, or fatal.

use serde::{Deserialize, Serialize};

/// Why one tool evaluation produced no usable QoR vector.
///
/// Every variant except [`EvalError::OutOfRange`] is *transient*: the
/// tuner retries it up to its failure budget (real flows are flaky —
/// license hiccups, placement-seed crashes, interrupted runs). An
/// out-of-range index is a caller bug and aborts the run immediately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EvalError {
    /// The tool process died before producing QoR.
    Crash {
        /// Tool-reported detail (exit status, log tail, ...).
        detail: String,
    },
    /// The tool exceeded its wall-clock budget.
    Timeout {
        /// The flow stage that was running when the budget expired.
        stage: String,
        /// Seconds elapsed when the run was killed.
        elapsed_s: f64,
    },
    /// The tool finished but its QoR is unusable (unparseable report,
    /// wrong dimension, non-finite or grossly outlying values).
    InvalidQor {
        /// What was wrong with the reported QoR.
        detail: String,
    },
    /// The requested candidate index does not exist (caller bug; never
    /// retried).
    OutOfRange {
        /// The requested index.
        index: usize,
        /// Number of candidates the oracle knows.
        len: usize,
    },
}

impl EvalError {
    /// `true` when retrying the same evaluation can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        !matches!(self, EvalError::OutOfRange { .. })
    }

    /// Short failure class for traces and reports (`"crash"`,
    /// `"timeout"`, `"invalid_qor"`, `"out_of_range"`).
    pub fn kind(&self) -> &'static str {
        match self {
            EvalError::Crash { .. } => "crash",
            EvalError::Timeout { .. } => "timeout",
            EvalError::InvalidQor { .. } => "invalid_qor",
            EvalError::OutOfRange { .. } => "out_of_range",
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Crash { detail } => write!(f, "tool crashed: {detail}"),
            EvalError::Timeout { stage, elapsed_s } => {
                write!(f, "tool timed out in stage {stage} after {elapsed_s:.1} s")
            }
            EvalError::InvalidQor { detail } => write!(f, "invalid QoR: {detail}"),
            EvalError::OutOfRange { index, len } => {
                write!(f, "candidate index {index} out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The PD tool as the tuner sees it: a function from candidate index to a
/// golden QoR vector (minimization), with a run counter.
///
/// Implementations wrap whatever actually produces QoR values — the
/// `pdsim` flow, a precomputed benchmark table, or a mock. Each
/// [`evaluate`](QorOracle::evaluate) call is one tool run (successful or
/// not — a crashed Innovus invocation still burned a license slot), so
/// `runs` must count failures too; the paper counts these runs as the
/// runtime cost (source-task history is free).
pub trait QorOracle {
    /// Runs the tool for candidate `index` and returns its QoR vector,
    /// or an [`EvalError`] describing why no usable QoR was produced.
    ///
    /// # Errors
    ///
    /// [`EvalError::OutOfRange`] for an unknown index; other variants at
    /// the implementation's discretion (fault injection, live tools).
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError>;

    /// Runs the tool for candidate `index`, whose parameter coordinates
    /// are `x`.
    ///
    /// Table-backed oracles key on the index alone and ignore `x`; the
    /// default implementation delegates to
    /// [`evaluate`](QorOracle::evaluate). Oracles that compute QoR from
    /// the coordinates (live flows, [`FnOracle`]) override this so the
    /// tuner can evaluate candidates that were *not* in the initial pool
    /// — adaptive-pool refinement appends candidates at indices the
    /// oracle has never seen.
    ///
    /// # Errors
    ///
    /// Same contract as [`evaluate`](QorOracle::evaluate).
    fn evaluate_at(&mut self, index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        let _ = x;
        self.evaluate(index)
    }

    /// Number of tool runs so far, including failed attempts.
    fn runs(&self) -> usize;
}

/// An oracle backed by a precomputed QoR table — the offline-benchmark
/// setting of the paper's evaluation (§4.1). Infallible except for
/// out-of-range indices.
///
/// # Example
///
/// ```
/// use ppatuner::{QorOracle, VecOracle};
///
/// let mut o = VecOracle::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(o.evaluate(1).unwrap(), vec![3.0, 4.0]);
/// assert_eq!(o.runs(), 1);
/// assert!(o.evaluate(7).is_err()); // out of range, not a panic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VecOracle {
    table: Vec<Vec<f64>>,
    runs: usize,
}

impl VecOracle {
    /// Wraps a QoR table (one vector per candidate).
    pub fn new(table: Vec<Vec<f64>>) -> Self {
        VecOracle { table, runs: 0 }
    }

    /// Number of candidates in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Borrows the full golden table (for metric computation; does not
    /// count as tool runs).
    pub fn table(&self) -> &[Vec<f64>] {
        &self.table
    }
}

impl QorOracle for VecOracle {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs += 1;
        match self.table.get(index) {
            Some(y) => Ok(y.clone()),
            None => Err(EvalError::OutOfRange {
                index,
                len: self.table.len(),
            }),
        }
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

/// Decorator that adds run counting to an infallible closure-based oracle
/// — useful when the evaluation is a live `pdsim` flow rather than a
/// table. For closures that can themselves fail, use [`FallibleOracle`].
pub struct CountingOracle<F> {
    f: F,
    runs: usize,
}

impl<F: FnMut(usize) -> Vec<f64>> CountingOracle<F> {
    /// Wraps an evaluation closure.
    pub fn new(f: F) -> Self {
        CountingOracle { f, runs: 0 }
    }
}

impl<F: FnMut(usize) -> Vec<f64>> QorOracle for CountingOracle<F> {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs += 1;
        Ok((self.f)(index))
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

impl<F> std::fmt::Debug for CountingOracle<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingOracle")
            .field("runs", &self.runs)
            .finish()
    }
}

/// Decorator that adds run counting to a *fallible* closure-based oracle
/// — the bridge for live flows that can crash or time out (for example
/// `pdsim::faults::FaultyFlow`).
pub struct FallibleOracle<F> {
    f: F,
    runs: usize,
}

impl<F: FnMut(usize) -> Result<Vec<f64>, EvalError>> FallibleOracle<F> {
    /// Wraps a fallible evaluation closure.
    pub fn new(f: F) -> Self {
        FallibleOracle { f, runs: 0 }
    }
}

impl<F: FnMut(usize) -> Result<Vec<f64>, EvalError>> QorOracle for FallibleOracle<F> {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs += 1;
        (self.f)(index)
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

impl<F> std::fmt::Debug for FallibleOracle<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FallibleOracle")
            .field("runs", &self.runs)
            .finish()
    }
}

/// A thread-safe oracle front end: the contract for concurrent batch
/// fan-out (`&self` evaluation, `Sync`), so several workers can have tool
/// runs in flight at once.
///
/// Implementations decide how much real concurrency they offer. A farm of
/// tool licenses (or a simulator that sleeps per run, like the `qscale`
/// bench) evaluates truly in parallel; [`SharedOracle`] adapts any
/// sequential [`QorOracle`] by serializing calls behind a mutex —
/// correct, but without wall-clock overlap.
///
/// The tuner guarantees that concurrent calls are always for *distinct*
/// candidate indices (one batch member each), and that batch composition
/// and all results are deterministic regardless of completion order.
pub trait ConcurrentOracle: Sync {
    /// Runs the tool for candidate `index`; may be called from several
    /// worker threads at once (always with distinct indices).
    ///
    /// # Errors
    ///
    /// [`EvalError::OutOfRange`] for an unknown index; other variants at
    /// the implementation's discretion (fault injection, live tools).
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError>;

    /// Runs the tool for candidate `index` at parameter coordinates `x`;
    /// may be called from several worker threads at once.
    ///
    /// The default delegates to [`evaluate`](ConcurrentOracle::evaluate)
    /// (index-keyed tables ignore coordinates); coordinate-driven oracles
    /// override it so adaptive-pool candidates beyond the initial table
    /// remain evaluable.
    ///
    /// # Errors
    ///
    /// Same contract as [`evaluate`](ConcurrentOracle::evaluate).
    fn evaluate_at(&self, index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        let _ = x;
        self.evaluate(index)
    }

    /// Number of tool runs so far, including failed attempts.
    fn runs(&self) -> usize;
}

/// Adapts any sequential [`QorOracle`] into a [`ConcurrentOracle`] by
/// serializing evaluations behind a mutex.
///
/// This keeps table- and closure-backed oracles usable with the
/// concurrent entry points (`PpaTuner::run_concurrent`) without giving up
/// their exact sequential semantics: per-candidate attempt counts and
/// run totals are interleaving-independent, so results match the serial
/// path bit for bit. Real overlap requires a natively concurrent oracle.
///
/// # Example
///
/// ```
/// use ppatuner::{ConcurrentOracle, QorOracle, SharedOracle, VecOracle};
///
/// let o = SharedOracle::new(VecOracle::new(vec![vec![1.0], vec![2.0]]));
/// assert_eq!(o.evaluate(1).unwrap(), vec![2.0]);
/// assert_eq!(o.runs(), 1);
/// assert_eq!(o.into_inner().runs(), 1);
/// ```
#[derive(Debug)]
pub struct SharedOracle<O> {
    inner: std::sync::Mutex<O>,
}

impl<O: QorOracle + Send> SharedOracle<O> {
    /// Wraps a sequential oracle for shared use.
    pub fn new(oracle: O) -> Self {
        SharedOracle {
            inner: std::sync::Mutex::new(oracle),
        }
    }

    /// Unwraps the inner oracle (e.g. to read a `VecOracle` table back).
    pub fn into_inner(self) -> O {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<O: QorOracle + Send> ConcurrentOracle for SharedOracle<O> {
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evaluate(index)
    }

    fn evaluate_at(&self, index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evaluate_at(index, x)
    }

    fn runs(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).runs()
    }
}

/// An oracle that computes QoR directly from parameter *coordinates* — an
/// analytic stand-in for a live PD flow. This is the natural oracle for
/// adaptive candidate pools: refinement appends candidates the initial
/// table never contained, and only a coordinate-driven oracle can price
/// them.
///
/// Implements both [`QorOracle`] and [`ConcurrentOracle`] (the closure is
/// `Fn + Sync`, so workers may overlap). The index-keyed
/// `evaluate(index)` entry point is unsupported — it reports
/// [`EvalError::OutOfRange`] because there is no table to look up — but
/// the tuner always calls [`evaluate_at`](QorOracle::evaluate_at), which
/// this type overrides.
///
/// # Example
///
/// ```
/// use ppatuner::{FnOracle, QorOracle};
///
/// let mut o = FnOracle::new(|x: &[f64]| vec![x[0], 1.0 - x[0]]);
/// assert_eq!(o.evaluate_at(7, &[0.25]).unwrap(), vec![0.25, 0.75]);
/// assert_eq!(o.runs(), 1);
/// assert!(o.evaluate(7).is_err()); // no table behind this oracle
/// ```
pub struct FnOracle<F> {
    f: F,
    runs: std::sync::atomic::AtomicUsize,
}

impl<F: Fn(&[f64]) -> Vec<f64>> FnOracle<F> {
    /// Wraps a coordinate-to-QoR closure.
    pub fn new(f: F) -> Self {
        FnOracle {
            f,
            runs: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl<F> std::fmt::Debug for FnOracle<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOracle")
            .field(
                "runs",
                &self.runs.load(std::sync::atomic::Ordering::Relaxed),
            )
            .finish()
    }
}

impl<F: Fn(&[f64]) -> Vec<f64>> QorOracle for FnOracle<F> {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Err(EvalError::OutOfRange { index, len: 0 })
    }

    fn evaluate_at(&mut self, _index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok((self.f)(x))
    }

    fn runs(&self) -> usize {
        self.runs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<F: Fn(&[f64]) -> Vec<f64> + Sync> ConcurrentOracle for FnOracle<F> {
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Err(EvalError::OutOfRange { index, len: 0 })
    }

    fn evaluate_at(&self, _index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok((self.f)(x))
    }

    fn runs(&self) -> usize {
        self.runs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// The `stage` string of watchdog-produced [`EvalError::Timeout`]s. The
/// tuner recognizes it to emit a `WatchdogFired` trace event alongside
/// the ordinary `EvalFailed`; real tool timeouts carry flow-stage names
/// (`synth`, `route`, ...) and are left alone.
pub const WATCHDOG_STAGE: &str = "watchdog";

/// Wraps a [`ConcurrentOracle`] with an enforced per-attempt wall-clock
/// deadline: an evaluation that has not returned within `deadline_s` is
/// abandoned and reported as a deterministic [`EvalError::Timeout`] with
/// stage [`WATCHDOG_STAGE`], feeding the tuner's existing
/// retry/quarantine machinery. A hung worker thus costs one attempt, not
/// the whole wave.
///
/// Each evaluation runs on a detached helper thread holding an `Arc` of
/// the inner oracle; on expiry the helper is *abandoned*, not killed (the
/// hung tool call keeps its thread until it returns, which is the only
/// option without OS-level cancellation — real deployments put the tool
/// in a child process and make the inner oracle kill it on drop). The
/// reported `elapsed_s` is the *configured deadline*, not measured
/// wall-clock, so replay logs and traces stay bit-identical across runs
/// and worker counts.
#[derive(Debug)]
pub struct WatchdogOracle<O> {
    inner: std::sync::Arc<O>,
    deadline_s: f64,
    runs: std::sync::atomic::AtomicUsize,
    fired: std::sync::atomic::AtomicUsize,
}

impl<O: ConcurrentOracle + Send + Sync + 'static> WatchdogOracle<O> {
    /// Wraps `oracle` with a per-attempt deadline of `deadline_s` seconds.
    ///
    /// # Panics
    ///
    /// When `deadline_s` is not finite and positive — a watchdog that can
    /// never fire (or always fires) is a configuration bug.
    pub fn new(oracle: O, deadline_s: f64) -> Self {
        assert!(
            deadline_s.is_finite() && deadline_s > 0.0,
            "watchdog deadline must be finite and positive, got {deadline_s}"
        );
        WatchdogOracle {
            inner: std::sync::Arc::new(oracle),
            deadline_s,
            runs: std::sync::atomic::AtomicUsize::new(0),
            fired: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The enforced per-attempt deadline, in seconds.
    pub fn deadline_s(&self) -> f64 {
        self.deadline_s
    }

    /// How many evaluations the watchdog has abandoned so far.
    pub fn fired(&self) -> usize {
        self.fired.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn guard<F>(&self, call: F) -> Result<Vec<f64>, EvalError>
    where
        F: FnOnce(&O) -> Result<Vec<f64>, EvalError> + Send + 'static,
    {
        self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        let inner = std::sync::Arc::clone(&self.inner);
        std::thread::spawn(move || {
            // The receiver may be gone if the deadline already expired;
            // a refused send is exactly the abandoned-attempt case.
            let _ = tx.send(call(&inner));
        });
        match rx.recv_timeout(std::time::Duration::from_secs_f64(self.deadline_s)) {
            Ok(result) => result,
            Err(_) => {
                self.fired
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(EvalError::Timeout {
                    stage: WATCHDOG_STAGE.into(),
                    elapsed_s: self.deadline_s,
                })
            }
        }
    }
}

impl<O: ConcurrentOracle + Send + Sync + 'static> ConcurrentOracle for WatchdogOracle<O> {
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.guard(move |inner| inner.evaluate(index))
    }

    fn evaluate_at(&self, index: usize, x: &[f64]) -> Result<Vec<f64>, EvalError> {
        let x = x.to_vec();
        self.guard(move |inner| inner.evaluate_at(index, &x))
    }

    fn runs(&self) -> usize {
        // Attempts *this wrapper* started: abandoned attempts must keep
        // counting as burned tool runs even though the inner oracle may
        // still be stuck inside them.
        self.runs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_oracle_counts_runs() {
        let mut o = VecOracle::new(vec![vec![1.0], vec![2.0]]);
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.runs(), 0);
        o.evaluate(0).unwrap();
        o.evaluate(1).unwrap();
        o.evaluate(0).unwrap();
        assert_eq!(o.runs(), 3);
        assert_eq!(o.table().len(), 2);
    }

    #[test]
    fn counting_oracle_wraps_closures() {
        let mut o = CountingOracle::new(|i| vec![i as f64 * 2.0]);
        assert_eq!(o.evaluate(3).unwrap(), vec![6.0]);
        assert_eq!(o.runs(), 1);
        assert!(format!("{o:?}").contains("runs"));
    }

    #[test]
    fn fallible_oracle_passes_errors_through_and_counts() {
        let mut o = FallibleOracle::new(|i| {
            if i == 0 {
                Ok(vec![1.0])
            } else {
                Err(EvalError::Crash {
                    detail: "boom".into(),
                })
            }
        });
        assert_eq!(o.evaluate(0).unwrap(), vec![1.0]);
        assert!(o.evaluate(1).is_err());
        // Failed attempts still count as tool runs.
        assert_eq!(o.runs(), 2);
        assert!(format!("{o:?}").contains("runs"));
    }

    #[test]
    fn vec_oracle_reports_out_of_range() {
        let mut o = VecOracle::new(vec![vec![1.0]]);
        let err = o.evaluate(5).unwrap_err();
        assert_eq!(err, EvalError::OutOfRange { index: 5, len: 1 }, "got {err}");
        assert!(!err.is_transient());
        // The failed call still counted as a run.
        assert_eq!(o.runs(), 1);
    }

    #[test]
    fn eval_error_display_kind_and_transience() {
        let cases: Vec<(EvalError, &str, bool)> = vec![
            (
                EvalError::Crash {
                    detail: "sig 9".into(),
                },
                "crash",
                true,
            ),
            (
                EvalError::Timeout {
                    stage: "route".into(),
                    elapsed_s: 12.5,
                },
                "timeout",
                true,
            ),
            (
                EvalError::InvalidQor {
                    detail: "NaN power".into(),
                },
                "invalid_qor",
                true,
            ),
            (
                EvalError::OutOfRange { index: 9, len: 3 },
                "out_of_range",
                false,
            ),
        ];
        for (e, kind, transient) in cases {
            assert_eq!(e.kind(), kind);
            assert_eq!(e.is_transient(), transient);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn shared_oracle_serializes_concurrent_callers() {
        let o = SharedOracle::new(VecOracle::new((0..64).map(|i| vec![i as f64]).collect()));
        std::thread::scope(|s| {
            for w in 0..4 {
                let o = &o;
                s.spawn(move || {
                    for i in (w..64).step_by(4) {
                        assert_eq!(o.evaluate(i).unwrap(), vec![i as f64]);
                    }
                });
            }
        });
        assert_eq!(o.runs(), 64);
        assert_eq!(o.into_inner().runs(), 64);
    }

    #[test]
    fn evaluate_at_defaults_to_index_lookup() {
        // Table oracles ignore the coordinates: same answer either way.
        let mut o = VecOracle::new(vec![vec![1.0], vec![2.0]]);
        assert_eq!(o.evaluate_at(1, &[0.123]).unwrap(), vec![2.0]);
        assert_eq!(o.runs(), 1);
        let shared = SharedOracle::new(VecOracle::new(vec![vec![5.0]]));
        assert_eq!(shared.evaluate_at(0, &[0.9]).unwrap(), vec![5.0]);
    }

    #[test]
    fn fn_oracle_evaluates_coordinates_and_counts() {
        let o = FnOracle::new(|x: &[f64]| vec![x[0] + x[1], x[0] * x[1]]);
        // Concurrent entry point (shared reference).
        assert_eq!(
            ConcurrentOracle::evaluate_at(&o, 99, &[2.0, 3.0]).unwrap(),
            vec![5.0, 6.0]
        );
        // The index-keyed path has no table to answer from.
        assert!(ConcurrentOracle::evaluate(&o, 0).is_err());
        assert_eq!(ConcurrentOracle::runs(&o), 2);
        assert!(format!("{o:?}").contains("runs"));
    }

    /// Hangs (well past any test deadline) on index 1, answers instantly
    /// elsewhere.
    struct HangOnOne {
        runs: std::sync::atomic::AtomicUsize,
    }

    impl ConcurrentOracle for HangOnOne {
        fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
            self.runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if index == 1 {
                std::thread::sleep(std::time::Duration::from_secs(5));
            }
            Ok(vec![index as f64])
        }

        fn runs(&self) -> usize {
            self.runs.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn watchdog_passes_fast_results_and_abandons_hung_ones() {
        let o = WatchdogOracle::new(
            HangOnOne {
                runs: std::sync::atomic::AtomicUsize::new(0),
            },
            0.05,
        );
        assert_eq!(o.deadline_s(), 0.05);
        assert_eq!(o.evaluate(0).unwrap(), vec![0.0]);
        assert_eq!(o.evaluate_at(2, &[0.5]).unwrap(), vec![2.0]);
        assert_eq!(o.fired(), 0);

        let err = o.evaluate(1).unwrap_err();
        // The reported timeout is the *configured* deadline under the
        // dedicated watchdog stage — fully deterministic, so it can live
        // in replay logs.
        assert_eq!(
            err,
            EvalError::Timeout {
                stage: WATCHDOG_STAGE.into(),
                elapsed_s: 0.05,
            },
            "got {err}"
        );
        assert!(err.is_transient());
        assert_eq!(o.fired(), 1);
        // Abandoned attempts still count as burned tool runs.
        assert_eq!(o.runs(), 3);
    }

    #[test]
    #[should_panic(expected = "watchdog deadline")]
    fn watchdog_rejects_nonpositive_deadline() {
        let _ = WatchdogOracle::new(
            HangOnOne {
                runs: std::sync::atomic::AtomicUsize::new(0),
            },
            0.0,
        );
    }

    #[test]
    fn eval_error_round_trips_through_json() {
        let e = EvalError::Timeout {
            stage: "cts".into(),
            elapsed_s: 3.5,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: EvalError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}

//! The expensive-evaluation interface: what stands in for the PD tool.

/// The PD tool as the tuner sees it: a function from candidate index to a
/// golden QoR vector (minimization), with a run counter.
///
/// Implementations wrap whatever actually produces QoR values — the
/// `pdsim` flow, a precomputed benchmark table, or a mock. Each
/// [`evaluate`](QorOracle::evaluate) call is one tool run; the paper
/// counts these as the runtime cost (source-task history is free).
pub trait QorOracle {
    /// Runs the tool for candidate `index` and returns its QoR vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `index` is out of range.
    fn evaluate(&mut self, index: usize) -> Vec<f64>;

    /// Number of tool runs so far.
    fn runs(&self) -> usize;
}

/// An oracle backed by a precomputed QoR table — the offline-benchmark
/// setting of the paper's evaluation (§4.1).
///
/// # Example
///
/// ```
/// use ppatuner::{QorOracle, VecOracle};
///
/// let mut o = VecOracle::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(o.evaluate(1), vec![3.0, 4.0]);
/// assert_eq!(o.runs(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VecOracle {
    table: Vec<Vec<f64>>,
    runs: usize,
}

impl VecOracle {
    /// Wraps a QoR table (one vector per candidate).
    pub fn new(table: Vec<Vec<f64>>) -> Self {
        VecOracle { table, runs: 0 }
    }

    /// Number of candidates in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Borrows the full golden table (for metric computation; does not
    /// count as tool runs).
    pub fn table(&self) -> &[Vec<f64>] {
        &self.table
    }
}

impl QorOracle for VecOracle {
    fn evaluate(&mut self, index: usize) -> Vec<f64> {
        self.runs += 1;
        self.table[index].clone()
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

/// Decorator that adds run counting to a closure-based oracle — useful
/// when the evaluation is a live `pdsim` flow rather than a table.
pub struct CountingOracle<F> {
    f: F,
    runs: usize,
}

impl<F: FnMut(usize) -> Vec<f64>> CountingOracle<F> {
    /// Wraps an evaluation closure.
    pub fn new(f: F) -> Self {
        CountingOracle { f, runs: 0 }
    }
}

impl<F: FnMut(usize) -> Vec<f64>> QorOracle for CountingOracle<F> {
    fn evaluate(&mut self, index: usize) -> Vec<f64> {
        self.runs += 1;
        (self.f)(index)
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

impl<F> std::fmt::Debug for CountingOracle<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingOracle")
            .field("runs", &self.runs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_oracle_counts_runs() {
        let mut o = VecOracle::new(vec![vec![1.0], vec![2.0]]);
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
        assert_eq!(o.runs(), 0);
        o.evaluate(0);
        o.evaluate(1);
        o.evaluate(0);
        assert_eq!(o.runs(), 3);
        assert_eq!(o.table().len(), 2);
    }

    #[test]
    fn counting_oracle_wraps_closures() {
        let mut o = CountingOracle::new(|i| vec![i as f64 * 2.0]);
        assert_eq!(o.evaluate(3), vec![6.0]);
        assert_eq!(o.runs(), 1);
        assert!(format!("{o:?}").contains("runs"));
    }

    #[test]
    #[should_panic]
    fn vec_oracle_panics_out_of_range() {
        let mut o = VecOracle::new(vec![vec![1.0]]);
        o.evaluate(5);
    }
}

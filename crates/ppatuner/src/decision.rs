//! The decision-making stage: δ-domination dropping (Eq. 11),
//! δ-accurate Pareto classification (Eq. 12), and the diverse top-q
//! batch selection rule that generalizes Eq. 13 to concurrent
//! evaluation.

use crate::region::UncertaintyRegion;

/// Classification state of one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Not yet decided; still competing.
    Undecided,
    /// Classified as (δ-accurate) Pareto-optimal.
    Pareto,
    /// δ-dominated by another candidate; out of the race.
    Dropped,
    /// The candidate exhausted its evaluation failure budget (every tool
    /// attempt crashed, timed out, or produced unusable QoR). Terminal:
    /// never selected or evaluated again, and — like `Dropped` — it no
    /// longer influences classification, because its region is stale
    /// model speculation that can never be confirmed and would otherwise
    /// stall promotion of healthy candidates forever.
    Quarantined,
}

impl Status {
    /// `true` while the candidate still competes for the front
    /// (`Undecided` or `Pareto`).
    pub fn is_active(self) -> bool {
        matches!(self, Status::Undecided | Status::Pareto)
    }
}

/// Outcome of one decision pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionOutcome {
    /// Candidates dropped this pass.
    pub dropped: Vec<usize>,
    /// Candidates promoted to Pareto this pass.
    pub promoted: Vec<usize>,
}

/// `true` iff `a ≤ b + delta` componentwise (δ-relaxed weak dominance).
fn delta_leq(a: &[f64], b: &[f64], delta: &[f64]) -> bool {
    a.iter().zip(b).zip(delta).all(|((&x, &y), &d)| x <= y + d)
}

/// Runs one decision pass over the candidates (Eqs. 11–12), in place.
///
/// For every undecided candidate `x`:
///
/// - **Drop** (Eq. 11) when some other active candidate `x'` satisfies
///   `max(U(x')) ≤ min(U(x)) + δ`: even `x'`'s worst case δ-dominates
///   `x`'s best case, so `x` cannot be needed for the front.
/// - **Promote** (Eq. 12) when *no* other active candidate `x'` satisfies
///   `min(U(x')) + δ ≤ max(U(x))` componentwise: no rival's best case can
///   beat `x`'s worst case by more than δ, so `x` is at most δ-worse than
///   any true Pareto point.
///
/// "Active" means `Undecided` or `Pareto` (dropped and quarantined
/// candidates no longer influence decisions). Promotion is checked after
/// dropping, as in Algorithm 1 (lines 8–9).
///
/// # Panics
///
/// Panics when `regions`, `statuses` lengths differ or `delta` does not
/// match the QoR dimension.
pub fn classify(
    regions: &[UncertaintyRegion],
    statuses: &mut [Status],
    delta: &[f64],
) -> DecisionOutcome {
    assert_eq!(regions.len(), statuses.len(), "classify: length mismatch");
    let n = regions.len();
    let mut outcome = DecisionOutcome::default();
    if n == 0 {
        return outcome;
    }
    assert_eq!(regions[0].dim(), delta.len(), "classify: delta dimension");

    // Pass 1: dropping (Eq. 11). Compare against the statuses as of the
    // start of the pass so the result does not depend on index order.
    // When two candidates δ-dominate each other (near-duplicates within
    // the slack), only the less preferred one drops: preference is the
    // smaller pessimistic-corner sum, then the smaller index.
    let before: Vec<Status> = statuses.to_vec();
    let prefer = |a: usize, b: usize| -> bool {
        let sa: f64 = regions[a].pessimistic().iter().sum();
        let sb: f64 = regions[b].pessimistic().iter().sum();
        match sa.partial_cmp(&sb) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => a < b,
        }
    };
    for i in 0..n {
        if before[i] != Status::Undecided {
            continue;
        }
        let opt_i = regions[i].optimistic();
        let dominated = (0..n).any(|j| {
            j != i
                && before[j].is_active()
                && delta_leq(regions[j].pessimistic(), opt_i, delta)
                && !(delta_leq(regions[i].pessimistic(), regions[j].optimistic(), delta)
                    && prefer(i, j))
        });
        if dominated {
            statuses[i] = Status::Dropped;
            outcome.dropped.push(i);
        }
    }

    // Pass 2: promotion (Eq. 12), against post-drop statuses.
    let after_drop: Vec<Status> = statuses.to_vec();
    for i in 0..n {
        if after_drop[i] != Status::Undecided {
            continue;
        }
        let pess_i = regions[i].pessimistic();
        let might_be_beaten = (0..n).any(|j| {
            j != i && after_drop[j].is_active() && {
                // x' might δ-dominate x: opt(x') + δ ≤ pess(x).
                regions[j]
                    .optimistic()
                    .iter()
                    .zip(pess_i)
                    .zip(delta)
                    .all(|((&oj, &pi), &d)| oj + d <= pi)
            }
        });
        if !might_be_beaten {
            statuses[i] = Status::Pareto;
            outcome.promoted.push(i);
        }
    }
    outcome
}

/// One pick of the diversity-penalized batch selection rule.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPick {
    /// Candidate index.
    pub index: usize,
    /// Uncertainty-region diameter at selection time (Eq. 13 criterion).
    pub diameter: f64,
    /// Greedy score `diam · (1 − γ·red)` at the moment of the pick. The
    /// first pick is unpenalized (`score == diameter`); scores are
    /// non-increasing along the batch.
    pub score: f64,
}

/// Redundancy of candidate `i` against an already-picked `j`: the larger
/// of a parameter-space proximity term (`1 − dist/r`, clamped at 0) and a
/// dominance-shadow term (1 when `j`'s pessimistic corner weakly
/// dominates `i`'s optimistic corner — evaluating `j` is expected to
/// settle `i`'s fate, so spending a second license on `i` is wasteful).
fn pair_redundancy(
    candidates: &[Vec<f64>],
    regions: &[UncertaintyRegion],
    i: usize,
    j: usize,
    radius: f64,
) -> f64 {
    let shadowed = regions[j]
        .pessimistic()
        .iter()
        .zip(regions[i].optimistic())
        .all(|(&pj, &oi)| pj <= oi);
    if shadowed {
        return 1.0;
    }
    let dist = candidates[i]
        .iter()
        .zip(&candidates[j])
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    (1.0 - dist / radius).max(0.0)
}

/// Selects a diverse batch of up to `q` candidates for evaluation — the
/// concurrent generalization of the paper's Eq. 13.
///
/// Eligible candidates are active (`Undecided` or `Pareto`), not yet
/// evaluated, and have a positive region diameter. Picks are made
/// greedily: each step takes the eligible candidate maximizing
/// `score = diam · (1 − γ·red)`, where `red` is the candidate's maximal
/// [`pair_redundancy`] against the members picked so far and
/// `γ = diversity` scales the penalty. The first pick has `red = 0`, so
/// `q = 1` reduces exactly to argmax-diameter — the paper's rule.
///
/// Ties are broken deterministically by lexicographically minimizing
/// `(−score, red, −diameter, index)` under IEEE total order, pinning the
/// result bit-for-bit for golden traces and the brute-force reference in
/// `testkit`.
///
/// # Panics
///
/// Panics when the input slice lengths disagree. `diversity` must lie in
/// `[0, 1)` and `radius` must be positive; both are validated by
/// `PpaTunerConfig::validate` before reaching this function.
pub fn select_batch(
    candidates: &[Vec<f64>],
    regions: &[UncertaintyRegion],
    statuses: &[Status],
    evaluated: &[bool],
    q: usize,
    diversity: f64,
    radius: f64,
) -> Vec<BatchPick> {
    assert_eq!(
        candidates.len(),
        regions.len(),
        "select_batch: length mismatch"
    );
    assert_eq!(
        candidates.len(),
        statuses.len(),
        "select_batch: length mismatch"
    );
    assert_eq!(
        candidates.len(),
        evaluated.len(),
        "select_batch: length mismatch"
    );
    let eligible: Vec<(usize, f64)> = (0..candidates.len())
        .filter(|&i| statuses[i].is_active() && !evaluated[i])
        .map(|i| (i, regions[i].diameter()))
        .filter(|&(_, d)| d > 0.0)
        .collect();
    let k = q.min(eligible.len());
    // Running redundancy vs the picked set: max is order-insensitive, so
    // updating incrementally is bit-identical to a fresh max over members.
    let mut red = vec![0.0_f64; eligible.len()];
    let mut taken = vec![false; eligible.len()];
    let mut picks = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(f64, f64, f64, usize, usize)> = None;
        for (pos, &(i, diam)) in eligible.iter().enumerate() {
            if taken[pos] {
                continue;
            }
            let score = diam * (1.0 - diversity * red[pos]);
            let key = (score, red[pos], diam, i, pos);
            let wins = match best {
                None => true,
                Some((bs, br, bd, bi, _)) => match score.total_cmp(&bs) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => match red[pos].total_cmp(&br) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Greater => false,
                        std::cmp::Ordering::Equal => match diam.total_cmp(&bd) {
                            std::cmp::Ordering::Greater => true,
                            std::cmp::Ordering::Less => false,
                            std::cmp::Ordering::Equal => i < bi,
                        },
                    },
                },
            };
            if wins {
                best = Some(key);
            }
        }
        let (score, _, diameter, index, pos) = best.expect("k ≤ eligible.len()");
        taken[pos] = true;
        for (p, &(j, _)) in eligible.iter().enumerate() {
            if !taken[p] {
                let r = pair_redundancy(candidates, regions, j, index, radius);
                if r > red[p] {
                    red[p] = r;
                }
            }
        }
        picks.push(BatchPick {
            index,
            diameter,
            score,
        });
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(v: &[f64]) -> UncertaintyRegion {
        UncertaintyRegion::point(v)
    }

    fn boxed(lo: &[f64], hi: &[f64]) -> UncertaintyRegion {
        let mut u = UncertaintyRegion::unbounded(lo.len());
        u.intersect(lo, hi);
        u
    }

    #[test]
    fn exact_points_reduce_to_pareto_logic() {
        // (1,4), (2,2), (4,1) front; (3,3) dominated by (2,2).
        let regions = vec![
            pt(&[1.0, 4.0]),
            pt(&[2.0, 2.0]),
            pt(&[4.0, 1.0]),
            pt(&[3.0, 3.0]),
        ];
        let mut statuses = vec![Status::Undecided; 4];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![3]);
        assert_eq!(statuses[0], Status::Pareto);
        assert_eq!(statuses[1], Status::Pareto);
        assert_eq!(statuses[2], Status::Pareto);
        assert_eq!(statuses[3], Status::Dropped);
    }

    #[test]
    fn uncertain_candidates_stay_undecided() {
        // A wide box overlapping the known point: neither droppable nor
        // promotable.
        let regions = vec![pt(&[2.0, 2.0]), boxed(&[1.0, 1.0], &[4.0, 4.0])];
        let mut statuses = vec![Status::Undecided; 2];
        classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(statuses[1], Status::Undecided);
        // The known point cannot be promoted either: the box's optimistic
        // corner (1,1) dominates it.
        assert_eq!(statuses[0], Status::Undecided);
    }

    #[test]
    fn clearly_bad_box_is_dropped() {
        // Box entirely dominated by the point even in its best case.
        let regions = vec![pt(&[1.0, 1.0]), boxed(&[3.0, 3.0], &[5.0, 5.0])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![1]);
        // With the rival gone, the point is promoted.
        assert_eq!(statuses[0], Status::Pareto);
    }

    #[test]
    fn delta_relaxation_drops_near_duplicates() {
        // (2.05, 2.05) is within δ = 0.1 of (2, 2): dropped.
        let regions = vec![pt(&[2.0, 2.0]), pt(&[2.05, 2.05])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.1, 0.1]);
        assert_eq!(out.dropped, vec![1]);
        assert_eq!(statuses[0], Status::Pareto);
    }

    #[test]
    fn identical_points_keep_first() {
        let regions = vec![pt(&[2.0, 2.0]), pt(&[2.0, 2.0])];
        let mut statuses = vec![Status::Undecided; 2];
        classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(statuses[0], Status::Pareto);
        assert_eq!(statuses[1], Status::Dropped);
    }

    #[test]
    fn dropped_candidates_do_not_influence() {
        // A dominating rival that is already dropped must not drop others.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[2.0, 2.0])];
        let mut statuses = vec![Status::Dropped, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert!(out.dropped.is_empty());
        assert_eq!(statuses[1], Status::Pareto);
    }

    #[test]
    fn incomparable_points_all_promote() {
        let regions = vec![pt(&[1.0, 4.0]), pt(&[4.0, 1.0])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.promoted.len(), 2);
    }

    #[test]
    fn empty_input_is_noop() {
        let out = classify(&[], &mut [], &[0.0]);
        assert!(out.dropped.is_empty() && out.promoted.is_empty());
    }

    #[test]
    fn quarantined_candidates_neither_influence_nor_change() {
        // The quarantined candidate's stale region would dominate
        // everything if it still counted as a rival; it must not.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[2.0, 2.0]), pt(&[2.5, 2.5])];
        let mut statuses = vec![Status::Quarantined, Status::Undecided, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        // Candidate 1 dominates candidate 2 but not vice versa.
        assert_eq!(statuses[0], Status::Quarantined, "quarantine is terminal");
        assert_eq!(statuses[1], Status::Pareto);
        assert_eq!(statuses[2], Status::Dropped);
        assert!(!out.promoted.contains(&0));
        assert!(!out.dropped.contains(&0));
    }

    #[test]
    fn pareto_members_still_drop_rivals() {
        // An already-promoted candidate keeps suppressing dominated ones.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[3.0, 3.0])];
        let mut statuses = vec![Status::Pareto, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![1]);
    }

    fn far_points(n: usize) -> Vec<Vec<f64>> {
        // Pairwise distances ≥ 10: the proximity term never fires.
        (0..n).map(|i| vec![10.0 * i as f64, 0.0]).collect()
    }

    /// Boxes whose corners are mutually incomparable, so the dominance
    /// shadow never fires either.
    fn staircase_boxes(diams: &[f64]) -> Vec<UncertaintyRegion> {
        diams
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let side = d / (2.0_f64).sqrt();
                let base = 10.0 * i as f64;
                boxed(&[base, -base - side], &[base + side, -base])
            })
            .collect()
    }

    #[test]
    fn q1_is_argmax_diameter_with_smallest_index_ties() {
        let regions = staircase_boxes(&[0.5, 2.0, 2.0, 1.0]);
        let cands = far_points(4);
        let statuses = vec![Status::Undecided; 4];
        let picks = select_batch(&cands, &regions, &statuses, &[false; 4], 1, 0.5, 0.25);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].index, 1, "largest diameter, smallest index on tie");
        assert_eq!(picks[0].score, picks[0].diameter, "first pick unpenalized");
    }

    #[test]
    fn distant_candidates_rank_purely_by_diameter() {
        let regions = staircase_boxes(&[0.5, 2.0, 1.5, 1.0]);
        let cands = far_points(4);
        let statuses = vec![Status::Undecided; 4];
        let picks = select_batch(&cands, &regions, &statuses, &[false; 4], 3, 0.9, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 2, 3]);
        for w in picks.windows(2) {
            assert!(w[0].score >= w[1].score, "scores non-increasing");
        }
    }

    #[test]
    fn nearby_duplicate_is_penalized_in_favor_of_a_diverse_pick() {
        // Candidates 0 and 1 are colocated with the two longest
        // diameters; candidate 2 is far away and slightly shorter. With a
        // strong penalty the batch should be {0, 2}, not {0, 1}.
        let cands = vec![vec![0.0, 0.0], vec![0.01, 0.0], vec![5.0, 5.0]];
        let regions = vec![
            boxed(&[0.0, 0.0], &[2.0, 0.0]),
            boxed(&[10.0, -3.0], &[11.9, -3.0]),
            boxed(&[-5.0, 3.0], &[-3.2, 3.0]),
        ];
        let statuses = vec![Status::Undecided; 3];
        let picks = select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.9, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 2]);
        // With the penalty off, pure diameters win.
        let picks = select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.0, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn dominance_shadow_counts_as_redundancy() {
        // Candidate 1's region sits entirely below candidate 2's: once 1
        // is measured, 2's fate is likely settled, so 2 is penalized even
        // though the two are far apart in parameter space.
        let cands = far_points(3);
        let regions = vec![
            boxed(&[0.0, 0.0], &[3.0, 0.0]),
            boxed(&[0.0, 5.0], &[2.0, 5.0]),
            boxed(&[3.5, 0.5], &[3.5, 3.3]),
        ];
        let statuses = vec![Status::Undecided; 3];
        let picks = select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.9, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 1], "shadowed candidate 2 loses to diverse 1");
        // Without the penalty, 2's larger diameter would have won.
        let picks = select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.0, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn ineligible_candidates_are_never_picked() {
        let cands = far_points(5);
        let regions = staircase_boxes(&[3.0, 2.9, 2.8, 2.7, 0.0]);
        let statuses = vec![
            Status::Dropped,
            Status::Quarantined,
            Status::Undecided,
            Status::Pareto,
            Status::Undecided,
        ];
        let mut evaluated = vec![false; 5];
        evaluated[3] = true;
        // Dropped, quarantined, evaluated, and zero-diameter candidates
        // are all excluded; only candidate 2 remains.
        let picks = select_batch(&cands, &regions, &statuses, &evaluated, 4, 0.5, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![2]);
    }

    #[test]
    fn batch_never_exceeds_q_or_eligibility() {
        let cands = far_points(3);
        let regions = staircase_boxes(&[1.0, 2.0, 3.0]);
        let statuses = vec![Status::Undecided; 3];
        assert_eq!(
            select_batch(&cands, &regions, &statuses, &[false; 3], 0, 0.5, 0.25).len(),
            0
        );
        assert_eq!(
            select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.5, 0.25).len(),
            2
        );
        assert_eq!(
            select_batch(&cands, &regions, &statuses, &[false; 3], 9, 0.5, 0.25).len(),
            3
        );
    }

    #[test]
    fn unbounded_regions_keep_infinite_priority() {
        let cands = far_points(2);
        let regions = vec![
            UncertaintyRegion::unbounded(2),
            staircase_boxes(&[5.0])[0].clone(),
        ];
        let statuses = vec![Status::Undecided; 2];
        let picks = select_batch(&cands, &regions, &statuses, &[false; 2], 2, 0.5, 0.25);
        assert_eq!(picks[0].index, 0);
        assert!(picks[0].diameter.is_infinite() && picks[0].score.is_infinite());
        assert_eq!(picks[1].index, 1);
    }
}

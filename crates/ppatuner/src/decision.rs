//! The decision-making stage: δ-domination dropping (Eq. 11) and
//! δ-accurate Pareto classification (Eq. 12).

use crate::region::UncertaintyRegion;

/// Classification state of one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Not yet decided; still competing.
    Undecided,
    /// Classified as (δ-accurate) Pareto-optimal.
    Pareto,
    /// δ-dominated by another candidate; out of the race.
    Dropped,
    /// The candidate exhausted its evaluation failure budget (every tool
    /// attempt crashed, timed out, or produced unusable QoR). Terminal:
    /// never selected or evaluated again, and — like `Dropped` — it no
    /// longer influences classification, because its region is stale
    /// model speculation that can never be confirmed and would otherwise
    /// stall promotion of healthy candidates forever.
    Quarantined,
}

impl Status {
    /// `true` while the candidate still competes for the front
    /// (`Undecided` or `Pareto`).
    pub fn is_active(self) -> bool {
        matches!(self, Status::Undecided | Status::Pareto)
    }
}

/// Outcome of one decision pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionOutcome {
    /// Candidates dropped this pass.
    pub dropped: Vec<usize>,
    /// Candidates promoted to Pareto this pass.
    pub promoted: Vec<usize>,
}

/// `true` iff `a ≤ b + delta` componentwise (δ-relaxed weak dominance).
fn delta_leq(a: &[f64], b: &[f64], delta: &[f64]) -> bool {
    a.iter().zip(b).zip(delta).all(|((&x, &y), &d)| x <= y + d)
}

/// Runs one decision pass over the candidates (Eqs. 11–12), in place.
///
/// For every undecided candidate `x`:
///
/// - **Drop** (Eq. 11) when some other active candidate `x'` satisfies
///   `max(U(x')) ≤ min(U(x)) + δ`: even `x'`'s worst case δ-dominates
///   `x`'s best case, so `x` cannot be needed for the front.
/// - **Promote** (Eq. 12) when *no* other active candidate `x'` satisfies
///   `min(U(x')) + δ ≤ max(U(x))` componentwise: no rival's best case can
///   beat `x`'s worst case by more than δ, so `x` is at most δ-worse than
///   any true Pareto point.
///
/// "Active" means `Undecided` or `Pareto` (dropped and quarantined
/// candidates no longer influence decisions). Promotion is checked after
/// dropping, as in Algorithm 1 (lines 8–9).
///
/// # Panics
///
/// Panics when `regions`, `statuses` lengths differ or `delta` does not
/// match the QoR dimension.
pub fn classify(
    regions: &[UncertaintyRegion],
    statuses: &mut [Status],
    delta: &[f64],
) -> DecisionOutcome {
    assert_eq!(regions.len(), statuses.len(), "classify: length mismatch");
    let n = regions.len();
    let mut outcome = DecisionOutcome::default();
    if n == 0 {
        return outcome;
    }
    assert_eq!(regions[0].dim(), delta.len(), "classify: delta dimension");

    // Pass 1: dropping (Eq. 11). Compare against the statuses as of the
    // start of the pass so the result does not depend on index order.
    // When two candidates δ-dominate each other (near-duplicates within
    // the slack), only the less preferred one drops: preference is the
    // smaller pessimistic-corner sum, then the smaller index.
    let before: Vec<Status> = statuses.to_vec();
    let prefer = |a: usize, b: usize| -> bool {
        let sa: f64 = regions[a].pessimistic().iter().sum();
        let sb: f64 = regions[b].pessimistic().iter().sum();
        match sa.partial_cmp(&sb) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => a < b,
        }
    };
    for i in 0..n {
        if before[i] != Status::Undecided {
            continue;
        }
        let opt_i = regions[i].optimistic();
        let dominated = (0..n).any(|j| {
            j != i
                && before[j].is_active()
                && delta_leq(regions[j].pessimistic(), opt_i, delta)
                && !(delta_leq(regions[i].pessimistic(), regions[j].optimistic(), delta)
                    && prefer(i, j))
        });
        if dominated {
            statuses[i] = Status::Dropped;
            outcome.dropped.push(i);
        }
    }

    // Pass 2: promotion (Eq. 12), against post-drop statuses.
    let after_drop: Vec<Status> = statuses.to_vec();
    for i in 0..n {
        if after_drop[i] != Status::Undecided {
            continue;
        }
        let pess_i = regions[i].pessimistic();
        let might_be_beaten = (0..n).any(|j| {
            j != i && after_drop[j].is_active() && {
                // x' might δ-dominate x: opt(x') + δ ≤ pess(x).
                regions[j]
                    .optimistic()
                    .iter()
                    .zip(pess_i)
                    .zip(delta)
                    .all(|((&oj, &pi), &d)| oj + d <= pi)
            }
        });
        if !might_be_beaten {
            statuses[i] = Status::Pareto;
            outcome.promoted.push(i);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(v: &[f64]) -> UncertaintyRegion {
        UncertaintyRegion::point(v)
    }

    fn boxed(lo: &[f64], hi: &[f64]) -> UncertaintyRegion {
        let mut u = UncertaintyRegion::unbounded(lo.len());
        u.intersect(lo, hi);
        u
    }

    #[test]
    fn exact_points_reduce_to_pareto_logic() {
        // (1,4), (2,2), (4,1) front; (3,3) dominated by (2,2).
        let regions = vec![
            pt(&[1.0, 4.0]),
            pt(&[2.0, 2.0]),
            pt(&[4.0, 1.0]),
            pt(&[3.0, 3.0]),
        ];
        let mut statuses = vec![Status::Undecided; 4];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![3]);
        assert_eq!(statuses[0], Status::Pareto);
        assert_eq!(statuses[1], Status::Pareto);
        assert_eq!(statuses[2], Status::Pareto);
        assert_eq!(statuses[3], Status::Dropped);
    }

    #[test]
    fn uncertain_candidates_stay_undecided() {
        // A wide box overlapping the known point: neither droppable nor
        // promotable.
        let regions = vec![pt(&[2.0, 2.0]), boxed(&[1.0, 1.0], &[4.0, 4.0])];
        let mut statuses = vec![Status::Undecided; 2];
        classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(statuses[1], Status::Undecided);
        // The known point cannot be promoted either: the box's optimistic
        // corner (1,1) dominates it.
        assert_eq!(statuses[0], Status::Undecided);
    }

    #[test]
    fn clearly_bad_box_is_dropped() {
        // Box entirely dominated by the point even in its best case.
        let regions = vec![pt(&[1.0, 1.0]), boxed(&[3.0, 3.0], &[5.0, 5.0])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![1]);
        // With the rival gone, the point is promoted.
        assert_eq!(statuses[0], Status::Pareto);
    }

    #[test]
    fn delta_relaxation_drops_near_duplicates() {
        // (2.05, 2.05) is within δ = 0.1 of (2, 2): dropped.
        let regions = vec![pt(&[2.0, 2.0]), pt(&[2.05, 2.05])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.1, 0.1]);
        assert_eq!(out.dropped, vec![1]);
        assert_eq!(statuses[0], Status::Pareto);
    }

    #[test]
    fn identical_points_keep_first() {
        let regions = vec![pt(&[2.0, 2.0]), pt(&[2.0, 2.0])];
        let mut statuses = vec![Status::Undecided; 2];
        classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(statuses[0], Status::Pareto);
        assert_eq!(statuses[1], Status::Dropped);
    }

    #[test]
    fn dropped_candidates_do_not_influence() {
        // A dominating rival that is already dropped must not drop others.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[2.0, 2.0])];
        let mut statuses = vec![Status::Dropped, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert!(out.dropped.is_empty());
        assert_eq!(statuses[1], Status::Pareto);
    }

    #[test]
    fn incomparable_points_all_promote() {
        let regions = vec![pt(&[1.0, 4.0]), pt(&[4.0, 1.0])];
        let mut statuses = vec![Status::Undecided; 2];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.promoted.len(), 2);
    }

    #[test]
    fn empty_input_is_noop() {
        let out = classify(&[], &mut [], &[0.0]);
        assert!(out.dropped.is_empty() && out.promoted.is_empty());
    }

    #[test]
    fn quarantined_candidates_neither_influence_nor_change() {
        // The quarantined candidate's stale region would dominate
        // everything if it still counted as a rival; it must not.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[2.0, 2.0]), pt(&[2.5, 2.5])];
        let mut statuses = vec![Status::Quarantined, Status::Undecided, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        // Candidate 1 dominates candidate 2 but not vice versa.
        assert_eq!(statuses[0], Status::Quarantined, "quarantine is terminal");
        assert_eq!(statuses[1], Status::Pareto);
        assert_eq!(statuses[2], Status::Dropped);
        assert!(!out.promoted.contains(&0));
        assert!(!out.dropped.contains(&0));
    }

    #[test]
    fn pareto_members_still_drop_rivals() {
        // An already-promoted candidate keeps suppressing dominated ones.
        let regions = vec![pt(&[1.0, 1.0]), pt(&[3.0, 3.0])];
        let mut statuses = vec![Status::Pareto, Status::Undecided];
        let out = classify(&regions, &mut statuses, &[0.0, 0.0]);
        assert_eq!(out.dropped, vec![1]);
    }
}

//! Deterministic fault injection for surrogate calibration.
//!
//! The degraded-mode run supervisor (see `PpaTuner`'s refit loop) only
//! exists because real Gaussian-process calibrations blow up: the jitter
//! ladder runs out on an ill-conditioned joint kernel, or the
//! hyper-parameter search walks into a NaN. Those failures are rare and
//! data-dependent, so exercising the recovery paths needs *injected*
//! faults — and, because every recovery must be golden-trace pinned and
//! survive checkpoint/resume, the injection must be a pure function of
//! run position, never of wall clock or call count.
//!
//! A [`FitFaultPlan`] is exactly that: a serializable seeded plan whose
//! decisions hash `(seed, stage, iteration, objective)`. Installing it
//! via [`inject_fit_faults`] arms the *current thread*; the tuner decides
//! every fault on its coordinator thread before fanning fits out to
//! scoped workers, so worker threads stay oblivious and parallel test
//! runs cannot contaminate each other. Replaying a checkpoint re-runs
//! fits live, so a resume must re-install the same plan — the
//! `degraded_fits` counter carried in the
//! [`StateSnapshot`](crate::StateSnapshot) catches a forgotten plan
//! before the resumed run goes live.
//!
//! Iteration 0 is exempt by construction: the bootstrap fit has no
//! last-good surrogate to degrade to, so a fault there aborts the run
//! exactly as a real bootstrap failure would.

use std::cell::RefCell;

use gp::GpError;
use serde::{Deserialize, Serialize};

/// Hyper-parameter name carried by injected calibration faults, so traces
/// and error messages identify them as synthetic. The injected value is
/// NaN, which [`GpError::is_recoverable`] classifies exactly like a real
/// diverged hyper-parameter search.
pub const INJECTED_FAULT_NAME: &str = "injected_fit_fault";

/// A serializable, seeded plan of surrogate-calibration faults.
///
/// Every decision is a pure hash of `(seed, stage, iteration, objective)`
/// — independent of worker count, call order, and wall clock — so a run
/// under a plan is exactly reproducible, checkpoint/resume included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FitFaultPlan {
    /// Seed decorrelating this plan's decisions from the tuner's RNG.
    pub seed: u64,
    /// Probability that a scheduled full refit fails numerically.
    #[serde(default)]
    pub refit_fail: f64,
    /// Probability that the data-only fallback refit (last-good
    /// hyper-parameters) *also* fails, forcing the frozen mode.
    #[serde(default)]
    pub fallback_fail: f64,
    /// Probability that a warm-path incremental `condition_on` fails.
    #[serde(default)]
    pub condition_fail: f64,
}

/// Domain separators: decisions for different stages at the same
/// `(iteration, objective)` are independent.
const DOMAIN_REFIT: u64 = 0x0052_4546_4954;
const DOMAIN_FALLBACK: u64 = 0x4641_4c4c_4241_434b;
const DOMAIN_CONDITION: u64 = 0x0000_434f_4e44;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FitFaultPlan {
    /// Checks every probability is finite and within `[0, 1]`.
    ///
    /// # Errors
    ///
    /// A description naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("refit_fail", self.refit_fail),
            ("fallback_fail", self.fallback_fail),
            ("condition_fail", self.condition_fail),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }

    /// One uniform draw in `[0, 1)` for `(seed, domain, iteration,
    /// objective)`.
    fn roll(&self, domain: u64, iteration: usize, objective: usize) -> f64 {
        let mut h = splitmix64(self.seed ^ domain);
        h = splitmix64(h.wrapping_add(iteration as u64));
        h = splitmix64(h ^ ((objective as u64) << 32));
        ((h >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Whether the scheduled full refit at `(iteration, objective)` is
    /// made to fail. Never fires at iteration 0 (no last-good surrogate
    /// exists yet; see the module docs).
    pub fn fails_refit(&self, iteration: usize, objective: usize) -> bool {
        iteration > 0 && self.roll(DOMAIN_REFIT, iteration, objective) < self.refit_fail
    }

    /// Whether the data-only fallback refit at `(iteration, objective)`
    /// is made to fail too, forcing the frozen recovery mode.
    pub fn fails_fallback(&self, iteration: usize, objective: usize) -> bool {
        iteration > 0 && self.roll(DOMAIN_FALLBACK, iteration, objective) < self.fallback_fail
    }

    /// Whether the warm-path `condition_on` at `(iteration, objective)`
    /// is made to fail.
    pub fn fails_condition(&self, iteration: usize, objective: usize) -> bool {
        iteration > 0 && self.roll(DOMAIN_CONDITION, iteration, objective) < self.condition_fail
    }
}

thread_local! {
    static ACTIVE_PLAN: RefCell<Option<FitFaultPlan>> = const { RefCell::new(None) };
}

/// Uninstalls the plan armed by [`inject_fit_faults`] when dropped.
#[derive(Debug)]
pub struct FitFaultGuard {
    _priv: (),
}

impl Drop for FitFaultGuard {
    fn drop(&mut self) {
        ACTIVE_PLAN.with(|slot| *slot.borrow_mut() = None);
    }
}

/// Arms `plan` for tuner runs on the **current thread** and returns an
/// RAII guard that disarms it. Thread-local (rather than process-global)
/// scoping keeps concurrently running tests and benches from
/// contaminating each other; the tuner's coordinator thread is the one
/// that must hold the guard, since all fault decisions are taken there.
#[must_use = "the plan is disarmed as soon as the guard drops"]
pub fn inject_fit_faults(plan: FitFaultPlan) -> FitFaultGuard {
    ACTIVE_PLAN.with(|slot| *slot.borrow_mut() = Some(plan));
    FitFaultGuard { _priv: () }
}

/// Calibration stages the plan can fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FitStage {
    /// The scheduled full refit (hyper-parameter search included).
    Refit,
    /// The data-only fallback refit with last-good hyper-parameters.
    Fallback,
    /// The warm-path incremental extension.
    Condition,
}

/// The fault the armed plan injects at this site, if any. Must be called
/// on the thread that holds the [`FitFaultGuard`] (the tuner's
/// coordinator thread).
pub(crate) fn injected_fault(
    stage: FitStage,
    iteration: usize,
    objective: usize,
) -> Option<GpError> {
    ACTIVE_PLAN.with(|slot| {
        let plan = slot.borrow();
        let plan = plan.as_ref()?;
        let fires = match stage {
            FitStage::Refit => plan.fails_refit(iteration, objective),
            FitStage::Fallback => plan.fails_fallback(iteration, objective),
            FitStage::Condition => plan.fails_condition(iteration, objective),
        };
        fires.then_some(GpError::InvalidHyperparameter {
            name: INJECTED_FAULT_NAME,
            value: f64::NAN,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(p: f64) -> FitFaultPlan {
        FitFaultPlan {
            seed: 77,
            refit_fail: p,
            fallback_fail: p,
            condition_fail: p,
        }
    }

    #[test]
    fn decisions_are_pure_and_seeded() {
        let a = plan(0.25);
        let b = plan(0.25);
        for t in 0..64 {
            for k in 0..3 {
                assert_eq!(a.fails_refit(t, k), b.fails_refit(t, k));
                assert_eq!(a.fails_fallback(t, k), b.fails_fallback(t, k));
                assert_eq!(a.fails_condition(t, k), b.fails_condition(t, k));
            }
        }
        // A different seed decorrelates the decision stream.
        let c = FitFaultPlan { seed: 78, ..a };
        let differs = (1..256).any(|t| a.fails_refit(t, 0) != c.fails_refit(t, 0));
        assert!(differs);
    }

    #[test]
    fn probability_extremes_and_bootstrap_exemption() {
        let never = plan(0.0);
        let always = plan(1.0);
        for t in 0..32 {
            assert!(!never.fails_refit(t, 0));
            assert!(!never.fails_condition(t, 1));
        }
        for t in 1..32 {
            assert!(always.fails_refit(t, 0));
            assert!(always.fails_fallback(t, 1));
            assert!(always.fails_condition(t, 2));
        }
        // Iteration 0 has no last-good surrogate, so nothing fires there
        // even at probability 1.
        assert!(!always.fails_refit(0, 0));
        assert!(!always.fails_fallback(0, 0));
        assert!(!always.fails_condition(0, 0));
    }

    #[test]
    fn validates_probabilities_and_round_trips() {
        assert!(plan(0.5).validate().is_ok());
        assert!(plan(1.5).validate().is_err());
        assert!(plan(-0.1).validate().is_err());
        assert!(plan(f64::NAN).validate().is_err());

        let p = FitFaultPlan {
            seed: 9,
            refit_fail: 0.25,
            fallback_fail: 0.1,
            condition_fail: 0.05,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: FitFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // Omitted probabilities default to 0 (never fire).
        let sparse: FitFaultPlan = serde_json::from_str(r#"{"seed": 3}"#).unwrap();
        assert_eq!(sparse.seed, 3);
        assert_eq!(sparse.refit_fail, 0.0);
    }

    #[test]
    fn guard_arms_and_disarms_the_thread() {
        assert!(injected_fault(FitStage::Refit, 5, 0).is_none());
        {
            let _guard = inject_fit_faults(plan(1.0));
            let fault = injected_fault(FitStage::Refit, 5, 0).unwrap();
            assert!(fault.is_recoverable());
            assert!(fault.to_string().contains(INJECTED_FAULT_NAME));
            // Bootstrap exemption holds through the injection path too.
            assert!(injected_fault(FitStage::Refit, 0, 0).is_none());
        }
        assert!(injected_fault(FitStage::Refit, 5, 0).is_none());
    }
}

//! The PPATuner loop (Algorithm 1 of the paper).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp::optimize::{fit_transfer_gp_from_starts, restart_starts, FitBudget};
use gp::{GpCounters, PredictCache, SubsetPredictor, TaskData, TransferGp};
use obs::{Event, Observer, OpenSpan, Tracer, NULL_SINK};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    digest_matrix, source_digest, Checkpoint, CheckpointStore, EvalOutcome, EvalRecord,
    StateSnapshot, CHECKPOINT_VERSION,
};
use crate::decision::{classify, select_batch, Status};
use crate::oracle::{ConcurrentOracle, EvalError, QorOracle, WATCHDOG_STAGE};
use crate::pool::AdaptivePool;
use crate::region::UncertaintyRegion;
use crate::supervisor;
use crate::{Result, TunerError};

/// `DegradedFit.mode` when the failed refit was replaced by a data-only
/// refit reusing the last-good hyper-parameters.
const DEGRADED_REFIT_REUSED: &str = "refit-reused-hypers";
/// `DegradedFit.mode` when the last-good model served the iteration
/// unchanged.
const DEGRADED_FROZEN: &str = "frozen";

/// Historical (source-task) tool-run data: encoded configurations and
/// their QoR vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceData {
    /// Shared behind an [`Arc`] so the per-objective [`TaskData`] views
    /// reference one encoded copy instead of cloning all configurations
    /// per objective per refit.
    x: Arc<Vec<Vec<f64>>>,
    y: Vec<Vec<f64>>,
}

impl SourceData {
    /// Creates source data from parallel configuration/QoR lists.
    ///
    /// # Errors
    ///
    /// Returns [`TunerError::InvalidInput`] when lengths disagree, the
    /// QoR vectors have inconsistent dimensions, or any value is
    /// non-finite (NaN/±inf would silently poison every GP fit that
    /// transfers from this history).
    pub fn new(x: Vec<Vec<f64>>, y: Vec<Vec<f64>>) -> Result<Self> {
        if x.len() != y.len() {
            return Err(TunerError::InvalidInput {
                reason: "source x and y lengths differ",
            });
        }
        if let Some(first) = y.first() {
            let m = first.len();
            if m == 0 || y.iter().any(|v| v.len() != m) {
                return Err(TunerError::InvalidInput {
                    reason: "source QoR vectors must share a non-zero dimension",
                });
            }
        }
        if x.iter().any(|r| r.iter().any(|v| !v.is_finite())) {
            return Err(TunerError::InvalidInput {
                reason: "source configurations must be finite (no NaN/inf)",
            });
        }
        if y.iter().any(|r| r.iter().any(|v| !v.is_finite())) {
            return Err(TunerError::InvalidInput {
                reason: "source QoR values must be finite (no NaN/inf)",
            });
        }
        Ok(SourceData { x: Arc::new(x), y })
    }

    /// An empty source (no-transfer operation).
    pub fn empty() -> Self {
        SourceData::default()
    }

    /// Number of source observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when there is no source history.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of QoR objectives, or `None` when empty.
    pub fn objectives(&self) -> Option<usize> {
        self.y.first().map(Vec::len)
    }

    /// Borrows the encoded source configurations.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Borrows the source QoR vectors (parallel to [`inputs`]).
    ///
    /// [`inputs`]: SourceData::inputs
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.y
    }

    /// The single-objective view of objective `k` as GP task data. The
    /// inputs are shared (reference-counted), only the one QoR column is
    /// materialized.
    fn task_data(&self, k: usize) -> TaskData {
        TaskData::from_shared(Arc::clone(&self.x), self.y.iter().map(|v| v[k]).collect())
    }
}

/// Configuration of the tuner.
///
/// Serializable so checkpoints can pin the exact configuration a run was
/// started with (resume refuses a different one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpaTunerConfig {
    /// Region-scale coefficient τ of Eq. (9): the box is `μ ± √τ·σ`.
    pub tau: f64,
    /// Per-objective relaxation δ, as a fraction of each objective's
    /// observed range after initialization (the paper's "precision
    /// controller").
    pub delta_rel: f64,
    /// Target-task configurations evaluated during initialization
    /// (the paper's "no more than 5 % of the data").
    pub initial_samples: usize,
    /// Maximum loop iterations `T_max`.
    pub max_iterations: usize,
    /// Configurations sent to the tool per iteration (the paper's batch
    /// trials via parallel licenses). Above 1, selection switches from
    /// argmax-diameter (Eq. 13) to the diverse top-q batch rule
    /// ([`select_batch`](crate::select_batch)) and each batch is
    /// evaluated as one concurrent wave.
    pub batch_size: usize,
    /// Worker threads fanning one evaluation wave out over a
    /// [`ConcurrentOracle`](crate::ConcurrentOracle). 1 evaluates waves
    /// sequentially; results are identical at any worker count, so this
    /// only trades wall-clock. Ignored by the serial `run*` entry points.
    pub eval_workers: usize,
    /// Diversity penalty strength γ ∈ [0, 1) of the batch selection rule:
    /// a pick's score is `diam · (1 − γ·red)` where `red` measures
    /// redundancy against already-picked members. 0 recovers pure
    /// top-q-by-diameter; irrelevant at `batch_size` 1.
    pub batch_diversity: f64,
    /// Parameter-space radius (encoded coordinates) inside which two
    /// batch members start counting as redundant.
    pub diversity_radius: f64,
    /// Re-train GP hyper-parameters every this many iterations (between
    /// refits, the model is re-conditioned on new data with cached
    /// hyper-parameters).
    pub refit_every: usize,
    /// Hyper-parameter search budget per refit.
    pub fit_budget: FitBudget,
    /// RNG seed (initial sampling + hyper-parameter restarts).
    pub seed: u64,
    /// Threads used for batched GP prediction.
    pub threads: usize,
    /// When the iteration cap is hit before every candidate is decided,
    /// also include the surrogate's predicted front (non-dominated
    /// predictive means over still-active candidates) in the final
    /// verification pass — the paper's "predicted Pareto-optimal
    /// parameter combinations". Disable for the strict
    /// classified-set-only ablation.
    pub include_predicted_front: bool,
    /// Maximum oracle attempts per candidate per selection before the
    /// candidate is quarantined (1 = no retries).
    pub max_eval_attempts: usize,
    /// First-retry backoff in seconds; doubles per further retry. Purely
    /// advisory for table-backed oracles (recorded in `EvalRetry` events,
    /// never slept on by the tuner itself).
    pub backoff_base_s: f64,
    /// Upper bound on the advisory backoff.
    pub backoff_cap_s: f64,
    /// QoR sanitization gate: an observation is rejected as a gross
    /// outlier when it falls outside the candidate's current uncertainty
    /// region widened per objective by `gate × max(region width, observed
    /// span)`. Large by default so only tool garbage (unit mix-ups,
    /// truncated reports) trips it, never a merely surprising true value.
    pub outlier_gate: f64,
    /// Grow the candidate pool adaptively (off by default): the initial
    /// candidates become leaf representatives of a bisection cell tree
    /// over the parameter box, and each iteration splits the cells whose
    /// representative's uncertainty-region diameter still exceeds
    /// [`pool_refine_scale`](PpaTunerConfig::pool_refine_scale) times the
    /// cell's own diameter, appending the new sibling centers as fresh
    /// candidates. Requires an oracle that can evaluate arbitrary
    /// coordinates ([`QorOracle::evaluate_at`], e.g.
    /// [`FnOracle`](crate::FnOracle)) — a purely index-table oracle
    /// aborts with an out-of-range error once a grown candidate is
    /// selected.
    pub adaptive_pool: bool,
    /// Lipschitz-style refinement threshold of the adaptive pool: a leaf
    /// splits while `diam(U_t(rep)) > pool_refine_scale × diam(cell)`.
    /// Smaller values refine more aggressively.
    pub pool_refine_scale: f64,
    /// Upper bound on the region diameter a leaf may have and still be
    /// refined (default `f64::MAX`, i.e. effectively no bound — the
    /// checkpoint format cannot round-trip IEEE infinities). Leaves whose
    /// representative's region is at or past the ceiling are
    /// prior-dominated — nothing has been learned there yet — and are
    /// left for the selection rule to evaluate instead of being
    /// subdivided; see [`AdaptivePool::refine`] for why unbounded
    /// refinement stalls on exploration chains.
    pub pool_refine_ceiling: f64,
    /// Maximum leaf splits per iteration (the refinement-rate cap of the
    /// adaptive pool).
    pub pool_max_refines: usize,
    /// Hard cap on the total candidate count the adaptive pool may grow
    /// to (initial candidates included).
    pub pool_max_size: usize,
    /// Training-set size (source + target observations) above which
    /// box prediction switches from the exact transfer-GP posterior to
    /// the subset-of-data path ([`gp::SubsetPredictor`]), whose per-query
    /// cost is bounded by [`sod_subset`](PpaTunerConfig::sod_subset)
    /// instead of the full training size. The subset variance dominates
    /// the exact variance, so ε-PAL's uncertainty boxes stay
    /// conservative. `usize::MAX` (the default) never switches.
    pub sod_threshold: usize,
    /// Anchor count of the subset-of-data predictor (ignored while the
    /// exact path is active).
    pub sod_subset: usize,
    /// Query block size of batched GP prediction. Results are
    /// bit-identical at any block size; this only tunes the
    /// cache-locality/latency trade-off of large query sets. It is also
    /// the chunk granularity of the data-parallel predict sweep: the pool
    /// is cut into `predict_block`-sized chunks which
    /// [`predict_workers`](PpaTunerConfig::predict_workers) threads claim
    /// off a work queue, so roughly `pool / predict_block` chunks bound
    /// the usable parallelism.
    pub predict_block: usize,
    /// Worker threads of the data-parallel predict sweep. 0 (the
    /// default) auto-sizes to the machine's available parallelism, capped
    /// at 8; 1 keeps the sweep serial. Results are bitwise identical at
    /// every worker count — this only trades wall-clock (see
    /// [`predict_block`](PpaTunerConfig::predict_block) for the chunk
    /// granularity the workers operate at).
    pub predict_workers: usize,
    /// Consecutive iterations the surrogate may run degraded (served by a
    /// last-good model after a numerical calibration failure — see the
    /// `DegradedFit` trace event) before the run aborts with
    /// [`TunerError::DegradationBudgetExhausted`]. Isolated failures cost
    /// nothing; this bounds how long the model may stop tracking fresh
    /// observations. Must be at least 1.
    #[serde(default)]
    pub degraded_fit_budget: usize,
}

impl Default for PpaTunerConfig {
    fn default() -> Self {
        PpaTunerConfig {
            tau: 1.5,
            delta_rel: 0.05,
            initial_samples: 20,
            max_iterations: 300,
            batch_size: 1,
            eval_workers: 1,
            batch_diversity: 0.5,
            diversity_radius: 0.25,
            refit_every: 25,
            fit_budget: FitBudget::default(),
            seed: 0,
            threads: 8,
            include_predicted_front: true,
            max_eval_attempts: 3,
            backoff_base_s: 1.0,
            backoff_cap_s: 60.0,
            outlier_gate: 8.0,
            adaptive_pool: false,
            pool_refine_scale: 1.0,
            pool_refine_ceiling: f64::MAX,
            pool_max_refines: 16,
            pool_max_size: 4096,
            sod_threshold: usize::MAX,
            sod_subset: 256,
            predict_block: gp::PREDICT_BLOCK,
            predict_workers: 0,
            degraded_fit_budget: 8,
        }
    }
}

impl PpaTunerConfig {
    fn validate(&self) -> Result<()> {
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "tau",
                value: self.tau,
            });
        }
        if !(self.delta_rel.is_finite() && self.delta_rel >= 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "delta_rel",
                value: self.delta_rel,
            });
        }
        if self.initial_samples < 2 {
            return Err(TunerError::InvalidConfig {
                name: "initial_samples",
                value: self.initial_samples as f64,
            });
        }
        if self.batch_size == 0 {
            return Err(TunerError::InvalidConfig {
                name: "batch_size",
                value: 0.0,
            });
        }
        if self.eval_workers == 0 {
            return Err(TunerError::InvalidConfig {
                name: "eval_workers",
                value: 0.0,
            });
        }
        if !(self.batch_diversity.is_finite() && (0.0..1.0).contains(&self.batch_diversity)) {
            return Err(TunerError::InvalidConfig {
                name: "batch_diversity",
                value: self.batch_diversity,
            });
        }
        if !(self.diversity_radius.is_finite() && self.diversity_radius > 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "diversity_radius",
                value: self.diversity_radius,
            });
        }
        if self.max_eval_attempts == 0 {
            return Err(TunerError::InvalidConfig {
                name: "max_eval_attempts",
                value: 0.0,
            });
        }
        if !(self.backoff_base_s.is_finite() && self.backoff_base_s >= 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "backoff_base_s",
                value: self.backoff_base_s,
            });
        }
        if !(self.backoff_cap_s.is_finite() && self.backoff_cap_s >= 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "backoff_cap_s",
                value: self.backoff_cap_s,
            });
        }
        if !(self.outlier_gate.is_finite() && self.outlier_gate > 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "outlier_gate",
                value: self.outlier_gate,
            });
        }
        if !(self.pool_refine_scale.is_finite() && self.pool_refine_scale > 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "pool_refine_scale",
                value: self.pool_refine_scale,
            });
        }
        if self.pool_refine_ceiling.is_nan() || self.pool_refine_ceiling <= 0.0 {
            return Err(TunerError::InvalidConfig {
                name: "pool_refine_ceiling",
                value: self.pool_refine_ceiling,
            });
        }
        if self.pool_max_refines == 0 {
            return Err(TunerError::InvalidConfig {
                name: "pool_max_refines",
                value: 0.0,
            });
        }
        if self.pool_max_size == 0 {
            return Err(TunerError::InvalidConfig {
                name: "pool_max_size",
                value: 0.0,
            });
        }
        if self.sod_subset == 0 {
            return Err(TunerError::InvalidConfig {
                name: "sod_subset",
                value: 0.0,
            });
        }
        if self.predict_block == 0 {
            return Err(TunerError::InvalidConfig {
                name: "predict_block",
                value: 0.0,
            });
        }
        // 0 means auto-size; anything past 4096 is a typo'd value, not a
        // machine (and would allocate that many chunk slots per sweep).
        if self.predict_workers > 4096 {
            return Err(TunerError::InvalidConfig {
                name: "predict_workers",
                value: self.predict_workers as f64,
            });
        }
        // A zero budget would make the very first degraded iteration
        // fatal, i.e. silently disable the degraded mode.
        if self.degraded_fit_budget == 0 {
            return Err(TunerError::InvalidConfig {
                name: "degraded_fit_budget",
                value: 0.0,
            });
        }
        Ok(())
    }

    /// The effective predict-sweep worker count: `predict_workers`, with
    /// 0 auto-sized to the machine's available parallelism capped at 8.
    pub(crate) fn effective_predict_workers(&self) -> usize {
        if self.predict_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.predict_workers
        }
    }

    /// Advisory backoff before 1-based `attempt` (≥ 2): capped
    /// exponential on `backoff_base_s`.
    fn retry_backoff_s(&self, attempt: usize) -> f64 {
        let doublings = attempt.saturating_sub(2).min(63) as i32;
        (self.backoff_base_s * 2f64.powi(doublings)).min(self.backoff_cap_s)
    }
}

/// One row of the tuning trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub iteration: usize,
    /// Candidates still undecided after this iteration.
    pub undecided: usize,
    /// Candidates classified Pareto so far.
    pub pareto: usize,
    /// Candidates dropped so far.
    pub dropped: usize,
    /// Candidates quarantined so far (evaluation failure budget
    /// exhausted).
    pub quarantined: usize,
    /// Tool runs so far.
    pub runs: usize,
    /// Wall-clock seconds this iteration took (fit + predict + classify +
    /// select + evaluate).
    pub duration_s: f64,
    /// Wall-clock seconds of that spent fitting the GP surrogates.
    pub gp_fit_s: f64,
    /// Wall-clock seconds of that spent predicting uncertainty boxes.
    #[serde(default)]
    pub predict_s: f64,
}

/// Outcome of one tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// Candidate indices of the final Pareto set: the union of the
    /// classified set and the measured front, verified on golden values
    /// by the final evaluation pass (Algorithm 1's closing step: "the
    /// predicted Pareto-optimal parameter combinations will be fed into
    /// the PD tools ... for evaluation").
    pub pareto_indices: Vec<usize>,
    /// Every tool evaluation made during the search:
    /// `(candidate index, QoR vector)`.
    pub evaluated: Vec<(usize, Vec<f64>)>,
    /// Tool runs consumed by the search (initialization + selection) —
    /// the paper's "Runs" column.
    pub runs: usize,
    /// Additional tool runs spent verifying the predicted Pareto set
    /// after the search (reported separately, as in the paper).
    pub verification_runs: usize,
    /// Loop iterations executed.
    pub iterations: usize,
    /// Per-iteration trajectory (for convergence plots).
    pub history: Vec<IterationRecord>,
    /// The absolute per-objective δ the run used.
    pub delta: Vec<f64>,
    /// Candidates quarantined during the run (every evaluation attempt
    /// failed), in quarantine order. Never members of
    /// [`pareto_indices`](TuneResult::pareto_indices).
    pub quarantined: Vec<usize>,
    /// Oracle attempts that failed (crash, timeout, rejected QoR). Failed
    /// attempts count towards [`runs`](TuneResult::runs).
    pub eval_failures: usize,
    /// Retry attempts issued after failures (successful or not).
    pub eval_retries: usize,
    /// Surrogate calibrations served by a last-good model after a
    /// numerical failure (one count per degraded objective per iteration;
    /// see the `DegradedFit` trace event). 0 on a numerically clean run.
    #[serde(default)]
    pub degraded_fits: usize,
}

impl TuneResult {
    /// Serializes the whole result (including the per-iteration history)
    /// to a compact JSON string, for result files and downstream analysis.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("TuneResult serialization cannot fail")
    }
}

/// The Pareto-driven auto-tuner (Algorithm 1).
///
/// See the [crate-level documentation](crate) for the loop structure and
/// an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct PpaTuner {
    config: PpaTunerConfig,
}

impl PpaTuner {
    /// Creates a tuner with the given configuration.
    pub fn new(config: PpaTunerConfig) -> Self {
        PpaTuner { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &PpaTunerConfig {
        &self.config
    }

    /// Runs Algorithm 1 over `candidates` (unit-cube-encoded
    /// configurations of the target task), pulling golden QoR values from
    /// `oracle` and transferring knowledge from `source`.
    ///
    /// # Errors
    ///
    /// - [`TunerError::InvalidInput`] for an empty/inconsistent candidate
    ///   set or source;
    /// - [`TunerError::InvalidConfig`] for out-of-range options;
    /// - [`TunerError::Surrogate`] when GP fitting fails irrecoverably.
    pub fn run<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<TuneResult> {
        self.run_observed(source, candidates, oracle, &NULL_SINK)
    }

    /// Like [`PpaTuner::run`], but streams structured [`Event`]s to
    /// `observer` as the run progresses: one `GpFit` per surrogate per
    /// iteration, one `ToolEval` per tool run, plus `Classify`, `Select`,
    /// `IterationEnd`, and run-level bookends.
    ///
    /// Event construction is gated on [`Observer::enabled`], so passing
    /// [`obs::NULL_SINK`] (what [`PpaTuner::run`] does) costs almost
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run`].
    pub fn run_observed<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
        observer: &dyn Observer,
    ) -> Result<TuneResult> {
        self.run_core(
            source,
            candidates,
            OracleRef::Serial(oracle),
            observer,
            None,
            None,
        )
    }

    /// Like [`PpaTuner::run_observed`], but drives a thread-safe
    /// [`ConcurrentOracle`], fanning each selection batch out over
    /// `eval_workers` worker threads. With a natively concurrent oracle
    /// this overlaps tool runs in wall-clock; results, traces, and span
    /// IDs are identical to the serial path and invariant to the worker
    /// count — only timing fields differ.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run`].
    pub fn run_concurrent(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &dyn ConcurrentOracle,
        observer: &dyn Observer,
    ) -> Result<TuneResult> {
        self.run_core(
            source,
            candidates,
            OracleRef::Concurrent(oracle),
            observer,
            None,
            None,
        )
    }

    /// [`PpaTuner::run_concurrent`] with per-iteration checkpointing (see
    /// [`PpaTuner::run_checkpointed`]). Checkpoints land at iteration
    /// boundaries, which are always whole-batch boundaries — a resumed
    /// run replays complete batches, never half of one.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run_checkpointed`].
    pub fn run_concurrent_checkpointed(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &dyn ConcurrentOracle,
        observer: &dyn Observer,
        store: &dyn CheckpointStore,
    ) -> Result<TuneResult> {
        self.run_core(
            source,
            candidates,
            OracleRef::Concurrent(oracle),
            observer,
            Some(store),
            None,
        )
    }

    /// [`PpaTuner::resume`] over a [`ConcurrentOracle`]: replays the
    /// checkpoint's evaluation log (whole batches — checkpoints sit at
    /// batch boundaries), then continues live with concurrent fan-out.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::resume`].
    pub fn resume_concurrent(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &dyn ConcurrentOracle,
        observer: &dyn Observer,
        store: &dyn CheckpointStore,
    ) -> Result<TuneResult> {
        let ckpt = recover_checkpoint(store, observer)?;
        let snapshot_degraded = ckpt.as_ref().map_or(0, |c| c.snapshot.degraded_fits);
        self.run_core(
            source,
            candidates,
            OracleRef::Concurrent(oracle),
            observer,
            Some(store),
            ckpt,
        )
        .map_err(|e| explain_degraded_divergence(e, snapshot_degraded))
    }

    /// Like [`PpaTuner::run_observed`], but persists a [`Checkpoint`] to
    /// `store` at the end of every iteration, so an interrupted run can
    /// be continued with [`PpaTuner::resume`]. Any previous checkpoint in
    /// the store is overwritten.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run`], plus [`TunerError::Checkpoint`] when
    /// the store rejects a save.
    pub fn run_checkpointed<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
        observer: &dyn Observer,
        store: &dyn CheckpointStore,
    ) -> Result<TuneResult> {
        self.run_core(
            source,
            candidates,
            OracleRef::Serial(oracle),
            observer,
            Some(store),
            None,
        )
    }

    /// Continues an interrupted [`PpaTuner::run_checkpointed`] run from
    /// the checkpoint in `store` (an empty store starts a fresh run), and
    /// keeps checkpointing as it goes.
    ///
    /// Resume works by deterministic replay: the loop re-executes from
    /// the start with the same seed, serving oracle calls from the
    /// checkpoint's evaluation log (failures included) instead of the
    /// live tool, which reproduces the checkpointed state exactly —
    /// verified against the checkpoint's snapshot before live evaluation
    /// takes over. Trace events are only emitted for the live portion, so
    /// concatenating the interrupted run's trace with the resumed one
    /// yields one seamless run. Given the same `config`, `source`,
    /// `candidates`, and a fresh oracle over the same ground truth, the
    /// final [`TuneResult`] is identical to the uninterrupted run's
    /// (modulo wall-clock timing fields).
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run_checkpointed`], plus
    /// [`TunerError::Checkpoint`] when the stored checkpoint has a
    /// different version/configuration/data, or its log diverges from
    /// what the deterministic replay re-derives.
    pub fn resume<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
        observer: &dyn Observer,
        store: &dyn CheckpointStore,
    ) -> Result<TuneResult> {
        let ckpt = recover_checkpoint(store, observer)?;
        let snapshot_degraded = ckpt.as_ref().map_or(0, |c| c.snapshot.degraded_fits);
        self.run_core(
            source,
            candidates,
            OracleRef::Serial(oracle),
            observer,
            Some(store),
            ckpt,
        )
        .map_err(|e| explain_degraded_divergence(e, snapshot_degraded))
    }

    /// The actual loop. `store` enables per-iteration checkpointing;
    /// `resume_from` replays a previous run's evaluation log before going
    /// live.
    fn run_core(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: OracleRef<'_>,
        observer: &dyn Observer,
        store: Option<&dyn CheckpointStore>,
        resume_from: Option<Checkpoint>,
    ) -> Result<TuneResult> {
        let run_start = Instant::now();
        self.config.validate()?;
        if candidates.is_empty() {
            return Err(TunerError::InvalidInput {
                reason: "candidate set must not be empty",
            });
        }
        let dim = candidates[0].len();
        if dim == 0 || candidates.iter().any(|c| c.len() != dim) {
            return Err(TunerError::InvalidInput {
                reason: "candidates must share a non-zero dimension",
            });
        }
        if !source.is_empty() && source.x[0].len() != dim {
            return Err(TunerError::InvalidInput {
                reason: "source and candidate dimensions differ",
            });
        }
        if candidates.iter().any(|c| c.iter().any(|v| !v.is_finite())) {
            return Err(TunerError::InvalidInput {
                reason: "candidates must be finite (no NaN/inf)",
            });
        }
        // From here on the candidate list is owned: the adaptive pool
        // appends refinement candidates to it. Digests and checkpoint
        // validation below run against this initial (caller) state —
        // growth only ever appends, and replays deterministically, so
        // the caller's candidates stay the run's identity.
        let mut candidates: Vec<Vec<f64>> = candidates.to_vec();

        // Checkpoint plumbing. `driver` serves oracle attempts — from the
        // resume log while it lasts, live afterwards — and records every
        // outcome so later checkpoints carry the complete history. `live`
        // gates run-structure events (and checkpoint writes) off while
        // replay reproduces already-traced iterations.
        let digests = store.map(|_| (digest_matrix(&candidates), source_digest(source)));
        if let Some(ckpt) = &resume_from {
            ckpt.validate(&self.config, &candidates, source)
                .map_err(|reason| TunerError::Checkpoint { reason })?;
        }
        let resume_state = resume_from.map(|c| (c.next_iteration, c.snapshot, c.eval_log));
        let mut driver = EvalDriver {
            oracle,
            replay: resume_state
                .as_ref()
                .map(|(_, _, log)| log.iter().cloned().collect())
                .unwrap_or_default(),
            replayed_runs: 0,
            log: Vec::new(),
        };
        let mut live = !driver.replaying();
        // Causal spans. IDs are allocated unconditionally along the run
        // structure (a relaxed atomic add — negligible for NULL_SINK runs)
        // but emitted only for live, enabled observers. A resumed run
        // therefore re-allocates the replayed portion's IDs silently, and
        // its live span IDs continue exactly where the interrupted trace
        // stopped — concatenated traces stay one seamless span tree.
        let tracer = Tracer::new();
        let run_span = tracer.open("run", None);
        let mut eval_failures = 0usize;
        let mut eval_retries = 0usize;
        let mut quarantined_order: Vec<usize> = Vec::new();

        let n = candidates.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // ------------------------------------------------- initialization
        // Greedy maximin selection seeded by a random pick: the random
        // sampling of the paper with better space coverage for the same
        // budget (pure-random ablation: shuffle and truncate instead).
        let init_count = self.config.initial_samples.min(n);
        let mut init_idx: Vec<usize> = Vec::with_capacity(init_count);
        {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            init_idx.push(order[0]);
            let mut dist = vec![f64::INFINITY; n];
            while init_idx.len() < init_count {
                let last = *init_idx.last().expect("non-empty");
                for (i, d) in dist.iter_mut().enumerate() {
                    let dd = sq_dist(&candidates[i], &candidates[last]);
                    if dd < *d {
                        *d = dd;
                    }
                }
                let next = (0..n)
                    .filter(|i| !init_idx.contains(i))
                    .max_by(|&a, &b| {
                        dist[a]
                            .partial_cmp(&dist[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("candidates remain");
                init_idx.push(next);
            }
        }

        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut evaluated_flag = vec![false; n];
        // Attempt-level events are buffered until RunStart can be emitted
        // (the run isn't fully characterized until the first QoR arrives).
        let mut init_events: Vec<Event> = Vec::new();
        let mut init_quarantined: Vec<(usize, usize)> = Vec::new();
        let mut n_obj_opt: Option<usize> = None;
        for chunk in init_idx.chunks(self.config.batch_size.max(1)) {
            let outs = {
                let ctx = WaveCtx {
                    iteration: 0,
                    candidates: &candidates,
                    n_obj: n_obj_opt,
                    gate: None,
                };
                evaluate_wave(
                    &mut driver,
                    chunk,
                    &ctx,
                    &self.config,
                    live && observer.enabled(),
                    &mut |e| init_events.push(e),
                    &tracer,
                    &run_span,
                )?
            };
            for (&i, out) in chunk.iter().zip(outs) {
                eval_retries += out.attempts.saturating_sub(1);
                eval_failures += out.failures;
                match out.qor {
                    Some(y) => {
                        match n_obj_opt {
                            // The first accepted QoR of a wave fixes the
                            // objective count; siblings of that same wave
                            // were sanitized before it was known, so they
                            // are dimension-checked here instead.
                            None => n_obj_opt = Some(y.len()),
                            Some(m) if y.len() != m => return Err(TunerError::InvalidInput {
                                reason:
                                    "oracle returned inconsistent objective counts within a batch",
                            }),
                            Some(_) => {}
                        }
                        evaluated_flag[i] = true;
                        evaluated.push((i, y));
                    }
                    None => {
                        if live && observer.enabled() {
                            init_events.push(Event::CandidateQuarantined {
                                iteration: 0,
                                candidate: i,
                                attempts: out.attempts,
                            });
                        }
                        init_quarantined.push((i, out.attempts));
                    }
                }
            }
        }
        // Two successes are the floor for observed ranges (δ, the
        // hypervolume reference) and a fittable target task.
        let n_obj = match n_obj_opt {
            Some(m) if evaluated.len() >= 2 => m,
            _ => {
                return Err(TunerError::InvalidInput {
                    reason: "fewer than two initialization evaluations succeeded",
                })
            }
        };
        if let Some(m) = source.objectives() {
            if m != n_obj {
                return Err(TunerError::InvalidInput {
                    reason: "source and oracle objective counts differ",
                });
            }
        }

        // The run is now fully characterized: announce it, then flush the
        // buffered initialization attempts into the trace (iteration 0).
        if live && observer.enabled() {
            observer.emit(&Event::RunStart {
                candidates: n,
                objectives: n_obj,
                dim,
                initial_samples: init_count,
                max_iterations: self.config.max_iterations,
                seed: self.config.seed,
            });
            // The run span opens right after RunStart, before the buffered
            // initialization attempts that are its children.
            observer.emit(&run_span.start_event());
            for e in &init_events {
                observer.emit(e);
            }
        }
        drop(init_events);

        // Per-objective observed ranges of the initialization sample.
        let init_ranges: Vec<(f64, f64)> = (0..n_obj)
            .map(|k| {
                let vals: Vec<f64> = evaluated.iter().map(|(_, y)| y[k]).collect();
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            })
            .collect();

        // Absolute δ from the observed initialization ranges.
        let delta: Vec<f64> = init_ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo).max(f64::MIN_POSITIVE) * self.config.delta_rel)
            .collect();

        // Fixed hypervolume reference for trace reporting: slightly worse
        // than the initialization nadir, so incremental hypervolume is
        // monotone and comparable across iterations of the same run.
        let hv_reference: Vec<f64> = init_ranges
            .iter()
            .map(|&(lo, hi)| hi + 0.1 * (hi - lo).max(f64::MIN_POSITIVE))
            .collect();

        let mut regions: Vec<UncertaintyRegion> = (0..n)
            .map(|_| UncertaintyRegion::unbounded(n_obj))
            .collect();
        for (i, y) in &evaluated {
            regions[*i].collapse_to(y);
        }
        let mut statuses = vec![Status::Undecided; n];
        for &(i, _) in &init_quarantined {
            statuses[i] = Status::Quarantined;
            quarantined_order.push(i);
        }

        // Running per-objective span of accepted observations: the floor
        // of the outlier gate's allowance, so a tight (or collapsed)
        // region can never reject values of the magnitude the tool
        // actually produces.
        let mut obs_span = ObservedSpan::new(n_obj);
        for (_, y) in &evaluated {
            obs_span.absorb(y);
        }

        let source_tasks: Vec<TaskData> = (0..n_obj).map(|k| source.task_data(k)).collect();

        // The adaptive pool (when enabled) wraps the candidates in a
        // bisection cell tree; refinement happens inside the loop once
        // uncertainty regions carry evidence.
        let mut pool = if self.config.adaptive_pool {
            Some(AdaptivePool::new(&candidates)?)
        } else {
            None
        };

        let mut history = Vec::new();
        let mut iterations = 0;
        // Per-objective surrogates, persistent across iterations: full
        // hyper-parameter refits replace them, warm iterations extend them
        // in place (`condition_on`) with the observations made since.
        let mut models_opt: Option<Vec<TransferGp>> = None;
        // How many entries of `evaluated` each objective's persistent
        // model has seen. Per-objective because a degraded (frozen) model
        // lags its peers until a later calibration catches it up on
        // everything it missed.
        let mut conditioned_upto = vec![0usize; n_obj];
        // Degraded-mode supervisor state. `degraded_streak` counts
        // *consecutive* iterations in which at least one objective was
        // served by a last-good model after a numerical calibration
        // failure; a fully clean calibration resets it, and exceeding
        // `degraded_fit_budget` aborts with a typed error. Replay
        // re-derives both deterministically (an injected fault plan must
        // be re-armed on resume — `verify_resumed_state` compares the
        // total against the snapshot to catch a forgotten one).
        let mut degraded_total = 0usize;
        let mut degraded_streak = 0usize;
        let mut last_degraded_cause = String::new();
        // Per-objective predict caches, persistent like the models: warm
        // iterations only append rows to the joint factor, so each
        // undecided candidate's forward-substitution prefix survives and
        // the sweep pays only the q-row tail. Refits invalidate via the
        // fit epoch; candidates that stop being queried are evicted at
        // the next sweep boundary. Results are bit-identical either way.
        let mut predict_caches: Vec<PredictCache> =
            (0..n_obj).map(|_| PredictCache::new()).collect();
        let predict_workers = self.config.effective_predict_workers();

        // ------------------------------------------------------- the loop
        for t in 0..self.config.max_iterations {
            // Replay drains exactly at the checkpoint's iteration
            // boundary; verify the re-derived state against the snapshot
            // before switching to live evaluation and event emission.
            if !live && !driver.replaying() {
                if let Some((next_iteration, snapshot, _)) = &resume_state {
                    verify_resumed_state(
                        t,
                        *next_iteration,
                        snapshot,
                        &statuses,
                        evaluated.len(),
                        driver.runs(),
                        &rng,
                        &delta,
                        degraded_total,
                    )?;
                }
                live = true;
            }
            let undecided_exists = statuses.contains(&Status::Undecided);
            if !undecided_exists {
                break;
            }
            iterations = t + 1;
            let iter_start = Instant::now();
            let iter_span = tracer.open("iteration", Some(&run_span));
            let iter_resources = GpCounters::snapshot();
            if live && observer.enabled() {
                observer.emit(&iter_span.start_event());
            }
            // Attempts logged before this iteration: used to decide
            // whether this iteration is a valid checkpoint boundary.
            let log_mark = driver.log.len();

            // ---- model calibration (Algorithm 1, lines 4-6)
            let fit_phase = Instant::now();
            let fit_span = tracer.open("gp_fit", Some(&iter_span));
            if live && observer.enabled() {
                observer.emit(&fit_span.start_event());
            }
            let needs_refit = models_opt.is_none() || t % self.config.refit_every.max(1) == 0;
            // Set when any objective's calibration fell back to a
            // last-good model this iteration (degraded mode).
            let mut iter_degraded = false;
            if needs_refit {
                // One shared encoded copy of the evaluated configurations;
                // each objective's task view only materializes its own
                // QoR column.
                let target_x: Arc<Vec<Vec<f64>>> = Arc::new(
                    evaluated
                        .iter()
                        .map(|(i, _)| candidates[*i].clone())
                        .collect(),
                );
                let target_tasks: Vec<TaskData> = (0..n_obj)
                    .map(|k| {
                        TaskData::from_shared(
                            Arc::clone(&target_x),
                            evaluated.iter().map(|(_, y)| y[k]).collect(),
                        )
                    })
                    .collect();
                // Pre-draw every objective's restart starts sequentially
                // (objective order), then fan the independent searches out
                // across threads: the RNG stream — and therefore the result
                // — is identical at any thread count.
                let starts: Vec<Vec<Vec<f64>>> = (0..n_obj)
                    .map(|_| restart_starts(dim, self.config.fit_budget.restarts, &mut rng))
                    .collect();
                let budget = self.config.fit_budget;
                let fit_threads = self.config.threads.max(1);
                let restart_threads = (fit_threads / n_obj).max(1);
                type FitOut = gp::Result<(TransferGp, gp::optimize::FitReport, f64)>;
                // Injected numerical faults (chaos suites) are decided
                // here on the coordinator thread — a pure hash of
                // (iteration, objective) — so the scoped fit workers stay
                // oblivious to the thread-local plan and replay re-derives
                // identical decisions.
                let injected: Vec<Option<gp::GpError>> = (0..n_obj)
                    .map(|k| supervisor::injected_fault(supervisor::FitStage::Refit, t, k))
                    .collect();
                let fit_one = |k: usize| -> FitOut {
                    if let Some(e) = injected[k].clone() {
                        return Err(e);
                    }
                    let fit_start = Instant::now();
                    let (m, report) = fit_transfer_gp_from_starts(
                        &source_tasks[k],
                        &target_tasks[k],
                        dim,
                        budget,
                        &starts[k],
                        restart_threads,
                    )?;
                    Ok((m, report, fit_start.elapsed().as_secs_f64()))
                };
                let outs: Vec<FitOut> = if fit_threads == 1 || n_obj == 1 {
                    (0..n_obj).map(fit_one).collect()
                } else {
                    let mut slots: Vec<Option<FitOut>> = (0..n_obj).map(|_| None).collect();
                    std::thread::scope(|s| {
                        let fit_one = &fit_one;
                        for (k, slot) in slots.iter_mut().enumerate() {
                            s.spawn(move || *slot = Some(fit_one(k)));
                        }
                    });
                    slots
                        .into_iter()
                        .map(|o| o.expect("every fit slot is filled"))
                        .collect()
                };
                // Last-good surrogates, one slot per objective, for the
                // degraded fallback below. None before the bootstrap fit.
                let mut prev_models: Vec<Option<TransferGp>> = match models_opt.take() {
                    Some(v) => v.into_iter().map(Some).collect(),
                    None => (0..n_obj).map(|_| None).collect(),
                };
                let mut models: Vec<TransferGp> = Vec::with_capacity(n_obj);
                for (k, out) in outs.into_iter().enumerate() {
                    match out {
                        Ok((model, report, fit_duration)) => {
                            if live && observer.enabled() {
                                let cfg = model.config();
                                observer.emit(&Event::GpFit {
                                    iteration: t,
                                    objective: k,
                                    refit: true,
                                    lengthscales: cfg.lengthscales.clone(),
                                    signal_var: cfg.signal_var,
                                    noise_target: cfg.noise_target,
                                    lambda: model.lambda(),
                                    restarts: report.restarts,
                                    evals: report.evals,
                                    cached_evals: report.cached_evals,
                                    fresh_evals: report.fresh_evals,
                                    log_marginal: model.log_marginal_likelihood(),
                                    jitter: model.jitter(),
                                    duration_s: fit_duration,
                                });
                            }
                            conditioned_upto[k] = evaluated.len();
                            models.push(model);
                        }
                        Err(e) if e.is_recoverable() && prev_models[k].is_some() => {
                            // Degraded mode: the last-good surrogate for
                            // this objective absorbs the failure. First
                            // choice is a data-only refit reusing its
                            // hyper-parameters (fresh observations still
                            // enter the model); if that fails too, the
                            // previous model serves one more iteration
                            // frozen. A DegradedFit event replaces the
                            // objective's GpFit, so clean traces are
                            // untouched.
                            let prev = prev_models[k].take().expect("just checked");
                            let fallback = match supervisor::injected_fault(
                                supervisor::FitStage::Fallback,
                                t,
                                k,
                            ) {
                                Some(fe) => Err(fe),
                                None => prev.refit_data_only(
                                    source_tasks[k].clone(),
                                    target_tasks[k].clone(),
                                ),
                            };
                            let (model, mode) = match fallback {
                                Ok(m) => {
                                    conditioned_upto[k] = evaluated.len();
                                    (m, DEGRADED_REFIT_REUSED)
                                }
                                // Frozen: conditioned_upto[k] stays put, so
                                // the next successful calibration catches
                                // this objective up on what it missed.
                                Err(_) => (prev, DEGRADED_FROZEN),
                            };
                            degraded_total += 1;
                            iter_degraded = true;
                            last_degraded_cause = e.to_string();
                            if live && observer.enabled() {
                                observer.emit(&Event::DegradedFit {
                                    iteration: t,
                                    objective: k,
                                    cause: e.to_string(),
                                    mode: mode.to_string(),
                                    consecutive: degraded_streak + 1,
                                });
                            }
                            models.push(model);
                        }
                        // Structural failure, or no last-good model to
                        // degrade to (the bootstrap fit): abort as before.
                        Err(e) => return Err(e.into()),
                    }
                }
                models_opt = Some(models);
            } else {
                // Warm iteration: extend each persistent surrogate with the
                // observations made since its factorization — a rank-k
                // Cholesky append instead of a from-scratch refit. A
                // numerically rejected extension freezes that objective's
                // model for this iteration (degraded mode); its
                // conditioning mark stays put so a later calibration
                // catches it up.
                let models = models_opt.as_mut().expect("warm path follows a refit");
                for (k, model) in models.iter_mut().enumerate() {
                    let fit_start = Instant::now();
                    let new_x: Vec<Vec<f64>> = evaluated[conditioned_upto[k]..]
                        .iter()
                        .map(|(i, _)| candidates[*i].clone())
                        .collect();
                    let new_y: Vec<f64> = evaluated[conditioned_upto[k]..]
                        .iter()
                        .map(|(_, y)| y[k])
                        .collect();
                    let outcome =
                        match supervisor::injected_fault(supervisor::FitStage::Condition, t, k) {
                            Some(e) => Err(e),
                            None => model.condition_on(&new_x, &new_y),
                        };
                    match outcome {
                        Ok(()) => {
                            conditioned_upto[k] = evaluated.len();
                            if live && observer.enabled() {
                                let cfg = model.config();
                                observer.emit(&Event::GpFit {
                                    iteration: t,
                                    objective: k,
                                    refit: false,
                                    lengthscales: cfg.lengthscales.clone(),
                                    signal_var: cfg.signal_var,
                                    noise_target: cfg.noise_target,
                                    lambda: model.lambda(),
                                    restarts: 0,
                                    evals: 0,
                                    cached_evals: 0,
                                    fresh_evals: 0,
                                    log_marginal: model.log_marginal_likelihood(),
                                    jitter: model.jitter(),
                                    duration_s: fit_start.elapsed().as_secs_f64(),
                                });
                            }
                        }
                        Err(e) if e.is_recoverable() => {
                            // `condition_on` leaves the model untouched on
                            // error, so "frozen" needs no restore step.
                            degraded_total += 1;
                            iter_degraded = true;
                            last_degraded_cause = e.to_string();
                            if live && observer.enabled() {
                                observer.emit(&Event::DegradedFit {
                                    iteration: t,
                                    objective: k,
                                    cause: e.to_string(),
                                    mode: DEGRADED_FROZEN.to_string(),
                                    consecutive: degraded_streak + 1,
                                });
                            }
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            if iter_degraded {
                degraded_streak += 1;
                if degraded_streak > self.config.degraded_fit_budget {
                    return Err(TunerError::DegradationBudgetExhausted {
                        consecutive: degraded_streak,
                        cause: std::mem::take(&mut last_degraded_cause),
                    });
                }
            } else {
                degraded_streak = 0;
            }
            let gp_fit_s = fit_phase.elapsed().as_secs_f64();
            if live && observer.enabled() {
                observer.emit(&tracer.end_event(&fit_span));
            }
            let models = models_opt.as_ref().expect("models exist past fitting");

            // Predict boxes for active, un-evaluated candidates — through
            // the exact posterior, or the subset-of-data path once the
            // training set outgrows `sod_threshold`. Subset predictors
            // are rebuilt from the freshly fitted/conditioned models each
            // iteration, so they never lag the exact posterior's data.
            let predict_phase = Instant::now();
            let train_size = source.len() + evaluated.len();
            let sod: Option<Vec<SubsetPredictor>> = if train_size > self.config.sod_threshold {
                Some(
                    models
                        .iter()
                        .map(|m| m.subset_predictor(self.config.sod_subset))
                        .collect::<gp::Result<_>>()?,
                )
            } else {
                None
            };
            let surrogates = match &sod {
                Some(preds) => Surrogates::Subset(preds),
                None => Surrogates::Exact(models),
            };
            let active: Vec<usize> = (0..candidates.len())
                .filter(|&i| statuses[i].is_active() && !evaluated_flag[i])
                .collect();
            // PredictMode is only in the trace when the SoD feature is
            // actually configured — legacy traces stay byte-identical.
            if live && observer.enabled() && self.config.sod_threshold != usize::MAX {
                observer.emit(&Event::PredictMode {
                    iteration: t,
                    train_size,
                    subset_size: sod
                        .as_ref()
                        .and_then(|preds| preds.first())
                        .map_or(train_size, SubsetPredictor::subset_size),
                    queries: active.len(),
                    mode: if sod.is_some() { "subset" } else { "exact" }.into(),
                });
            }
            // One sweep per iteration: entries untouched since the last
            // sweep belong to classified/pruned candidates and are
            // evicted; the active-set and pool-refinement predicts below
            // share the new stamp.
            for cache in &mut predict_caches {
                cache.begin_sweep();
            }
            let boxes = predict_boxes(
                &surrogates,
                &candidates,
                &active,
                self.config.tau,
                predict_workers,
                self.config.predict_block,
                &mut predict_caches,
            )?;
            for (pos, &i) in active.iter().enumerate() {
                let (lo, hi) = &boxes[pos];
                regions[i].intersect(lo, hi);
            }

            // ---- adaptive refinement: split the cells whose
            // representative's region stayed wide relative to the cell
            // itself, then box the new representatives immediately so this
            // iteration's classification and selection see them.
            if let Some(pool) = pool.as_mut() {
                let before = candidates.len();
                let outcome = pool.refine(
                    &mut candidates,
                    &regions,
                    &statuses,
                    self.config.pool_refine_scale,
                    self.config.pool_refine_ceiling,
                    self.config.pool_max_refines,
                    self.config.pool_max_size,
                );
                if outcome.splits > 0 {
                    for _ in before..candidates.len() {
                        regions.push(UncertaintyRegion::unbounded(n_obj));
                        statuses.push(Status::Undecided);
                        evaluated_flag.push(false);
                    }
                    let fresh: Vec<usize> = (before..candidates.len()).collect();
                    let fresh_boxes = predict_boxes(
                        &surrogates,
                        &candidates,
                        &fresh,
                        self.config.tau,
                        predict_workers,
                        self.config.predict_block,
                        &mut predict_caches,
                    )?;
                    for (pos, &i) in fresh.iter().enumerate() {
                        let (lo, hi) = &fresh_boxes[pos];
                        regions[i].intersect(lo, hi);
                    }
                }
                if live && observer.enabled() {
                    observer.emit(&Event::PoolRefine {
                        iteration: t,
                        splits: outcome.splits,
                        leaves: outcome.leaves,
                        pool_size: candidates.len(),
                        effective_pool: outcome.effective_pool,
                    });
                }
            }
            let predict_s = predict_phase.elapsed().as_secs_f64();

            // ---- decision-making (lines 7-9)
            let classify_span = tracer.open("classify", Some(&iter_span));
            classify(&regions, &mut statuses, &delta);
            // Counted once per iteration here, then maintained through the
            // quarantine transitions below — `IterationEnd` and the
            // history row never re-scan the status vector.
            let mut counts = status_counts(&statuses);
            if live && observer.enabled() {
                observer.emit(&classify_span.start_event());
                observer.emit(&Event::Classify {
                    iteration: t,
                    pareto: counts.1,
                    dropped: counts.2,
                    undecided: counts.0,
                    delta: delta.clone(),
                });
                observer.emit(&Event::RegionSnapshot {
                    iteration: t,
                    statuses: statuses.iter().map(status_char).collect(),
                    diameters: regions.iter().map(UncertaintyRegion::diameter).collect(),
                });
                observer.emit(&tracer.end_event(&classify_span));
            }

            // When classification just settled the last undecided
            // candidate (or selection below finds nothing informative to
            // measure), the iteration is still recorded and checkpointed
            // like any other before the loop stops, so a resumed run can
            // skip straight past it.
            let mut stop = counts.0 == 0;

            // ---- selection (lines 10-11): a diverse batch of the
            // longest-diameter active candidates (`select_batch`; at
            // batch size 1 this is exactly Eq. 13's argmax), evaluated as
            // one concurrent wave. When a selected candidate exhausts its
            // failure budget it is quarantined, and the iteration falls
            // back to re-selecting from the remaining eligible candidates
            // within the same iteration (each fallback wave gets its own
            // selection event), so injected faults cost retries, not
            // iterations.
            let mut want = self.config.batch_size;
            let mut selected_any = false;
            while !stop && want > 0 {
                // Allocated before the emptiness check so replayed and
                // live executions of the same wave agree on span IDs; an
                // empty wave's span is simply never emitted.
                let select_span = tracer.open("select", Some(&iter_span));
                let picks = select_batch(
                    &candidates,
                    &regions,
                    &statuses,
                    &evaluated_flag,
                    want,
                    self.config.batch_diversity,
                    self.config.diversity_radius,
                );
                if picks.is_empty() {
                    break;
                }
                selected_any = true;
                if live && observer.enabled() {
                    observer.emit(&select_span.start_event());
                    if self.config.batch_size > 1 {
                        observer.emit(&Event::BatchSelect {
                            iteration: t,
                            q: want,
                            chosen: picks.iter().map(|p| p.index).collect(),
                            diameters: picks.iter().map(|p| p.diameter).collect(),
                            scores: picks.iter().map(|p| p.score).collect(),
                        });
                    } else {
                        observer.emit(&Event::Select {
                            iteration: t,
                            chosen: picks.iter().map(|p| p.index).collect(),
                            diameters: picks.iter().map(|p| p.diameter).collect(),
                        });
                    }
                    observer.emit(&tracer.end_event(&select_span));
                }
                let members: Vec<usize> = picks.iter().map(|p| p.index).collect();
                let outs = {
                    let ctx = WaveCtx {
                        iteration: t,
                        candidates: &candidates,
                        n_obj: Some(n_obj),
                        gate: Some((&regions, &obs_span, self.config.outlier_gate)),
                    };
                    evaluate_wave(
                        &mut driver,
                        &members,
                        &ctx,
                        &self.config,
                        observer.enabled(),
                        &mut |e| observer.emit(&e),
                        &tracer,
                        &iter_span,
                    )?
                };
                for (&i, out) in members.iter().zip(outs) {
                    eval_retries += out.attempts.saturating_sub(1);
                    eval_failures += out.failures;
                    match out.qor {
                        Some(y) => {
                            regions[i].collapse_to(&y);
                            evaluated_flag[i] = true;
                            obs_span.absorb(&y);
                            evaluated.push((i, y));
                            want -= 1;
                        }
                        None => {
                            // Maintain the once-per-iteration counts
                            // through the status transition (a selected
                            // candidate is Undecided or Pareto, but the
                            // match is total for safety).
                            match statuses[i] {
                                Status::Undecided => counts.0 -= 1,
                                Status::Pareto => counts.1 -= 1,
                                Status::Dropped => counts.2 -= 1,
                                Status::Quarantined => counts.3 -= 1,
                            }
                            counts.3 += 1;
                            statuses[i] = Status::Quarantined;
                            quarantined_order.push(i);
                            if !out.replayed && observer.enabled() {
                                observer.emit(&Event::CandidateQuarantined {
                                    iteration: t,
                                    candidate: i,
                                    attempts: out.attempts,
                                });
                            }
                        }
                    }
                }
            }
            if !stop && !selected_any {
                // Everything informative has been measured.
                stop = true;
            }

            if live && observer.enabled() {
                let d = GpCounters::snapshot().since(&iter_resources);
                observer.emit(&Event::ResourceSample {
                    iteration: t,
                    chol_flops: d.linalg.chol_flops,
                    chol_panels: d.linalg.chol_panels,
                    tri_solve_rhs: d.linalg.tri_solve_rhs,
                    fitcache_hits: d.fitcache_hits,
                    fitcache_misses: d.fitcache_misses,
                    kernel_assemblies: d.kernel_assemblies,
                    predict_cache_hits: d.predict_cache_hits,
                    predict_cache_misses: d.predict_cache_misses,
                    predict_cache_evictions: d.predict_cache_evictions,
                    predict_chunks: d.predict_chunks,
                });
            }

            let ctx = IterationOutcome {
                iteration: t,
                runs: driver.runs(),
                duration_s: iter_start.elapsed().as_secs_f64(),
                gp_fit_s,
                predict_s,
            };
            record(
                observer,
                live,
                &mut history,
                counts,
                &evaluated,
                &hv_reference,
                ctx,
            );

            // Persist the full resumable state at the iteration boundary.
            // Live iterations only (replayed ones would rewrite what the
            // checkpoint already holds), and only iterations that logged
            // at least one attempt: resume replays the eval log, so the
            // log must drain exactly at the checkpointed boundary — an
            // eval-less iteration would drain one iteration early and
            // fail state verification.
            // The span is allocated whenever this iteration *would*
            // checkpoint — `driver.log.len() > log_mark` holds equally
            // during replay, so resumed runs re-derive the same IDs.
            let ckpt_span = if store.is_some() && driver.log.len() > log_mark {
                Some(tracer.open("checkpoint", Some(&iter_span)))
            } else {
                None
            };
            if let (Some(store), Some((candidates_digest, src_digest)), true) =
                (store, digests, live && driver.log.len() > log_mark)
            {
                let mut checkpoint = Checkpoint {
                    version: CHECKPOINT_VERSION,
                    next_iteration: t + 1,
                    config: self.config.clone(),
                    candidates_digest,
                    source_digest: src_digest,
                    eval_log: driver.log.clone(),
                    snapshot: StateSnapshot {
                        statuses: statuses.iter().map(status_char).collect(),
                        evaluated: evaluated.len(),
                        runs: driver.runs(),
                        rng_state: rng.state().to_vec(),
                        delta: delta.clone(),
                        regions: regions.clone(),
                        history: history.clone(),
                        degraded_fits: degraded_total,
                    },
                    digest: 0,
                };
                checkpoint.seal();
                store
                    .save(&checkpoint)
                    .map_err(|e| TunerError::Checkpoint {
                        reason: e.to_string(),
                    })?;
                if observer.enabled() {
                    if let Some(span) = &ckpt_span {
                        observer.emit(&span.start_event());
                    }
                    observer.emit(&Event::Checkpoint {
                        iteration: t,
                        runs: driver.runs(),
                        evals_logged: driver.log.len(),
                    });
                    if let Some(span) = &ckpt_span {
                        observer.emit(&tracer.end_event(span));
                    }
                }
            }
            if live && observer.enabled() {
                observer.emit(&tracer.end_event(&iter_span));
            }
            if stop {
                break;
            }
        }

        // A run that completed before being checkpointed again replays
        // its whole loop; whatever follows (verification) is live work.
        if !live && !driver.replaying() {
            live = true;
        }

        // Final classification pass so late evaluations settle the sets.
        classify(&regions, &mut statuses, &delta);
        let search_runs = driver.runs();

        // Closing step of the paper's flow: the predicted Pareto set is
        // fed through the PD tool for verification. Candidate set = the
        // classified Pareto members plus the measured front; verification
        // evaluates any member not yet measured, and the final answer is
        // the non-dominated subset on golden values.
        let mut final_candidates: Vec<usize> = (0..candidates.len())
            .filter(|&i| statuses[i] == Status::Pareto)
            .collect();
        // When the loop stopped before full classification, add the
        // surrogate's predicted front over the still-active candidates.
        if self.config.include_predicted_front {
            if let Some(models) = &models_opt {
                let undecided: Vec<usize> = (0..candidates.len())
                    .filter(|&i| statuses[i] == Status::Undecided && !evaluated_flag[i])
                    .collect();
                if !undecided.is_empty() {
                    let queries: Vec<Vec<f64>> =
                        undecided.iter().map(|&i| candidates[i].clone()).collect();
                    let mut mus: Vec<Vec<f64>> = vec![Vec::with_capacity(n_obj); undecided.len()];
                    for model in models {
                        for (q, (mu, _)) in model
                            .predict_latent_batch_par(
                                &queries,
                                self.config.predict_block,
                                predict_workers,
                            )?
                            .into_iter()
                            .enumerate()
                        {
                            mus[q].push(mu);
                        }
                    }
                    for j in pareto::front::pareto_front(&mus) {
                        let idx = undecided[j];
                        if !final_candidates.contains(&idx) {
                            final_candidates.push(idx);
                        }
                    }
                }
            }
        }
        {
            let pts: Vec<Vec<f64>> = evaluated.iter().map(|(_, y)| y.clone()).collect();
            for j in pareto::front::pareto_front(&pts) {
                let idx = evaluated[j].0;
                if !final_candidates.contains(&idx) {
                    final_candidates.push(idx);
                }
            }
        }
        // Verification evaluates unmeasured members in batch-sized waves
        // (same fan-out as the loop); `truth` keeps `final_candidates`
        // order regardless of the chunking.
        let mut truth_vals: Vec<Option<Vec<f64>>> = Vec::with_capacity(final_candidates.len());
        let mut to_verify: Vec<(usize, usize)> = Vec::new();
        for (slot, &i) in final_candidates.iter().enumerate() {
            match evaluated.iter().find(|(j, _)| *j == i) {
                Some((_, y)) => truth_vals.push(Some(y.clone())),
                None => {
                    truth_vals.push(None);
                    to_verify.push((slot, i));
                }
            }
        }
        for chunk in to_verify.chunks(self.config.batch_size.max(1)) {
            let members: Vec<usize> = chunk.iter().map(|&(_, i)| i).collect();
            let outs = {
                let ctx = WaveCtx {
                    iteration: iterations,
                    candidates: &candidates,
                    n_obj: Some(n_obj),
                    gate: Some((&regions, &obs_span, self.config.outlier_gate)),
                };
                evaluate_wave(
                    &mut driver,
                    &members,
                    &ctx,
                    &self.config,
                    observer.enabled(),
                    &mut |e| observer.emit(&e),
                    &tracer,
                    &run_span,
                )?
            };
            for (&(slot, i), out) in chunk.iter().zip(outs) {
                eval_retries += out.attempts.saturating_sub(1);
                eval_failures += out.failures;
                match out.qor {
                    Some(y) => truth_vals[slot] = Some(y),
                    None => {
                        // A predicted-front member we could not verify:
                        // exclude it from the reported set rather than
                        // vouching for an unmeasured point.
                        statuses[i] = Status::Quarantined;
                        quarantined_order.push(i);
                        if !out.replayed && observer.enabled() {
                            observer.emit(&Event::CandidateQuarantined {
                                iteration: iterations,
                                candidate: i,
                                attempts: out.attempts,
                            });
                        }
                    }
                }
            }
        }
        let truth: Vec<(usize, Vec<f64>)> = final_candidates
            .iter()
            .zip(truth_vals)
            .filter_map(|(&i, v)| v.map(|y| (i, y)))
            .collect();
        let pts: Vec<Vec<f64>> = truth.iter().map(|(_, y)| y.clone()).collect();
        let pareto_indices: Vec<usize> = pareto::front::pareto_front(&pts)
            .into_iter()
            .map(|j| truth[j].0)
            .collect();

        let result = TuneResult {
            pareto_indices,
            runs: search_runs,
            verification_runs: driver.runs() - search_runs,
            iterations,
            history,
            delta,
            evaluated,
            quarantined: quarantined_order,
            eval_failures,
            eval_retries,
            degraded_fits: degraded_total,
        };
        if live && observer.enabled() {
            observer.emit(&Event::RunEnd {
                iterations: result.iterations,
                runs: result.runs,
                verification_runs: result.verification_runs,
                pareto: result.pareto_indices.len(),
                duration_s: run_start.elapsed().as_secs_f64(),
            });
            observer.emit(&tracer.end_event(&run_span));
        }
        observer.flush();
        Ok(result)
    }
}

/// The single-character trace encoding of a [`Status`] (see
/// [`Event::RegionSnapshot`]).
fn status_char(s: &Status) -> char {
    match s {
        Status::Undecided => 'u',
        Status::Pareto => 'p',
        Status::Dropped => 'd',
        Status::Quarantined => 'q',
    }
}

fn status_counts(statuses: &[Status]) -> (usize, usize, usize, usize) {
    let mut undecided = 0;
    let mut pareto = 0;
    let mut dropped = 0;
    let mut quarantined = 0;
    for s in statuses {
        match s {
            Status::Undecided => undecided += 1,
            Status::Pareto => pareto += 1,
            Status::Dropped => dropped += 1,
            Status::Quarantined => quarantined += 1,
        }
    }
    (undecided, pareto, dropped, quarantined)
}

/// How the loop reaches the tool: an exclusive sequential oracle (the
/// classic entry points) or a shared thread-safe front end the wave
/// executor can fan out over. Both produce identical results — the
/// concurrent variant only buys wall-clock overlap.
enum OracleRef<'a> {
    Serial(&'a mut dyn QorOracle),
    Concurrent(&'a dyn ConcurrentOracle),
}

impl<'a> OracleRef<'a> {
    fn evaluate_at(&mut self, index: usize, x: &[f64]) -> std::result::Result<Vec<f64>, EvalError> {
        match self {
            OracleRef::Serial(o) => o.evaluate_at(index, x),
            OracleRef::Concurrent(o) => o.evaluate_at(index, x),
        }
    }

    fn runs(&self) -> usize {
        match self {
            OracleRef::Serial(o) => o.runs(),
            OracleRef::Concurrent(o) => o.runs(),
        }
    }

    /// The shared handle when true fan-out is possible. Returns the
    /// full-lifetime reference, so a wave can evaluate through it while
    /// the driver is otherwise untouched until the merge.
    fn concurrent_handle(&self) -> Option<&'a dyn ConcurrentOracle> {
        match self {
            OracleRef::Serial(_) => None,
            OracleRef::Concurrent(o) => Some(*o),
        }
    }
}

/// Serves oracle attempts — replaying a checkpoint's evaluation log while
/// it lasts, live afterwards — and records every outcome (the log IS the
/// resume script, so failures are recorded too).
struct EvalDriver<'a> {
    oracle: OracleRef<'a>,
    replay: VecDeque<EvalRecord>,
    replayed_runs: usize,
    log: Vec<EvalRecord>,
}

impl EvalDriver<'_> {
    fn replaying(&self) -> bool {
        !self.replay.is_empty()
    }

    /// Total tool runs: replayed attempts plus the live oracle's counter.
    /// Matches the original run's `oracle.runs()` when resume was handed
    /// a fresh oracle.
    fn runs(&self) -> usize {
        self.replayed_runs + self.oracle.runs()
    }

    /// One attempt for `candidate`. Returns the (sanitized) outcome and
    /// whether it came from the replay log. Non-transient errors
    /// (out-of-range index) abort the run instead of being logged.
    fn attempt(
        &mut self,
        candidate: usize,
        x: &[f64],
        sanitize: &dyn Fn(&[f64]) -> std::result::Result<(), String>,
    ) -> Result<(std::result::Result<Vec<f64>, EvalError>, bool)> {
        let (outcome, replayed) = if let Some(rec) = self.replay.pop_front() {
            if rec.candidate != candidate {
                return Err(TunerError::Checkpoint {
                    reason: format!(
                        "replay divergence: log holds candidate {}, the run requested {}",
                        rec.candidate, candidate
                    ),
                });
            }
            self.replayed_runs += 1;
            let outcome = match rec.outcome {
                EvalOutcome::Accepted { qor } => Ok(qor),
                EvalOutcome::Failed { error } => Err(error),
            };
            (outcome, true)
        } else {
            let outcome = match self.oracle.evaluate_at(candidate, x) {
                Ok(y) => match sanitize(&y) {
                    Ok(()) => Ok(y),
                    Err(detail) => Err(EvalError::InvalidQor { detail }),
                },
                Err(e) => {
                    if !e.is_transient() {
                        return Err(TunerError::Evaluation(e));
                    }
                    Err(e)
                }
            };
            (outcome, false)
        };
        self.log.push(EvalRecord {
            candidate,
            outcome: match &outcome {
                Ok(qor) => EvalOutcome::Accepted { qor: qor.clone() },
                Err(error) => EvalOutcome::Failed {
                    error: error.clone(),
                },
            },
        });
        Ok((outcome, replayed))
    }

    /// Records a live outcome produced outside [`EvalDriver::attempt`]:
    /// concurrent wave workers evaluate without touching the driver, and
    /// the deterministic batch-order merge logs their results here.
    fn record_live(
        &mut self,
        candidate: usize,
        outcome: &std::result::Result<Vec<f64>, EvalError>,
    ) {
        self.log.push(EvalRecord {
            candidate,
            outcome: match outcome {
                Ok(qor) => EvalOutcome::Accepted { qor: qor.clone() },
                Err(error) => EvalOutcome::Failed {
                    error: error.clone(),
                },
            },
        });
    }
}

/// What `evaluate_with_retry` concluded for one candidate.
struct RetryOutcome {
    /// The accepted QoR, or `None` when the failure budget ran out.
    qor: Option<Vec<f64>>,
    /// Attempts consumed (≥ 1).
    attempts: usize,
    /// How many of those attempts failed.
    failures: usize,
    /// Whether the final attempt was served from the replay log (the
    /// budget aligns with checkpoint boundaries, so a retry sequence is
    /// replayed in full or not at all).
    replayed: bool,
}

/// Emits `WatchdogFired` directly before the `EvalFailed` it explains,
/// when (and only when) the failure is a watchdog-produced timeout — the
/// dedicated [`WATCHDOG_STAGE`] marker distinguishes it from real tool
/// timeouts, whose stages are flow-stage names. Like `EvalFailed`, the
/// event is created at the deterministic batch-order merge, so traces
/// stay worker-count-invariant; `elapsed_s` is the configured deadline,
/// not wall-clock.
fn emit_watchdog_fired(
    e: &EvalError,
    iteration: usize,
    candidate: usize,
    attempt: usize,
    emit: &mut dyn FnMut(Event),
) {
    if let EvalError::Timeout { stage, elapsed_s } = e {
        if stage == WATCHDOG_STAGE {
            emit(Event::WatchdogFired {
                iteration,
                candidate,
                attempt,
                deadline_s: *elapsed_s,
            });
        }
    }
}

/// Runs one candidate's evaluation with up to `max_eval_attempts`
/// attempts, sanitizing each result and emitting `EvalRetry`,
/// `EvalFailed`, `ToolEval`, and per-attempt `eval_attempt` span events
/// for live attempts (replayed attempts were already traced by the
/// original run, but their span IDs are still allocated so a resumed
/// run's IDs line up with the interrupted trace).
#[allow(clippy::too_many_arguments)]
fn evaluate_with_retry(
    driver: &mut EvalDriver<'_>,
    candidate: usize,
    x: &[f64],
    iteration: usize,
    config: &PpaTunerConfig,
    sanitize: &dyn Fn(&[f64]) -> std::result::Result<(), String>,
    enabled: bool,
    emit: &mut dyn FnMut(Event),
    tracer: &Tracer,
    parent: &OpenSpan,
) -> Result<RetryOutcome> {
    let mut failures = 0;
    let mut replayed = false;
    for attempt in 1..=config.max_eval_attempts {
        // Whether this attempt comes from the replay log is known before
        // `driver.attempt` runs: a replaying driver replays, a drained
        // one evaluates live.
        let live_attempt = enabled && !driver.replaying();
        if attempt > 1 && live_attempt {
            emit(Event::EvalRetry {
                iteration,
                candidate,
                attempt,
                backoff_s: config.retry_backoff_s(attempt),
            });
        }
        let span = tracer.open("eval_attempt", Some(parent));
        if live_attempt {
            emit(span.start_event());
        }
        let start = Instant::now();
        let (outcome, from_replay) = driver.attempt(candidate, x, sanitize)?;
        replayed = from_replay;
        match outcome {
            Ok(qor) => {
                if enabled && !from_replay {
                    emit(Event::ToolEval {
                        iteration,
                        candidate,
                        qor: qor.clone(),
                        duration_s: start.elapsed().as_secs_f64(),
                    });
                    emit(tracer.end_event(&span));
                }
                return Ok(RetryOutcome {
                    qor: Some(qor),
                    attempts: attempt,
                    failures,
                    replayed,
                });
            }
            Err(e) => {
                failures += 1;
                if enabled && !from_replay {
                    emit_watchdog_fired(&e, iteration, candidate, attempt, emit);
                    emit(Event::EvalFailed {
                        iteration,
                        candidate,
                        attempt,
                        kind: e.kind().to_string(),
                        detail: e.to_string(),
                    });
                    emit(tracer.end_event(&span));
                }
            }
        }
    }
    Ok(RetryOutcome {
        qor: None,
        attempts: config.max_eval_attempts,
        failures,
        replayed,
    })
}

/// Sanitization inputs of one evaluation wave, frozen at wave start.
///
/// Workers must not observe state that other members of the same wave
/// mutate (the merge updates regions and the observed span only after
/// the whole wave returns), so a member's outlier gate is identical no
/// matter which worker runs it or in what order — the root of
/// worker-count invariance.
struct WaveCtx<'a> {
    iteration: usize,
    /// The full (possibly pool-grown) candidate list, so workers can hand
    /// each member's coordinates to [`QorOracle::evaluate_at`].
    candidates: &'a [Vec<f64>],
    /// Established objective count (`None` only for the first
    /// initialization wave, before any QoR has been accepted).
    n_obj: Option<usize>,
    /// Outlier-gate inputs (`None` during initialization): all regions,
    /// the observed span, and the gate factor.
    gate: Option<(&'a [UncertaintyRegion], &'a ObservedSpan, f64)>,
}

impl WaveCtx<'_> {
    fn sanitize(&self, candidate: usize, y: &[f64]) -> std::result::Result<(), String> {
        sanitize_qor(
            y,
            self.n_obj,
            self.gate
                .map(|(regions, span, gate)| (&regions[candidate], span, gate)),
        )
    }
}

/// Raw per-attempt results of one batch member: what a wave worker
/// produces without touching the driver or the tracer. The deterministic
/// batch-order merge ([`merge_member`]) later turns them into span IDs,
/// events, and log records.
struct MemberOutcome {
    /// `(outcome, duration_s)` per attempt, in attempt order. Ends early
    /// on the first acceptance or non-transient error.
    attempts: Vec<(std::result::Result<Vec<f64>, EvalError>, f64)>,
}

/// Runs one member's full retry sequence against `eval` (live only; the
/// replay path never reaches this). The retry policy — sanitize accepted
/// QoR, retry transient failures up to the budget, stop on acceptance or
/// a non-transient error — matches [`evaluate_with_retry`] exactly.
fn member_attempts(
    mut eval: impl FnMut(usize) -> std::result::Result<Vec<f64>, EvalError>,
    candidate: usize,
    ctx: &WaveCtx<'_>,
    max_attempts: usize,
) -> MemberOutcome {
    let mut attempts = Vec::with_capacity(1);
    for _ in 0..max_attempts {
        let start = Instant::now();
        let outcome = match eval(candidate) {
            Ok(y) => match ctx.sanitize(candidate, &y) {
                Ok(()) => Ok(y),
                Err(detail) => Err(EvalError::InvalidQor { detail }),
            },
            Err(e) => Err(e),
        };
        let duration_s = start.elapsed().as_secs_f64();
        let stop = match &outcome {
            Ok(_) => true,
            Err(e) => !e.is_transient(),
        };
        attempts.push((outcome, duration_s));
        if stop {
            break;
        }
    }
    MemberOutcome { attempts }
}

/// Fans one wave out over `workers` threads sharing work through an
/// atomic cursor (work-stealing over batch positions). Workers only
/// *evaluate*; all outcome processing happens in the deterministic merge,
/// so completion order is irrelevant.
fn run_wave_parallel(
    oracle: &dyn ConcurrentOracle,
    members: &[usize],
    ctx: &WaveCtx<'_>,
    max_attempts: usize,
    workers: usize,
) -> Vec<MemberOutcome> {
    let slots: Vec<Mutex<Option<MemberOutcome>>> =
        members.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(members.len()) {
            s.spawn(|| loop {
                let pos = next.fetch_add(1, Ordering::Relaxed);
                let Some(&candidate) = members.get(pos) else {
                    break;
                };
                let out = member_attempts(
                    |i| oracle.evaluate_at(i, &ctx.candidates[i]),
                    candidate,
                    ctx,
                    max_attempts,
                );
                *slots[pos].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every wave slot is filled")
        })
        .collect()
}

/// Merges one member's raw attempt results into the run, in batch order:
/// allocates the per-attempt `eval_attempt` span IDs (late, at merge time
/// — so IDs match the sequential path and are worker-count independent),
/// emits the attempt events in the classic order, and appends the
/// outcomes to the driver's log. Event sequence and log contents are
/// bit-identical to [`evaluate_with_retry`] on the same outcomes.
#[allow(clippy::too_many_arguments)]
fn merge_member(
    driver: &mut EvalDriver<'_>,
    member: MemberOutcome,
    candidate: usize,
    iteration: usize,
    config: &PpaTunerConfig,
    enabled: bool,
    emit: &mut dyn FnMut(Event),
    tracer: &Tracer,
    parent: &OpenSpan,
) -> Result<RetryOutcome> {
    let mut failures = 0;
    for (k, (outcome, duration_s)) in member.attempts.into_iter().enumerate() {
        let attempt = k + 1;
        if attempt > 1 && enabled {
            emit(Event::EvalRetry {
                iteration,
                candidate,
                attempt,
                backoff_s: config.retry_backoff_s(attempt),
            });
        }
        let span = tracer.open("eval_attempt", Some(parent));
        if enabled {
            emit(span.start_event());
        }
        match outcome {
            Ok(qor) => {
                driver.record_live(candidate, &Ok(qor.clone()));
                if enabled {
                    emit(Event::ToolEval {
                        iteration,
                        candidate,
                        qor: qor.clone(),
                        duration_s,
                    });
                    emit(tracer.end_event(&span));
                }
                return Ok(RetryOutcome {
                    qor: Some(qor),
                    attempts: attempt,
                    failures,
                    replayed: false,
                });
            }
            Err(e) => {
                if !e.is_transient() {
                    // Matches the serial driver: a caller bug aborts the
                    // run without being logged as an attempt.
                    return Err(TunerError::Evaluation(e));
                }
                driver.record_live(candidate, &Err(e.clone()));
                failures += 1;
                if enabled {
                    emit_watchdog_fired(&e, iteration, candidate, attempt, emit);
                    emit(Event::EvalFailed {
                        iteration,
                        candidate,
                        attempt,
                        kind: e.kind().to_string(),
                        detail: e.to_string(),
                    });
                    emit(tracer.end_event(&span));
                }
            }
        }
    }
    Ok(RetryOutcome {
        qor: None,
        attempts: config.max_eval_attempts,
        failures,
        replayed: false,
    })
}

/// Evaluates one selection wave (a batch of distinct candidates) and
/// returns each member's [`RetryOutcome`], in batch order.
///
/// - **Replay** (resume): members are served sequentially from the
///   checkpoint log via the classic retry path. Checkpoints land at
///   iteration — hence whole-batch — boundaries, so a wave is replayed in
///   full or not at all.
/// - **Live**: members run their full retry sequences against frozen
///   sanitization inputs ([`WaveCtx`]) — in parallel through a
///   [`ConcurrentOracle`] when `eval_workers > 1`, sequentially otherwise
///   — and the results are merged in batch order. Outcomes, events, span
///   IDs, and the evaluation log are identical at any worker count.
///
/// At `batch_size > 1` a `batch_eval` span (child of `parent`) wraps the
/// member `eval_attempt` spans; at 1 the wave is a single member hanging
/// directly under `parent`, byte-identical to the historical trace.
#[allow(clippy::too_many_arguments)]
fn evaluate_wave(
    driver: &mut EvalDriver<'_>,
    members: &[usize],
    ctx: &WaveCtx<'_>,
    config: &PpaTunerConfig,
    enabled: bool,
    emit: &mut dyn FnMut(Event),
    tracer: &Tracer,
    parent: &OpenSpan,
) -> Result<Vec<RetryOutcome>> {
    let batch_span = if config.batch_size > 1 {
        Some(tracer.open("batch_eval", Some(parent)))
    } else {
        None
    };
    let attempt_parent = batch_span.as_ref().unwrap_or(parent);
    if driver.replaying() {
        // Per-attempt liveness gating inside `evaluate_with_retry`
        // handles the boundary exactly like the classic path.
        let mut outs = Vec::with_capacity(members.len());
        for &candidate in members {
            let sanitize = |y: &[f64]| ctx.sanitize(candidate, y);
            outs.push(evaluate_with_retry(
                driver,
                candidate,
                &ctx.candidates[candidate],
                ctx.iteration,
                config,
                &sanitize,
                enabled,
                emit,
                tracer,
                attempt_parent,
            )?);
        }
        return Ok(outs);
    }
    if enabled {
        if let Some(span) = &batch_span {
            emit(span.start_event());
        }
    }
    let outcomes: Vec<MemberOutcome> = match driver.oracle.concurrent_handle() {
        Some(oracle) if config.eval_workers > 1 && members.len() > 1 => run_wave_parallel(
            oracle,
            members,
            ctx,
            config.max_eval_attempts,
            config.eval_workers,
        ),
        _ => members
            .iter()
            .map(|&candidate| {
                member_attempts(
                    |i| driver.oracle.evaluate_at(i, &ctx.candidates[i]),
                    candidate,
                    ctx,
                    config.max_eval_attempts,
                )
            })
            .collect(),
    };
    let mut outs = Vec::with_capacity(members.len());
    for (&candidate, member) in members.iter().zip(outcomes) {
        outs.push(merge_member(
            driver,
            member,
            candidate,
            ctx.iteration,
            config,
            enabled,
            emit,
            tracer,
            attempt_parent,
        )?);
    }
    if enabled {
        if let Some(span) = &batch_span {
            emit(tracer.end_event(span));
        }
    }
    Ok(outs)
}

/// Running per-objective `[min, max]` of accepted observations, the span
/// floor of the outlier gate.
struct ObservedSpan {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl ObservedSpan {
    fn new(n_obj: usize) -> Self {
        ObservedSpan {
            lo: vec![f64::INFINITY; n_obj],
            hi: vec![f64::NEG_INFINITY; n_obj],
        }
    }

    fn absorb(&mut self, y: &[f64]) {
        for (k, &v) in y.iter().enumerate() {
            self.lo[k] = self.lo[k].min(v);
            self.hi[k] = self.hi[k].max(v);
        }
    }

    /// The observed span of objective `k` (0 until two distinct values).
    fn span(&self, k: usize) -> f64 {
        let s = self.hi[k] - self.lo[k];
        if s.is_finite() {
            s.max(0.0)
        } else {
            0.0
        }
    }

    /// An absolute floor so a zero-width gate can never form: tied to the
    /// magnitude of observed values.
    fn magnitude(&self, k: usize) -> f64 {
        if self.hi[k].is_finite() {
            self.hi[k].abs().max(self.lo[k].abs()).max(1.0)
        } else {
            1.0
        }
    }
}

/// Validates a QoR vector before it enters the model: dimension,
/// finiteness, and (when a region is supplied) the gross-outlier gate.
///
/// The gate widens the candidate's current uncertainty interval per
/// objective by `gate × max(region width, observed span, tiny·magnitude)`
/// — generous enough that genuine observations never trip it (the span of
/// everything seen so far dwarfs any honest prediction error), while
/// unit-mixed-up or corrupted values land orders of magnitude outside.
fn sanitize_qor(
    y: &[f64],
    n_obj: Option<usize>,
    gate: Option<(&UncertaintyRegion, &ObservedSpan, f64)>,
) -> std::result::Result<(), String> {
    match n_obj {
        Some(m) => {
            if y.len() != m {
                return Err(format!("QoR dimension {} != expected {m}", y.len()));
            }
        }
        None => {
            if y.is_empty() {
                return Err("empty QoR vector".into());
            }
        }
    }
    if let Some(k) = y.iter().position(|v| !v.is_finite()) {
        return Err(format!("non-finite value {} at objective {k}", y[k]));
    }
    if let Some((region, span, factor)) = gate {
        let lo = region.optimistic();
        let hi = region.pessimistic();
        for (k, &v) in y.iter().enumerate() {
            if !(lo[k].is_finite() && hi[k].is_finite()) {
                continue; // still unbounded: no basis for an outlier call
            }
            let scale = (hi[k] - lo[k])
                .max(span.span(k))
                .max(1e-9 * span.magnitude(k));
            let allow = factor * scale;
            if v < lo[k] - allow || v > hi[k] + allow {
                return Err(format!(
                    "objective {k} value {v} is a gross outlier vs region [{}, {}]",
                    lo[k], hi[k]
                ));
            }
        }
    }
    Ok(())
}

/// Recovers the checkpoint the resume entry points start from, surfacing
/// scan-back recoveries (chain stores skipping torn/corrupt entries) as a
/// `RecoveryScan` trace event. Clean recoveries emit nothing, so existing
/// resume traces stay byte-identical.
fn recover_checkpoint(
    store: &dyn CheckpointStore,
    observer: &dyn Observer,
) -> Result<Option<Checkpoint>> {
    let recovery = store.recover().map_err(|e| TunerError::Checkpoint {
        reason: e.to_string(),
    })?;
    if recovery.skipped > 0 && observer.enabled() {
        observer.emit(&Event::RecoveryScan {
            scanned: recovery.scanned,
            skipped: recovery.skipped,
            next_iteration: recovery.checkpoint.as_ref().map(|c| c.next_iteration),
        });
    }
    Ok(recovery.checkpoint)
}

/// Compares the state replay re-derived against the checkpoint's
/// snapshot; any divergence means the checkpoint does not belong to this
/// run (or determinism broke) and live evaluation must not proceed.
#[allow(clippy::too_many_arguments)]
fn verify_resumed_state(
    t: usize,
    next_iteration: usize,
    snapshot: &StateSnapshot,
    statuses: &[Status],
    evaluated: usize,
    runs: usize,
    rng: &StdRng,
    delta: &[f64],
    degraded_fits: usize,
) -> Result<()> {
    let status_string: String = statuses.iter().map(status_char).collect();
    let mismatch = if t != next_iteration {
        Some(format!(
            "replay drained at iteration {t}, checkpoint expected {next_iteration}"
        ))
    } else if status_string != snapshot.statuses {
        Some("candidate statuses diverged from the checkpoint snapshot".into())
    } else if evaluated != snapshot.evaluated {
        Some(format!(
            "replay produced {evaluated} observations, checkpoint recorded {}",
            snapshot.evaluated
        ))
    } else if runs != snapshot.runs {
        Some(format!(
            "replay produced {runs} tool runs, checkpoint recorded {} \
             (was the oracle fresh?)",
            snapshot.runs
        ))
    } else if rng.state().to_vec() != snapshot.rng_state {
        Some("RNG state diverged from the checkpoint snapshot".into())
    } else if delta != snapshot.delta {
        Some("δ thresholds diverged from the checkpoint snapshot".into())
    } else if degraded_fits != snapshot.degraded_fits {
        Some(format!(
            "replay produced {degraded_fits} degraded fits, checkpoint recorded {} \
             (was the fit-fault plan re-armed?)",
            snapshot.degraded_fits
        ))
    } else {
        None
    };
    match mismatch {
        Some(reason) => Err(TunerError::Checkpoint { reason }),
        None => Ok(()),
    }
}

/// A replay that diverges before the drain boundary surfaces as a bare
/// candidate mismatch, even when the real culprit is a forgotten fault
/// plan: clean refits produce different models, which select different
/// candidates. When the checkpoint recorded degraded fits, say so — the
/// operator needs to re-arm the plan, not debug the selection.
fn explain_degraded_divergence(err: TunerError, snapshot_degraded: usize) -> TunerError {
    match err {
        TunerError::Checkpoint { reason }
            if snapshot_degraded > 0 && reason.starts_with("replay divergence") =>
        {
            TunerError::Checkpoint {
                reason: format!(
                    "{reason}; the checkpoint records {snapshot_degraded} degraded fits, \
                     which replay re-derives only when the original fault plan is re-armed"
                ),
            }
        }
        other => other,
    }
}

/// Timing and bookkeeping of one finished iteration, bundled so `record`
/// stays below the argument-count lint.
struct IterationOutcome {
    iteration: usize,
    runs: usize,
    duration_s: f64,
    gp_fit_s: f64,
    predict_s: f64,
}

/// Appends the iteration to the trajectory and emits `IterationEnd` (with
/// the incremental hypervolume of the evaluated set) to the observer.
/// `live` is false while a resumed run is replaying already-traced
/// iterations: history is still rebuilt, events are not re-emitted.
fn record(
    observer: &dyn Observer,
    live: bool,
    history: &mut Vec<IterationRecord>,
    counts: (usize, usize, usize, usize),
    evaluated: &[(usize, Vec<f64>)],
    hv_reference: &[f64],
    ctx: IterationOutcome,
) {
    let (undecided, pareto, dropped, quarantined) = counts;
    history.push(IterationRecord {
        iteration: ctx.iteration,
        undecided,
        pareto,
        dropped,
        quarantined,
        runs: ctx.runs,
        duration_s: ctx.duration_s,
        gp_fit_s: ctx.gp_fit_s,
        predict_s: ctx.predict_s,
    });
    if live && observer.enabled() {
        let pts: Vec<Vec<f64>> = evaluated.iter().map(|(_, y)| y.clone()).collect();
        let hypervolume = pareto::hypervolume::hypervolume(&pts, hv_reference).unwrap_or(0.0);
        observer.emit(&Event::IterationEnd {
            iteration: ctx.iteration,
            runs: ctx.runs,
            pareto,
            dropped,
            undecided,
            hypervolume,
            duration_s: ctx.duration_s,
            gp_fit_s: ctx.gp_fit_s,
            predict_s: ctx.predict_s,
        });
    }
}

/// The prediction back end of one iteration: every objective's exact
/// transfer GP, or its subset-of-data predictor once the training set
/// outgrows the configured threshold. Both expose the same blocked
/// latent-batch call, so the box-prediction plumbing is path-agnostic.
enum Surrogates<'a> {
    Exact(&'a [TransferGp]),
    Subset(&'a [SubsetPredictor]),
}

impl Surrogates<'_> {
    fn len(&self) -> usize {
        match self {
            Surrogates::Exact(models) => models.len(),
            Surrogates::Subset(preds) => preds.len(),
        }
    }

    /// One prediction list per objective, each parallel to `queries`.
    ///
    /// The exact path threads the per-objective [`PredictCache`]s through
    /// (keyed by the stable candidate indices in `ids`), so warm sweeps
    /// pay only the conditioning tail per cached candidate. The subset
    /// path resamples its training subset every iteration — a prefix
    /// cache could never hit — so it always predicts from scratch,
    /// data-parallel across `workers`.
    fn predict_latent_batch(
        &self,
        ids: &[u64],
        queries: &[Vec<f64>],
        block: usize,
        workers: usize,
        caches: &mut [PredictCache],
    ) -> gp::Result<Vec<Vec<(f64, f64)>>> {
        match self {
            Surrogates::Exact(models) => models
                .iter()
                .zip(caches)
                .map(|(m, cache)| {
                    m.predict_latent_batch_cached(ids, queries, block, workers, cache)
                })
                .collect(),
            Surrogates::Subset(preds) => preds
                .iter()
                .map(|p| p.predict_latent_batch_par(queries, block, workers))
                .collect(),
        }
    }
}

/// Predicts `[μ − √τ·σ, μ + √τ·σ]` boxes for the active candidates via
/// the cached/data-parallel batch path of the active surrogate (exact or
/// subset-of-data). The gp layer fans `predict_block`-sized chunks over
/// `workers` scoped threads and serves repeat candidates from the
/// per-objective caches.
///
/// Batch prediction is bit-identical however the queries are chunked,
/// blocked, or cached, so the boxes — and everything downstream of them —
/// do not depend on the worker count, block size, or cache state.
fn predict_boxes(
    surrogates: &Surrogates<'_>,
    candidates: &[Vec<f64>],
    active: &[usize],
    tau: f64,
    workers: usize,
    block: usize,
    caches: &mut [PredictCache],
) -> Result<Vec<(Vec<f64>, Vec<f64>)>> {
    let n_obj = surrogates.len();
    let scale = tau.sqrt();
    let queries: Vec<Vec<f64>> = active.iter().map(|&i| candidates[i].clone()).collect();
    // Candidate indices are stable (pool refinement only appends), so
    // they double as cache keys across iterations.
    let ids: Vec<u64> = active.iter().map(|&i| i as u64).collect();
    let preds: Vec<Vec<(f64, f64)>> =
        surrogates.predict_latent_batch(&ids, &queries, block, workers, caches)?;

    let mut out = Vec::with_capacity(queries.len());
    for q in 0..queries.len() {
        let mut lo = Vec::with_capacity(n_obj);
        let mut hi = Vec::with_capacity(n_obj);
        for preds_k in &preds {
            let (mu, var) = preds_k[q];
            let sd = var.max(0.0).sqrt();
            lo.push(mu - scale * sd);
            hi.push(mu + scale * sd);
        }
        out.push((lo, hi));
    }
    Ok(out)
}

/// Squared Euclidean distance (local helper; avoids a linalg dependency).
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecOracle;

    /// A deterministic toy landscape: 1-D configurations, two objectives
    /// with a clean convex trade-off plus one dominated "bump" region.
    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let truth: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| {
                let x = p[0];
                let bump = if (0.4..0.6).contains(&x) { 0.3 } else { 0.0 };
                vec![x + bump + 0.05, (1.0 - x).powi(2) + bump + 0.05]
            })
            .collect();
        (candidates, truth)
    }

    fn shifted_source(candidates: &[Vec<f64>], truth: &[Vec<f64>]) -> SourceData {
        SourceData::new(
            candidates.to_vec(),
            truth
                .iter()
                .map(|y| y.iter().map(|v| v * 1.1 + 0.02).collect())
                .collect(),
        )
        .unwrap()
    }

    /// A configuration that keeps candidates undecided for several
    /// iterations (small initial design, tight delta), so checkpoint and
    /// resume tests have real iteration boundaries to cut at.
    fn slow_config() -> PpaTunerConfig {
        PpaTunerConfig {
            initial_samples: 5,
            delta_rel: 0.01,
            seed: 2,
            ..quick_config()
        }
    }

    fn quick_config() -> PpaTunerConfig {
        PpaTunerConfig {
            initial_samples: 8,
            max_iterations: 40,
            refit_every: 10,
            fit_budget: FitBudget {
                restarts: 1,
                evals_per_restart: 60,
            },
            threads: 2,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_true_front_on_toy_problem() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth.clone());
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();

        assert!(!result.pareto_indices.is_empty());
        // The predicted set should stay close to the true front: ADRS of
        // the predicted configurations' true values must be small.
        let golden: Vec<Vec<f64>> = pareto::front::pareto_front(&truth)
            .into_iter()
            .map(|i| truth[i].clone())
            .collect();
        let predicted: Vec<Vec<f64>> = result
            .pareto_indices
            .iter()
            .map(|&i| truth[i].clone())
            .collect();
        let adrs = pareto::metrics::adrs(&golden, &predicted).unwrap();
        assert!(adrs < 0.25, "adrs {adrs}");
    }

    #[test]
    fn uses_fewer_runs_than_exhaustive() {
        let (candidates, truth) = toy(60);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        assert!(
            result.runs < 60,
            "tuner used {} runs on 60 candidates",
            result.runs
        );
        assert_eq!(result.runs, result.evaluated.len());
    }

    #[test]
    fn works_without_source_data() {
        let (candidates, truth) = toy(30);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        assert!(!result.pareto_indices.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(quick_config())
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.pareto_indices, b.pareto_indices);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (candidates, truth) = toy(80);
        let source = shifted_source(&candidates, &truth);
        let run = |threads: usize| {
            let mut oracle = VecOracle::new(truth.clone());
            let cfg = PpaTunerConfig {
                threads,
                fit_budget: FitBudget {
                    restarts: 3,
                    evals_per_restart: 40,
                },
                ..quick_config()
            };
            PpaTuner::new(cfg)
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let other = run(threads);
            assert_eq!(
                base.pareto_indices, other.pareto_indices,
                "threads={threads}"
            );
            assert_eq!(base.runs, other.runs, "threads={threads}");
            assert_eq!(base.iterations, other.iterations, "threads={threads}");
            assert_eq!(base.evaluated, other.evaluated, "threads={threads}");
        }
    }

    #[test]
    fn history_is_monotone_in_decisions() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        for w in result.history.windows(2) {
            assert!(w[1].dropped >= w[0].dropped, "drops cannot be undone");
            assert!(w[1].runs >= w[0].runs);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]]);
        let tuner = PpaTuner::new(quick_config());
        assert!(matches!(
            tuner.run(&SourceData::empty(), &[], &mut oracle),
            Err(TunerError::InvalidInput { .. })
        ));
        let bad_cfg = PpaTunerConfig {
            tau: -1.0,
            ..quick_config()
        };
        assert!(matches!(
            PpaTuner::new(bad_cfg).run(&SourceData::empty(), &[vec![0.0]], &mut oracle),
            Err(TunerError::InvalidConfig { name: "tau", .. })
        ));
        let bad_init = PpaTunerConfig {
            initial_samples: 1,
            ..quick_config()
        };
        assert!(matches!(
            PpaTuner::new(bad_init).run(&SourceData::empty(), &[vec![0.0]], &mut oracle),
            Err(TunerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn source_data_validation() {
        assert!(SourceData::new(vec![vec![0.0]], vec![]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![]]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![1.0, 2.0]]).is_ok());
        let s = SourceData::new(
            vec![vec![0.0], vec![1.0]],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.objectives(), Some(2));
    }

    #[test]
    fn result_serializes_with_timing_fields() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        for rec in &result.history {
            assert!(rec.duration_s >= 0.0);
            assert!(rec.gp_fit_s >= 0.0);
            assert!(rec.gp_fit_s <= rec.duration_s + 1e-9);
        }
        let json = result.to_json();
        assert!(json.contains("\"pareto_indices\""));
        assert!(json.contains("\"gp_fit_s\""));
        let back: TuneResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pareto_indices, result.pareto_indices);
        assert_eq!(back.history.len(), result.history.len());
    }

    #[test]
    fn observed_run_emits_consistent_trace() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert_eq!(sink.count("RunStart"), 1);
        assert_eq!(sink.count("RunEnd"), 1);
        assert_eq!(sink.count("IterationEnd"), result.history.len());
        // Every tool run appears in the trace.
        assert_eq!(
            sink.count("ToolEval"),
            result.runs + result.verification_runs
        );
        // One GpFit per objective per iteration.
        assert_eq!(sink.count("GpFit"), 2 * result.iterations);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut o1 = VecOracle::new(truth.clone());
        let plain = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut o1)
            .unwrap();
        let mut o2 = VecOracle::new(truth);
        let sink = obs::RecordingSink::new();
        let observed = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut o2, &sink)
            .unwrap();
        assert_eq!(plain.pareto_indices, observed.pareto_indices);
        assert_eq!(plain.runs, observed.runs);
    }

    // ---------------------------------------------- fault tolerance

    use crate::checkpoint::{CheckpointError, MemoryCheckpointStore};
    use crate::oracle::{CountingOracle, FallibleOracle};
    use std::cell::RefCell;
    use std::collections::HashMap;

    /// Store that also keeps every checkpoint ever saved, so tests can
    /// resume from an arbitrary earlier iteration (simulating a crash at
    /// that point).
    #[derive(Default)]
    struct CaptureStore {
        inner: MemoryCheckpointStore,
        all: RefCell<Vec<Checkpoint>>,
    }

    impl CheckpointStore for CaptureStore {
        fn save(&self, c: &Checkpoint) -> std::result::Result<(), CheckpointError> {
            self.all.borrow_mut().push(c.clone());
            self.inner.save(c)
        }

        fn load(&self) -> std::result::Result<Option<Checkpoint>, CheckpointError> {
            self.inner.load()
        }
    }

    /// Semantic equality of two results: everything except wall-clock
    /// timing fields.
    fn assert_same_outcome(a: &TuneResult, b: &TuneResult) {
        assert_eq!(a.pareto_indices, b.pareto_indices);
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.verification_runs, b.verification_runs);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.quarantined, b.quarantined);
        assert_eq!(a.eval_failures, b.eval_failures);
        assert_eq!(a.eval_retries, b.eval_retries);
        assert_eq!(a.degraded_fits, b.degraded_fits);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(
                (
                    x.iteration,
                    x.undecided,
                    x.pareto,
                    x.dropped,
                    x.quarantined,
                    x.runs
                ),
                (
                    y.iteration,
                    y.undecided,
                    y.pareto,
                    y.dropped,
                    y.quarantined,
                    y.runs
                ),
            );
        }
    }

    #[test]
    fn flaky_evaluations_are_retried_transparently() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut clean_oracle = VecOracle::new(truth.clone());
        let clean = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut clean_oracle)
            .unwrap();

        // Every candidate's first attempt crashes; retries succeed.
        let mut seen: HashMap<usize, usize> = HashMap::new();
        let flaky_truth = truth.clone();
        let mut oracle = FallibleOracle::new(move |i: usize| {
            let attempts = seen.entry(i).or_insert(0);
            *attempts += 1;
            if *attempts == 1 {
                Err(EvalError::Crash {
                    detail: "flaky license".into(),
                })
            } else {
                Ok(flaky_truth[i].clone())
            }
        });
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();

        // Same search, same answer — failures cost retries, nothing else.
        assert_eq!(result.pareto_indices, clean.pareto_indices);
        assert_eq!(result.evaluated, clean.evaluated);
        assert_eq!(result.iterations, clean.iterations);
        assert!(result.quarantined.is_empty());
        assert!(result.eval_failures > 0);
        assert_eq!(result.eval_failures, result.eval_retries);
        // Every attempt (failed or not) is a tool run.
        assert_eq!(
            result.runs + result.verification_runs,
            clean.runs + clean.verification_runs + result.eval_failures
        );
    }

    #[test]
    fn always_failing_candidates_are_quarantined_not_fatal() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let broken_truth = truth.clone();
        let mut oracle = FallibleOracle::new(move |i: usize| {
            if i % 2 == 1 {
                Err(EvalError::Timeout {
                    stage: "route".into(),
                    elapsed_s: 9.9,
                })
            } else {
                Ok(broken_truth[i].clone())
            }
        });
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();

        assert!(!result.quarantined.is_empty(), "odd candidates must trip");
        assert!(result.quarantined.iter().all(|i| i % 2 == 1));
        assert!(result.evaluated.iter().all(|(i, _)| i % 2 == 0));
        assert!(result.pareto_indices.iter().all(|i| i % 2 == 0));
        assert!(!result.pareto_indices.is_empty());
        // Budget: every quarantine burned the full attempt budget.
        let budget = quick_config().max_eval_attempts;
        assert!(result.eval_failures >= budget * result.quarantined.len());
        // Trace accounting: every attempt is exactly one ToolEval or one
        // EvalFailed.
        assert_eq!(
            sink.count("ToolEval") + sink.count("EvalFailed"),
            result.runs + result.verification_runs
        );
        assert_eq!(sink.count("CandidateQuarantined"), result.quarantined.len());
        assert_eq!(sink.count("EvalFailed"), result.eval_failures);
    }

    #[test]
    fn non_finite_qor_is_rejected_before_entering_the_model() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let bad_truth = truth.clone();
        let mut oracle = CountingOracle::new(move |i: usize| {
            if i % 2 == 1 {
                vec![f64::NAN, f64::INFINITY]
            } else {
                bad_truth[i].clone()
            }
        });
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        assert!(result
            .evaluated
            .iter()
            .all(|(_, y)| y.iter().all(|v| v.is_finite())));
        assert!(!result.quarantined.is_empty());
        assert!(result.quarantined.iter().all(|i| i % 2 == 1));
        assert!(result.pareto_indices.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn out_of_range_index_aborts_instead_of_retrying() {
        let (candidates, _) = toy(20);
        // Table shorter than the candidate set: indexing past it is a
        // caller bug, not a transient tool failure.
        let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]; 5]);
        let err = PpaTuner::new(quick_config())
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap_err();
        match err {
            TunerError::Evaluation(EvalError::OutOfRange { len: 5, .. }) => {}
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut o1 = VecOracle::new(truth.clone());
        let plain = PpaTuner::new(slow_config())
            .run(&source, &candidates, &mut o1)
            .unwrap();
        let store = CaptureStore::default();
        let mut o2 = VecOracle::new(truth);
        let checkpointed = PpaTuner::new(slow_config())
            .run_checkpointed(&source, &candidates, &mut o2, &NULL_SINK, &store)
            .unwrap();
        assert_same_outcome(&plain, &checkpointed);
        // One checkpoint per iteration that evaluated something (the
        // final, fully-decided iteration evaluates nothing and is not a
        // valid replay boundary).
        let all = store.all.borrow();
        assert!(
            all.len() >= 2,
            "want several checkpoints, got {}",
            all.len()
        );
        assert!(all.len() <= checkpointed.iterations);
        assert!(all
            .windows(2)
            .all(|w| w[0].next_iteration < w[1].next_iteration));
        assert!(all.iter().all(|c| c.version == CHECKPOINT_VERSION));
    }

    #[test]
    fn resume_from_any_iteration_reproduces_the_full_run() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let store = CaptureStore::default();
        let mut oracle = VecOracle::new(truth.clone());
        let full = PpaTuner::new(slow_config())
            .run_checkpointed(&source, &candidates, &mut oracle, &NULL_SINK, &store)
            .unwrap();
        let all = store.all.borrow();
        assert!(all.len() >= 2, "need at least two checkpoints to sample");
        // Resume from the first, a middle, and the last checkpoint — as
        // if the process had died right after each was written.
        for k in [0, all.len() / 2, all.len() - 1] {
            let crash_point = MemoryCheckpointStore::new();
            crash_point.put(all[k].clone());
            let mut fresh = VecOracle::new(truth.clone());
            let resumed = PpaTuner::new(slow_config())
                .resume(&source, &candidates, &mut fresh, &NULL_SINK, &crash_point)
                .unwrap();
            assert_same_outcome(&full, &resumed);
            // Resume kept checkpointing past the crash point, ending on
            // the same final boundary as the uninterrupted run.
            let latest = crash_point.latest().unwrap();
            assert_eq!(latest.next_iteration, all.last().unwrap().next_iteration);
        }
    }

    #[test]
    fn resume_with_empty_store_is_a_fresh_run() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut o1 = VecOracle::new(truth.clone());
        let plain = PpaTuner::new(slow_config())
            .run(&source, &candidates, &mut o1)
            .unwrap();
        let store = MemoryCheckpointStore::new();
        let mut o2 = VecOracle::new(truth);
        let resumed = PpaTuner::new(slow_config())
            .resume(&source, &candidates, &mut o2, &NULL_SINK, &store)
            .unwrap();
        assert_same_outcome(&plain, &resumed);
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let store = CaptureStore::default();
        let mut oracle = VecOracle::new(truth.clone());
        PpaTuner::new(slow_config())
            .run_checkpointed(&source, &candidates, &mut oracle, &NULL_SINK, &store)
            .unwrap();
        let ckpt = store.all.borrow()[0].clone();
        let foreign = MemoryCheckpointStore::new();
        foreign.put(ckpt);
        // Different seed => different run: must refuse, not diverge.
        let other_config = PpaTunerConfig {
            seed: 8,
            ..slow_config()
        };
        let mut fresh = VecOracle::new(truth);
        let err = PpaTuner::new(other_config)
            .resume(&source, &candidates, &mut fresh, &NULL_SINK, &foreign)
            .unwrap_err();
        assert!(matches!(err, TunerError::Checkpoint { .. }), "{err:?}");
    }

    #[test]
    fn resumed_trace_continues_without_duplicating_the_prefix() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let store = CaptureStore::default();
        let mut oracle = VecOracle::new(truth.clone());
        let prefix_sink = obs::RecordingSink::new();
        let full = PpaTuner::new(slow_config())
            .run_checkpointed(&source, &candidates, &mut oracle, &prefix_sink, &store)
            .unwrap();
        let mid = store.all.borrow()[store.all.borrow().len() / 2].clone();
        let crash_point = MemoryCheckpointStore::new();
        let mid_iteration = mid.next_iteration;
        crash_point.put(mid);
        let sink = obs::RecordingSink::new();
        let mut fresh = VecOracle::new(truth);
        let resumed = PpaTuner::new(slow_config())
            .resume(&source, &candidates, &mut fresh, &sink, &crash_point)
            .unwrap();
        assert_same_outcome(&full, &resumed);
        // No second RunStart, and the replayed iterations stay silent.
        assert_eq!(sink.count("RunStart"), 0);
        assert_eq!(sink.count("RunEnd"), 1);
        assert_eq!(
            sink.count("IterationEnd"),
            full.history.len() - mid_iteration
        );
    }

    #[test]
    fn source_data_rejects_non_finite_values() {
        assert!(SourceData::new(vec![vec![f64::NAN]], vec![vec![1.0]]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![f64::INFINITY]]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![f64::NEG_INFINITY]]).is_err());
    }

    #[test]
    fn rejects_non_finite_candidates() {
        let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]; 4]);
        let err = PpaTuner::new(slow_config())
            .run(
                &SourceData::empty(),
                &[vec![0.0], vec![f64::NAN], vec![0.5], vec![1.0]],
                &mut oracle,
            )
            .unwrap_err();
        assert!(matches!(err, TunerError::InvalidInput { .. }), "{err:?}");
    }

    #[test]
    fn resilience_config_is_validated() {
        let bad = |cfg: PpaTunerConfig| {
            let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]; 4]);
            PpaTuner::new(cfg)
                .run(&SourceData::empty(), &[vec![0.0]], &mut oracle)
                .unwrap_err()
        };
        assert!(matches!(
            bad(PpaTunerConfig {
                max_eval_attempts: 0,
                ..slow_config()
            }),
            TunerError::InvalidConfig {
                name: "max_eval_attempts",
                ..
            }
        ));
        assert!(matches!(
            bad(PpaTunerConfig {
                backoff_base_s: f64::NAN,
                ..slow_config()
            }),
            TunerError::InvalidConfig {
                name: "backoff_base_s",
                ..
            }
        ));
        assert!(matches!(
            bad(PpaTunerConfig {
                outlier_gate: 0.0,
                ..quick_config()
            }),
            TunerError::InvalidConfig {
                name: "outlier_gate",
                ..
            }
        ));
        assert!(matches!(
            bad(PpaTunerConfig {
                degraded_fit_budget: 0,
                ..quick_config()
            }),
            TunerError::InvalidConfig {
                name: "degraded_fit_budget",
                ..
            }
        ));
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let cfg = PpaTunerConfig {
            backoff_base_s: 2.0,
            backoff_cap_s: 10.0,
            ..PpaTunerConfig::default()
        };
        assert_eq!(cfg.retry_backoff_s(2), 2.0);
        assert_eq!(cfg.retry_backoff_s(3), 4.0);
        assert_eq!(cfg.retry_backoff_s(4), 8.0);
        assert_eq!(cfg.retry_backoff_s(5), 10.0);
        assert_eq!(cfg.retry_backoff_s(50), 10.0);
    }

    // ---------------------------------------------- degraded-mode supervisor

    use crate::supervisor::{inject_fit_faults, FitFaultPlan};

    fn fault_plan(refit: f64, fallback: f64, condition: f64) -> FitFaultPlan {
        FitFaultPlan {
            seed: 11,
            refit_fail: refit,
            fallback_fail: fallback,
            condition_fail: condition,
        }
    }

    #[test]
    fn injected_refit_faults_degrade_to_data_only_refits() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        // Tight δ and a small seed set keep the loop alive past bootstrap,
        // so the refit fault sites are actually reached.
        let cfg = PpaTunerConfig {
            refit_every: 1,
            degraded_fit_budget: 64,
            initial_samples: 4,
            delta_rel: 0.001,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth.clone());
        let sink = obs::RecordingSink::new();
        let _guard = inject_fit_faults(fault_plan(1.0, 0.0, 0.0));
        let result = PpaTuner::new(cfg)
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert!(
            result.degraded_fits > 0,
            "every refit past bootstrap faults"
        );
        assert_eq!(sink.count("DegradedFit"), result.degraded_fits);
        // A DegradedFit replaces that objective's GpFit: per iteration,
        // each objective emits exactly one of the two.
        assert_eq!(
            sink.count("GpFit") + sink.count("DegradedFit"),
            2 * result.iterations
        );
        for e in &sink.events() {
            if let Event::DegradedFit {
                mode,
                cause,
                consecutive,
                ..
            } = e
            {
                assert_eq!(mode, "refit-reused-hypers");
                assert!(cause.contains("injected_fit_fault"), "{cause}");
                assert!(*consecutive >= 1);
            }
        }
        // The degraded run still classifies a front: data-only refits keep
        // absorbing fresh observations under the last-good hypers.
        assert!(!result.pareto_indices.is_empty());
    }

    #[test]
    fn failing_fallback_freezes_the_last_good_model() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let cfg = PpaTunerConfig {
            refit_every: 1,
            degraded_fit_budget: 64,
            initial_samples: 4,
            delta_rel: 0.001,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth.clone());
        let sink = obs::RecordingSink::new();
        let _guard = inject_fit_faults(fault_plan(1.0, 1.0, 0.0));
        let result = PpaTuner::new(cfg)
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert!(result.degraded_fits > 0);
        for e in &sink.events() {
            if let Event::DegradedFit { mode, .. } = e {
                assert_eq!(mode, "frozen");
            }
        }
    }

    #[test]
    fn condition_faults_freeze_on_the_warm_path() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let cfg = PpaTunerConfig {
            degraded_fit_budget: 64,
            initial_samples: 4,
            delta_rel: 0.001,
            ..quick_config() // refit_every = 10: iterations 1..9 are warm
        };
        let mut oracle = VecOracle::new(truth.clone());
        let sink = obs::RecordingSink::new();
        let _guard = inject_fit_faults(fault_plan(0.0, 0.0, 1.0));
        let result = PpaTuner::new(cfg)
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert!(result.degraded_fits > 0, "every warm extension faults");
        let mut saw_streak = 0usize;
        for e in &sink.events() {
            if let Event::DegradedFit {
                mode, consecutive, ..
            } = e
            {
                assert_eq!(mode, "frozen");
                saw_streak = saw_streak.max(*consecutive);
            }
        }
        assert!(
            saw_streak >= 2,
            "consecutive warm faults must grow the streak, saw {saw_streak}"
        );
    }

    #[test]
    fn persistent_degradation_exhausts_the_budget() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        // Tight δ keeps the loop running well past the budget's horizon.
        let cfg = PpaTunerConfig {
            refit_every: 1,
            degraded_fit_budget: 2,
            initial_samples: 4,
            delta_rel: 0.001,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth.clone());
        let _guard = inject_fit_faults(fault_plan(1.0, 0.0, 0.0));
        let err = PpaTuner::new(cfg)
            .run(&source, &candidates, &mut oracle)
            .unwrap_err();
        match err {
            TunerError::DegradationBudgetExhausted { consecutive, cause } => {
                assert_eq!(consecutive, 3, "budget 2 breaks on the third streak");
                assert!(cause.contains("injected_fit_fault"), "{cause}");
            }
            other => panic!("expected a budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn degraded_run_resumes_identically_when_the_plan_is_rearmed() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let cfg = PpaTunerConfig {
            refit_every: 2,
            degraded_fit_budget: 64,
            initial_samples: 4,
            delta_rel: 0.001,
            ..slow_config()
        };
        let plan = fault_plan(1.0, 0.0, 0.0);
        let store = CaptureStore::default();
        let full = {
            let _guard = inject_fit_faults(plan.clone());
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(cfg.clone())
                .run_checkpointed(&source, &candidates, &mut oracle, &NULL_SINK, &store)
                .unwrap()
        };
        assert!(full.degraded_fits > 0);
        let all = store.all.borrow();
        let mid = all
            .iter()
            .find(|c| c.snapshot.degraded_fits > 0)
            .expect("some checkpoint records a degraded fit")
            .clone();
        // Re-armed plan: replay re-derives the same degraded fits and the
        // resumed run finishes identically.
        let crash_point = MemoryCheckpointStore::new();
        crash_point.put(mid.clone());
        let resumed = {
            let _guard = inject_fit_faults(plan);
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(cfg.clone())
                .resume(&source, &candidates, &mut oracle, &NULL_SINK, &crash_point)
                .unwrap()
        };
        assert_same_outcome(&full, &resumed);
        // Forgotten plan: replay finds no faults, the degraded-fit counter
        // diverges from the snapshot, and the resume refuses to go live.
        let crash_point = MemoryCheckpointStore::new();
        crash_point.put(mid);
        let mut oracle = VecOracle::new(truth);
        let err = PpaTuner::new(cfg)
            .resume(&source, &candidates, &mut oracle, &NULL_SINK, &crash_point)
            .unwrap_err();
        match err {
            TunerError::Checkpoint { reason } => {
                assert!(reason.contains("degraded fits"), "{reason}");
                assert!(reason.contains("fault plan"), "{reason}");
            }
            other => panic!("expected a checkpoint refusal, got {other:?}"),
        }
    }

    #[test]
    fn clean_runs_report_zero_degraded_fits() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth.clone());
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert_eq!(result.degraded_fits, 0);
        assert_eq!(sink.count("DegradedFit"), 0);
        assert_eq!(sink.count("RecoveryScan"), 0);
        assert_eq!(sink.count("WatchdogFired"), 0);
    }

    // ---------------------------------------------- adaptive pool / SoD

    use crate::oracle::FnOracle;

    /// A 2-D landscape as a coordinate function (what a real PD tool is:
    /// QoR of an arbitrary configuration, not a table row). The front
    /// trades off along both axes, so a coarse seed grid leaves genuine
    /// uncertainty for the pool to refine into.
    fn toy_fn(x: &[f64]) -> Vec<f64> {
        let (a, b) = (x[0], x[1]);
        vec![
            a + 0.25 * b * b + 0.05,
            (1.0 - a).powi(2) + 0.25 * (1.0 - b).powi(2) + 0.05,
        ]
    }

    fn pool_config() -> PpaTunerConfig {
        PpaTunerConfig {
            adaptive_pool: true,
            pool_refine_scale: 0.03,
            pool_max_refines: 4,
            pool_max_size: 64,
            initial_samples: 5,
            delta_rel: 0.002,
            max_iterations: 12,
            seed: 3,
            ..quick_config()
        }
    }

    /// Coarse 3×3 seed grid plus a coordinate oracle: the pool's natural
    /// habitat.
    fn pool_setup() -> (Vec<Vec<f64>>, SourceData) {
        let candidates: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![((i % 3) as f64 + 0.5) / 3.0, ((i / 3) as f64 + 0.5) / 3.0])
            .collect();
        let source_x: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64 / 3.0, (i / 4) as f64 / 2.0])
            .collect();
        let source_y: Vec<Vec<f64>> = source_x
            .iter()
            .map(|p| toy_fn(p).iter().map(|v| v * 1.2 + 0.1).collect())
            .collect();
        (candidates, SourceData::new(source_x, source_y).unwrap())
    }

    #[test]
    fn adaptive_pool_grows_the_candidate_set() {
        let (candidates, source) = pool_setup();
        let mut oracle = FnOracle::new(toy_fn);
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(pool_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert!(!result.pareto_indices.is_empty());
        // One PoolRefine per iteration, and the pool actually grew: some
        // evaluated candidate carries an index past the initial eight.
        assert_eq!(sink.count("PoolRefine"), result.iterations);
        let grown = sink.events().iter().any(
            |e| matches!(e, Event::PoolRefine { pool_size, .. } if *pool_size > candidates.len()),
        );
        assert!(grown, "pool never grew past the seed grid");
        // Legacy events are still consistent on the grown run.
        assert_eq!(sink.count("GpFit"), 2 * result.iterations);
        assert_eq!(
            sink.count("ToolEval"),
            result.runs + result.verification_runs
        );
    }

    #[test]
    fn adaptive_pool_is_deterministic() {
        let (candidates, source) = pool_setup();
        let run = || {
            let mut oracle = FnOracle::new(toy_fn);
            PpaTuner::new(pool_config())
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.pareto_indices, b.pareto_indices);
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn adaptive_pool_composes_with_batch_and_resume() {
        let (candidates, source) = pool_setup();
        let cfg = PpaTunerConfig {
            batch_size: 2,
            ..pool_config()
        };
        let store = CaptureStore::default();
        let mut oracle = FnOracle::new(toy_fn);
        let full = PpaTuner::new(cfg.clone())
            .run_checkpointed(&source, &candidates, &mut oracle, &NULL_SINK, &store)
            .unwrap();
        let all = store.all.borrow();
        assert!(all.len() >= 2, "need checkpoints to resume from");
        // Resume from a middle checkpoint: pool growth replays
        // deterministically, so the resumed run matches the full one.
        let crash_point = MemoryCheckpointStore::new();
        crash_point.put(all[all.len() / 2].clone());
        let mut fresh = FnOracle::new(toy_fn);
        let resumed = PpaTuner::new(cfg)
            .resume(&source, &candidates, &mut fresh, &NULL_SINK, &crash_point)
            .unwrap();
        assert_same_outcome(&full, &resumed);
    }

    #[test]
    fn sod_path_stays_close_to_exact_path() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let exact = {
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(quick_config())
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        // Tiny threshold: the subset path is active from the first
        // iteration, with enough anchors to stay informative.
        let cfg = PpaTunerConfig {
            sod_threshold: 10,
            sod_subset: 48,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth.clone());
        let sink = obs::RecordingSink::new();
        let sod = PpaTuner::new(cfg)
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert_eq!(sink.count("PredictMode"), sod.iterations);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, Event::PredictMode { mode, .. } if mode == "subset")));
        // The subset posterior's boxes are conservative, not wrong: the
        // search still lands near the true front.
        let golden: Vec<Vec<f64>> = pareto::front::pareto_front(&truth)
            .into_iter()
            .map(|i| truth[i].clone())
            .collect();
        let predicted: Vec<Vec<f64>> = sod
            .pareto_indices
            .iter()
            .map(|&i| truth[i].clone())
            .collect();
        let adrs = pareto::metrics::adrs(&golden, &predicted).unwrap();
        assert!(adrs < 0.25, "adrs {adrs}");
        assert!(!exact.pareto_indices.is_empty());
    }

    #[test]
    fn iteration_counts_match_the_emitted_trace() {
        // Satellite regression for the counts-once refactor: rebuild each
        // iteration's counts from RegionSnapshot + same-iteration
        // quarantines and compare against IterationEnd — on a run where
        // quarantines actually perturb the counts mid-iteration.
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let broken_truth = truth.clone();
        let mut oracle = FallibleOracle::new(move |i: usize| {
            if i % 2 == 1 {
                Err(EvalError::Timeout {
                    stage: "route".into(),
                    elapsed_s: 9.9,
                })
            } else {
                Ok(broken_truth[i].clone())
            }
        });
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert!(!result.quarantined.is_empty(), "need mid-iteration churn");
        let events = sink.events();
        let mut checked = 0;
        for (end_pos, e) in events.iter().enumerate() {
            let Event::IterationEnd {
                iteration,
                pareto,
                dropped,
                undecided,
                ..
            } = e
            else {
                continue;
            };
            // The iteration's snapshot (classify-time counts), and the
            // quarantine transitions that happened between it and the
            // iteration end. Initialization quarantines are also tagged
            // iteration 0 but precede the snapshot, so position — not the
            // iteration field — is what separates them.
            let (snap_pos, snapshot) = events
                .iter()
                .enumerate()
                .find_map(|(pos, s)| match s {
                    Event::RegionSnapshot {
                        iteration: it,
                        statuses,
                        ..
                    } if it == iteration => Some((pos, statuses.clone())),
                    _ => None,
                })
                .expect("every iteration snapshots");
            let post_quarantines = events[snap_pos..end_pos]
                .iter()
                .filter(|q| matches!(q, Event::CandidateQuarantined { .. }))
                .count();
            let count_of = |c: char| snapshot.chars().filter(|&s| s == c).count();
            // Drops only happen at classify; selection only converts
            // active candidates (u or p) into q.
            assert_eq!(*dropped, count_of('d'), "iter {iteration}");
            assert!(*undecided <= count_of('u'), "iter {iteration}");
            assert!(*pareto <= count_of('p'), "iter {iteration}");
            assert_eq!(
                (count_of('u') - undecided) + (count_of('p') - pareto),
                post_quarantines,
                "iter {iteration}"
            );
            checked += 1;
        }
        assert_eq!(checked, result.history.len());
        // And the history rows agree with the trace rows.
        for (rec, e) in result.history.iter().zip(
            events
                .iter()
                .filter(|e| matches!(e, Event::IterationEnd { .. })),
        ) {
            if let Event::IterationEnd {
                pareto,
                dropped,
                undecided,
                ..
            } = e
            {
                assert_eq!(rec.pareto, *pareto);
                assert_eq!(rec.dropped, *dropped);
                assert_eq!(rec.undecided, *undecided);
            }
        }
    }

    #[test]
    fn pool_and_sod_config_are_validated() {
        let bad = |cfg: PpaTunerConfig| {
            let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]; 4]);
            PpaTuner::new(cfg)
                .run(&SourceData::empty(), &[vec![0.0]], &mut oracle)
                .unwrap_err()
        };
        for (name, cfg) in [
            (
                "pool_refine_scale",
                PpaTunerConfig {
                    pool_refine_scale: 0.0,
                    ..quick_config()
                },
            ),
            (
                "pool_max_refines",
                PpaTunerConfig {
                    pool_max_refines: 0,
                    ..quick_config()
                },
            ),
            (
                "pool_max_size",
                PpaTunerConfig {
                    pool_max_size: 0,
                    ..quick_config()
                },
            ),
            (
                "sod_subset",
                PpaTunerConfig {
                    sod_subset: 0,
                    ..quick_config()
                },
            ),
            (
                "predict_block",
                PpaTunerConfig {
                    predict_block: 0,
                    ..quick_config()
                },
            ),
            (
                "predict_workers",
                PpaTunerConfig {
                    predict_workers: 4097,
                    ..quick_config()
                },
            ),
        ] {
            match bad(cfg) {
                TunerError::InvalidConfig { name: got, .. } => assert_eq!(got, name),
                other => panic!("expected InvalidConfig for {name}, got {other:?}"),
            }
        }
    }

    #[test]
    fn predict_block_size_does_not_change_results() {
        let (candidates, truth) = toy(50);
        let source = shifted_source(&candidates, &truth);
        let run = |block: usize| {
            let mut oracle = VecOracle::new(truth.clone());
            let cfg = PpaTunerConfig {
                predict_block: block,
                ..quick_config()
            };
            PpaTuner::new(cfg)
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let base = run(gp::PREDICT_BLOCK);
        for block in [1, 7, 1024] {
            let other = run(block);
            assert_eq!(base.evaluated, other.evaluated, "block={block}");
            assert_eq!(base.pareto_indices, other.pareto_indices, "block={block}");
        }
    }

    #[test]
    fn predict_worker_count_does_not_change_results() {
        let (candidates, truth) = toy(50);
        let source = shifted_source(&candidates, &truth);
        let run = |workers: usize| {
            let mut oracle = VecOracle::new(truth.clone());
            let cfg = PpaTunerConfig {
                predict_workers: workers,
                ..quick_config()
            };
            PpaTuner::new(cfg)
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        // 0 = auto-sized; every explicit count must reproduce it exactly
        // (chunk decomposition is fixed by predict_block, workers only
        // change who computes each chunk).
        let base = run(0);
        for workers in [1, 2, 4, 8] {
            let other = run(workers);
            assert_eq!(base.evaluated, other.evaluated, "workers={workers}");
            assert_eq!(
                base.pareto_indices, other.pareto_indices,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn batch_mode_evaluates_multiple_per_iteration() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        // Whether any candidates stay undecided after the initial design is
        // sensitive to the RNG stream; this seed leaves some undecided so the
        // batch loop actually executes.
        let cfg = PpaTunerConfig {
            batch_size: 4,
            max_iterations: 5,
            seed: 2,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(cfg)
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        // 8 init + up to 5 iterations × 4 batch.
        assert!(result.runs <= 8 + 20);
        assert!(result.runs > 8);
    }
}

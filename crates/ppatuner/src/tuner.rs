//! The PPATuner loop (Algorithm 1 of the paper).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp::optimize::{fit_transfer_gp_from_starts, restart_starts, FitBudget};
use gp::{TaskData, TransferGp};
use obs::{Event, Observer, NULL_SINK};
use serde::{Deserialize, Serialize};

use crate::decision::{classify, Status};
use crate::oracle::QorOracle;
use crate::region::UncertaintyRegion;
use crate::{Result, TunerError};

/// Historical (source-task) tool-run data: encoded configurations and
/// their QoR vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceData {
    /// Shared behind an [`Arc`] so the per-objective [`TaskData`] views
    /// reference one encoded copy instead of cloning all configurations
    /// per objective per refit.
    x: Arc<Vec<Vec<f64>>>,
    y: Vec<Vec<f64>>,
}

impl SourceData {
    /// Creates source data from parallel configuration/QoR lists.
    ///
    /// # Errors
    ///
    /// Returns [`TunerError::InvalidInput`] when lengths disagree or the
    /// QoR vectors have inconsistent dimensions.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<Vec<f64>>) -> Result<Self> {
        if x.len() != y.len() {
            return Err(TunerError::InvalidInput {
                reason: "source x and y lengths differ",
            });
        }
        if let Some(first) = y.first() {
            let m = first.len();
            if m == 0 || y.iter().any(|v| v.len() != m) {
                return Err(TunerError::InvalidInput {
                    reason: "source QoR vectors must share a non-zero dimension",
                });
            }
        }
        Ok(SourceData { x: Arc::new(x), y })
    }

    /// An empty source (no-transfer operation).
    pub fn empty() -> Self {
        SourceData::default()
    }

    /// Number of source observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when there is no source history.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of QoR objectives, or `None` when empty.
    pub fn objectives(&self) -> Option<usize> {
        self.y.first().map(Vec::len)
    }

    /// Borrows the encoded source configurations.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Borrows the source QoR vectors (parallel to [`inputs`]).
    ///
    /// [`inputs`]: SourceData::inputs
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.y
    }

    /// The single-objective view of objective `k` as GP task data. The
    /// inputs are shared (reference-counted), only the one QoR column is
    /// materialized.
    fn task_data(&self, k: usize) -> TaskData {
        TaskData::from_shared(Arc::clone(&self.x), self.y.iter().map(|v| v[k]).collect())
    }
}

/// Configuration of the tuner.
#[derive(Debug, Clone, PartialEq)]
pub struct PpaTunerConfig {
    /// Region-scale coefficient τ of Eq. (9): the box is `μ ± √τ·σ`.
    pub tau: f64,
    /// Per-objective relaxation δ, as a fraction of each objective's
    /// observed range after initialization (the paper's "precision
    /// controller").
    pub delta_rel: f64,
    /// Target-task configurations evaluated during initialization
    /// (the paper's "no more than 5 % of the data").
    pub initial_samples: usize,
    /// Maximum loop iterations `T_max`.
    pub max_iterations: usize,
    /// Configurations sent to the tool per iteration (the paper's batch
    /// trials via parallel licenses).
    pub batch_size: usize,
    /// Re-train GP hyper-parameters every this many iterations (between
    /// refits, the model is re-conditioned on new data with cached
    /// hyper-parameters).
    pub refit_every: usize,
    /// Hyper-parameter search budget per refit.
    pub fit_budget: FitBudget,
    /// RNG seed (initial sampling + hyper-parameter restarts).
    pub seed: u64,
    /// Threads used for batched GP prediction.
    pub threads: usize,
    /// When the iteration cap is hit before every candidate is decided,
    /// also include the surrogate's predicted front (non-dominated
    /// predictive means over still-active candidates) in the final
    /// verification pass — the paper's "predicted Pareto-optimal
    /// parameter combinations". Disable for the strict
    /// classified-set-only ablation.
    pub include_predicted_front: bool,
}

impl Default for PpaTunerConfig {
    fn default() -> Self {
        PpaTunerConfig {
            tau: 1.5,
            delta_rel: 0.05,
            initial_samples: 20,
            max_iterations: 300,
            batch_size: 1,
            refit_every: 25,
            fit_budget: FitBudget::default(),
            seed: 0,
            threads: 8,
            include_predicted_front: true,
        }
    }
}

impl PpaTunerConfig {
    fn validate(&self) -> Result<()> {
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "tau",
                value: self.tau,
            });
        }
        if !(self.delta_rel.is_finite() && self.delta_rel >= 0.0) {
            return Err(TunerError::InvalidConfig {
                name: "delta_rel",
                value: self.delta_rel,
            });
        }
        if self.initial_samples < 2 {
            return Err(TunerError::InvalidConfig {
                name: "initial_samples",
                value: self.initial_samples as f64,
            });
        }
        if self.batch_size == 0 {
            return Err(TunerError::InvalidConfig {
                name: "batch_size",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One row of the tuning trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration index.
    pub iteration: usize,
    /// Candidates still undecided after this iteration.
    pub undecided: usize,
    /// Candidates classified Pareto so far.
    pub pareto: usize,
    /// Candidates dropped so far.
    pub dropped: usize,
    /// Tool runs so far.
    pub runs: usize,
    /// Wall-clock seconds this iteration took (fit + predict + classify +
    /// select + evaluate).
    pub duration_s: f64,
    /// Wall-clock seconds of that spent fitting the GP surrogates.
    pub gp_fit_s: f64,
    /// Wall-clock seconds of that spent predicting uncertainty boxes.
    #[serde(default)]
    pub predict_s: f64,
}

/// Outcome of one tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// Candidate indices of the final Pareto set: the union of the
    /// classified set and the measured front, verified on golden values
    /// by the final evaluation pass (Algorithm 1's closing step: "the
    /// predicted Pareto-optimal parameter combinations will be fed into
    /// the PD tools ... for evaluation").
    pub pareto_indices: Vec<usize>,
    /// Every tool evaluation made during the search:
    /// `(candidate index, QoR vector)`.
    pub evaluated: Vec<(usize, Vec<f64>)>,
    /// Tool runs consumed by the search (initialization + selection) —
    /// the paper's "Runs" column.
    pub runs: usize,
    /// Additional tool runs spent verifying the predicted Pareto set
    /// after the search (reported separately, as in the paper).
    pub verification_runs: usize,
    /// Loop iterations executed.
    pub iterations: usize,
    /// Per-iteration trajectory (for convergence plots).
    pub history: Vec<IterationRecord>,
    /// The absolute per-objective δ the run used.
    pub delta: Vec<f64>,
}

impl TuneResult {
    /// Serializes the whole result (including the per-iteration history)
    /// to a compact JSON string, for result files and downstream analysis.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("TuneResult serialization cannot fail")
    }
}

/// The Pareto-driven auto-tuner (Algorithm 1).
///
/// See the [crate-level documentation](crate) for the loop structure and
/// an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct PpaTuner {
    config: PpaTunerConfig,
}

impl PpaTuner {
    /// Creates a tuner with the given configuration.
    pub fn new(config: PpaTunerConfig) -> Self {
        PpaTuner { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &PpaTunerConfig {
        &self.config
    }

    /// Runs Algorithm 1 over `candidates` (unit-cube-encoded
    /// configurations of the target task), pulling golden QoR values from
    /// `oracle` and transferring knowledge from `source`.
    ///
    /// # Errors
    ///
    /// - [`TunerError::InvalidInput`] for an empty/inconsistent candidate
    ///   set or source;
    /// - [`TunerError::InvalidConfig`] for out-of-range options;
    /// - [`TunerError::Surrogate`] when GP fitting fails irrecoverably.
    pub fn run<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<TuneResult> {
        self.run_observed(source, candidates, oracle, &NULL_SINK)
    }

    /// Like [`PpaTuner::run`], but streams structured [`Event`]s to
    /// `observer` as the run progresses: one `GpFit` per surrogate per
    /// iteration, one `ToolEval` per tool run, plus `Classify`, `Select`,
    /// `IterationEnd`, and run-level bookends.
    ///
    /// Event construction is gated on [`Observer::enabled`], so passing
    /// [`obs::NULL_SINK`] (what [`PpaTuner::run`] does) costs almost
    /// nothing.
    ///
    /// # Errors
    ///
    /// Same as [`PpaTuner::run`].
    pub fn run_observed<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
        observer: &dyn Observer,
    ) -> Result<TuneResult> {
        let run_start = Instant::now();
        self.config.validate()?;
        if candidates.is_empty() {
            return Err(TunerError::InvalidInput {
                reason: "candidate set must not be empty",
            });
        }
        let dim = candidates[0].len();
        if dim == 0 || candidates.iter().any(|c| c.len() != dim) {
            return Err(TunerError::InvalidInput {
                reason: "candidates must share a non-zero dimension",
            });
        }
        if !source.is_empty() && source.x[0].len() != dim {
            return Err(TunerError::InvalidInput {
                reason: "source and candidate dimensions differ",
            });
        }

        let n = candidates.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // ------------------------------------------------- initialization
        // Greedy maximin selection seeded by a random pick: the random
        // sampling of the paper with better space coverage for the same
        // budget (pure-random ablation: shuffle and truncate instead).
        let init_count = self.config.initial_samples.min(n);
        let mut init_idx: Vec<usize> = Vec::with_capacity(init_count);
        {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            init_idx.push(order[0]);
            let mut dist = vec![f64::INFINITY; n];
            while init_idx.len() < init_count {
                let last = *init_idx.last().expect("non-empty");
                for (i, d) in dist.iter_mut().enumerate() {
                    let dd = sq_dist(&candidates[i], &candidates[last]);
                    if dd < *d {
                        *d = dd;
                    }
                }
                let next = (0..n)
                    .filter(|i| !init_idx.contains(i))
                    .max_by(|&a, &b| {
                        dist[a]
                            .partial_cmp(&dist[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("candidates remain");
                init_idx.push(next);
            }
        }

        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut evaluated_flag = vec![false; n];
        let mut init_durations: Vec<f64> = Vec::with_capacity(init_idx.len());
        for &i in &init_idx {
            let eval_start = Instant::now();
            let y = oracle.evaluate(i);
            init_durations.push(eval_start.elapsed().as_secs_f64());
            evaluated_flag[i] = true;
            evaluated.push((i, y));
        }
        let n_obj = evaluated[0].1.len();
        if n_obj == 0 || evaluated.iter().any(|(_, y)| y.len() != n_obj) {
            return Err(TunerError::InvalidInput {
                reason: "oracle QoR vectors must share a non-zero dimension",
            });
        }
        if let Some(m) = source.objectives() {
            if m != n_obj {
                return Err(TunerError::InvalidInput {
                    reason: "source and oracle objective counts differ",
                });
            }
        }

        // The run is now fully characterized: announce it, then replay the
        // initialization evaluations into the trace (iteration 0).
        if observer.enabled() {
            observer.emit(&Event::RunStart {
                candidates: n,
                objectives: n_obj,
                dim,
                initial_samples: init_count,
                max_iterations: self.config.max_iterations,
                seed: self.config.seed,
            });
            for ((i, y), d) in evaluated.iter().zip(&init_durations) {
                observer.emit(&Event::ToolEval {
                    iteration: 0,
                    candidate: *i,
                    qor: y.clone(),
                    duration_s: *d,
                });
            }
        }

        // Per-objective observed ranges of the initialization sample.
        let init_ranges: Vec<(f64, f64)> = (0..n_obj)
            .map(|k| {
                let vals: Vec<f64> = evaluated.iter().map(|(_, y)| y[k]).collect();
                let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            })
            .collect();

        // Absolute δ from the observed initialization ranges.
        let delta: Vec<f64> = init_ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo).max(f64::MIN_POSITIVE) * self.config.delta_rel)
            .collect();

        // Fixed hypervolume reference for trace reporting: slightly worse
        // than the initialization nadir, so incremental hypervolume is
        // monotone and comparable across iterations of the same run.
        let hv_reference: Vec<f64> = init_ranges
            .iter()
            .map(|&(lo, hi)| hi + 0.1 * (hi - lo).max(f64::MIN_POSITIVE))
            .collect();

        let mut regions: Vec<UncertaintyRegion> = (0..n)
            .map(|_| UncertaintyRegion::unbounded(n_obj))
            .collect();
        for (i, y) in &evaluated {
            regions[*i].collapse_to(y);
        }
        let mut statuses = vec![Status::Undecided; n];

        let source_tasks: Vec<TaskData> = (0..n_obj).map(|k| source.task_data(k)).collect();

        let mut history = Vec::new();
        let mut iterations = 0;
        // Per-objective surrogates, persistent across iterations: full
        // hyper-parameter refits replace them, warm iterations extend them
        // in place (`condition_on`) with the observations made since.
        let mut models_opt: Option<Vec<TransferGp>> = None;
        // How many entries of `evaluated` the persistent models have seen.
        let mut conditioned_upto = 0usize;

        // ------------------------------------------------------- the loop
        for t in 0..self.config.max_iterations {
            let undecided_exists = statuses.contains(&Status::Undecided);
            if !undecided_exists {
                break;
            }
            iterations = t + 1;
            let iter_start = Instant::now();

            // ---- model calibration (Algorithm 1, lines 4-6)
            let fit_phase = Instant::now();
            let needs_refit = models_opt.is_none() || t % self.config.refit_every.max(1) == 0;
            if needs_refit {
                // One shared encoded copy of the evaluated configurations;
                // each objective's task view only materializes its own
                // QoR column.
                let target_x: Arc<Vec<Vec<f64>>> = Arc::new(
                    evaluated
                        .iter()
                        .map(|(i, _)| candidates[*i].clone())
                        .collect(),
                );
                let target_tasks: Vec<TaskData> = (0..n_obj)
                    .map(|k| {
                        TaskData::from_shared(
                            Arc::clone(&target_x),
                            evaluated.iter().map(|(_, y)| y[k]).collect(),
                        )
                    })
                    .collect();
                // Pre-draw every objective's restart starts sequentially
                // (objective order), then fan the independent searches out
                // across threads: the RNG stream — and therefore the result
                // — is identical at any thread count.
                let starts: Vec<Vec<Vec<f64>>> = (0..n_obj)
                    .map(|_| restart_starts(dim, self.config.fit_budget.restarts, &mut rng))
                    .collect();
                let budget = self.config.fit_budget;
                let fit_threads = self.config.threads.max(1);
                let restart_threads = (fit_threads / n_obj).max(1);
                type FitOut = gp::Result<(TransferGp, gp::optimize::FitReport, f64)>;
                let fit_one = |k: usize| -> FitOut {
                    let fit_start = Instant::now();
                    let (m, report) = fit_transfer_gp_from_starts(
                        &source_tasks[k],
                        &target_tasks[k],
                        dim,
                        budget,
                        &starts[k],
                        restart_threads,
                    )?;
                    Ok((m, report, fit_start.elapsed().as_secs_f64()))
                };
                let outs: Vec<FitOut> = if fit_threads == 1 || n_obj == 1 {
                    (0..n_obj).map(fit_one).collect()
                } else {
                    let mut slots: Vec<Option<FitOut>> = (0..n_obj).map(|_| None).collect();
                    std::thread::scope(|s| {
                        let fit_one = &fit_one;
                        for (k, slot) in slots.iter_mut().enumerate() {
                            s.spawn(move || *slot = Some(fit_one(k)));
                        }
                    });
                    slots
                        .into_iter()
                        .map(|o| o.expect("every fit slot is filled"))
                        .collect()
                };
                let mut models: Vec<TransferGp> = Vec::with_capacity(n_obj);
                for (k, out) in outs.into_iter().enumerate() {
                    let (model, report, fit_duration) = out?;
                    if observer.enabled() {
                        let cfg = model.config();
                        observer.emit(&Event::GpFit {
                            iteration: t,
                            objective: k,
                            refit: true,
                            lengthscales: cfg.lengthscales.clone(),
                            signal_var: cfg.signal_var,
                            noise_target: cfg.noise_target,
                            lambda: model.lambda(),
                            restarts: report.restarts,
                            evals: report.evals,
                            cached_evals: report.cached_evals,
                            fresh_evals: report.fresh_evals,
                            log_marginal: model.log_marginal_likelihood(),
                            jitter: model.jitter(),
                            duration_s: fit_duration,
                        });
                    }
                    models.push(model);
                }
                models_opt = Some(models);
            } else {
                // Warm iteration: extend each persistent surrogate with the
                // observations made since its factorization — a rank-k
                // Cholesky append instead of a from-scratch refit.
                let models = models_opt.as_mut().expect("warm path follows a refit");
                let new_x: Vec<Vec<f64>> = evaluated[conditioned_upto..]
                    .iter()
                    .map(|(i, _)| candidates[*i].clone())
                    .collect();
                for (k, model) in models.iter_mut().enumerate() {
                    let fit_start = Instant::now();
                    let new_y: Vec<f64> = evaluated[conditioned_upto..]
                        .iter()
                        .map(|(_, y)| y[k])
                        .collect();
                    model.condition_on(&new_x, &new_y)?;
                    if observer.enabled() {
                        let cfg = model.config();
                        observer.emit(&Event::GpFit {
                            iteration: t,
                            objective: k,
                            refit: false,
                            lengthscales: cfg.lengthscales.clone(),
                            signal_var: cfg.signal_var,
                            noise_target: cfg.noise_target,
                            lambda: model.lambda(),
                            restarts: 0,
                            evals: 0,
                            cached_evals: 0,
                            fresh_evals: 0,
                            log_marginal: model.log_marginal_likelihood(),
                            jitter: model.jitter(),
                            duration_s: fit_start.elapsed().as_secs_f64(),
                        });
                    }
                }
            }
            conditioned_upto = evaluated.len();
            let gp_fit_s = fit_phase.elapsed().as_secs_f64();
            let models = models_opt.as_ref().expect("models exist past fitting");

            // Predict boxes for active, un-evaluated candidates.
            let predict_phase = Instant::now();
            let active: Vec<usize> = (0..n)
                .filter(|&i| statuses[i] != Status::Dropped && !evaluated_flag[i])
                .collect();
            let boxes = predict_boxes(
                models,
                candidates,
                &active,
                self.config.tau,
                self.config.threads,
            )?;
            for (pos, &i) in active.iter().enumerate() {
                let (lo, hi) = &boxes[pos];
                regions[i].intersect(lo, hi);
            }
            let predict_s = predict_phase.elapsed().as_secs_f64();

            // ---- decision-making (lines 7-9)
            classify(&regions, &mut statuses, &delta);
            if observer.enabled() {
                let (undecided, pareto, dropped) = status_counts(&statuses);
                observer.emit(&Event::Classify {
                    iteration: t,
                    pareto,
                    dropped,
                    undecided,
                    delta: delta.clone(),
                });
                observer.emit(&Event::RegionSnapshot {
                    iteration: t,
                    statuses: statuses.iter().map(status_char).collect(),
                    diameters: regions.iter().map(UncertaintyRegion::diameter).collect(),
                });
            }

            if !statuses.contains(&Status::Undecided) {
                let ctx = IterationOutcome {
                    iteration: t,
                    runs: oracle.runs(),
                    duration_s: iter_start.elapsed().as_secs_f64(),
                    gp_fit_s,
                    predict_s,
                };
                record(
                    observer,
                    &mut history,
                    &statuses,
                    &evaluated,
                    &hv_reference,
                    ctx,
                );
                break;
            }

            // ---- selection (lines 10-11): longest-diameter active
            // candidates, batched.
            let mut selectable: Vec<(usize, f64)> = (0..n)
                .filter(|&i| statuses[i] != Status::Dropped && !evaluated_flag[i])
                .map(|i| (i, regions[i].diameter()))
                .collect();
            selectable.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let batch: Vec<(usize, f64)> = selectable
                .iter()
                .take(self.config.batch_size)
                .filter(|(_, d)| *d > 0.0)
                .copied()
                .collect();
            if batch.is_empty() {
                // Everything informative has been measured.
                let ctx = IterationOutcome {
                    iteration: t,
                    runs: oracle.runs(),
                    duration_s: iter_start.elapsed().as_secs_f64(),
                    gp_fit_s,
                    predict_s,
                };
                record(
                    observer,
                    &mut history,
                    &statuses,
                    &evaluated,
                    &hv_reference,
                    ctx,
                );
                break;
            }
            if observer.enabled() {
                observer.emit(&Event::Select {
                    iteration: t,
                    chosen: batch.iter().map(|&(i, _)| i).collect(),
                    diameters: batch.iter().map(|&(_, d)| d).collect(),
                });
            }
            for (i, _) in batch {
                let eval_start = Instant::now();
                let y = oracle.evaluate(i);
                if observer.enabled() {
                    observer.emit(&Event::ToolEval {
                        iteration: t,
                        candidate: i,
                        qor: y.clone(),
                        duration_s: eval_start.elapsed().as_secs_f64(),
                    });
                }
                regions[i].collapse_to(&y);
                evaluated_flag[i] = true;
                evaluated.push((i, y));
            }

            let ctx = IterationOutcome {
                iteration: t,
                runs: oracle.runs(),
                duration_s: iter_start.elapsed().as_secs_f64(),
                gp_fit_s,
                predict_s,
            };
            record(
                observer,
                &mut history,
                &statuses,
                &evaluated,
                &hv_reference,
                ctx,
            );
        }

        // Final classification pass so late evaluations settle the sets.
        classify(&regions, &mut statuses, &delta);
        let search_runs = oracle.runs();

        // Closing step of the paper's flow: the predicted Pareto set is
        // fed through the PD tool for verification. Candidate set = the
        // classified Pareto members plus the measured front; verification
        // evaluates any member not yet measured, and the final answer is
        // the non-dominated subset on golden values.
        let mut final_candidates: Vec<usize> =
            (0..n).filter(|&i| statuses[i] == Status::Pareto).collect();
        // When the loop stopped before full classification, add the
        // surrogate's predicted front over the still-active candidates.
        if self.config.include_predicted_front {
            if let Some(models) = &models_opt {
                let undecided: Vec<usize> = (0..n)
                    .filter(|&i| statuses[i] == Status::Undecided && !evaluated_flag[i])
                    .collect();
                if !undecided.is_empty() {
                    let queries: Vec<Vec<f64>> =
                        undecided.iter().map(|&i| candidates[i].clone()).collect();
                    let mut mus: Vec<Vec<f64>> = vec![Vec::with_capacity(n_obj); undecided.len()];
                    for model in models {
                        for (q, (mu, _)) in model
                            .predict_latent_batch(&queries)?
                            .into_iter()
                            .enumerate()
                        {
                            mus[q].push(mu);
                        }
                    }
                    for j in pareto::front::pareto_front(&mus) {
                        let idx = undecided[j];
                        if !final_candidates.contains(&idx) {
                            final_candidates.push(idx);
                        }
                    }
                }
            }
        }
        {
            let pts: Vec<Vec<f64>> = evaluated.iter().map(|(_, y)| y.clone()).collect();
            for j in pareto::front::pareto_front(&pts) {
                let idx = evaluated[j].0;
                if !final_candidates.contains(&idx) {
                    final_candidates.push(idx);
                }
            }
        }
        let mut truth: Vec<(usize, Vec<f64>)> = Vec::with_capacity(final_candidates.len());
        for &i in &final_candidates {
            let y = match evaluated.iter().find(|(j, _)| *j == i) {
                Some((_, y)) => y.clone(),
                None => {
                    let eval_start = Instant::now();
                    let y = oracle.evaluate(i);
                    if observer.enabled() {
                        observer.emit(&Event::ToolEval {
                            iteration: iterations,
                            candidate: i,
                            qor: y.clone(),
                            duration_s: eval_start.elapsed().as_secs_f64(),
                        });
                    }
                    y
                }
            };
            truth.push((i, y));
        }
        let pts: Vec<Vec<f64>> = truth.iter().map(|(_, y)| y.clone()).collect();
        let pareto_indices: Vec<usize> = pareto::front::pareto_front(&pts)
            .into_iter()
            .map(|j| truth[j].0)
            .collect();

        let result = TuneResult {
            pareto_indices,
            runs: search_runs,
            verification_runs: oracle.runs() - search_runs,
            iterations,
            history,
            delta,
            evaluated,
        };
        if observer.enabled() {
            observer.emit(&Event::RunEnd {
                iterations: result.iterations,
                runs: result.runs,
                verification_runs: result.verification_runs,
                pareto: result.pareto_indices.len(),
                duration_s: run_start.elapsed().as_secs_f64(),
            });
        }
        observer.flush();
        Ok(result)
    }
}

/// The single-character trace encoding of a [`Status`] (see
/// [`Event::RegionSnapshot`]).
fn status_char(s: &Status) -> char {
    match s {
        Status::Undecided => 'u',
        Status::Pareto => 'p',
        Status::Dropped => 'd',
    }
}

fn status_counts(statuses: &[Status]) -> (usize, usize, usize) {
    let mut undecided = 0;
    let mut pareto = 0;
    let mut dropped = 0;
    for s in statuses {
        match s {
            Status::Undecided => undecided += 1,
            Status::Pareto => pareto += 1,
            Status::Dropped => dropped += 1,
        }
    }
    (undecided, pareto, dropped)
}

/// Timing and bookkeeping of one finished iteration, bundled so `record`
/// stays below the argument-count lint.
struct IterationOutcome {
    iteration: usize,
    runs: usize,
    duration_s: f64,
    gp_fit_s: f64,
    predict_s: f64,
}

/// Appends the iteration to the trajectory and emits `IterationEnd` (with
/// the incremental hypervolume of the evaluated set) to the observer.
fn record(
    observer: &dyn Observer,
    history: &mut Vec<IterationRecord>,
    statuses: &[Status],
    evaluated: &[(usize, Vec<f64>)],
    hv_reference: &[f64],
    ctx: IterationOutcome,
) {
    let (undecided, pareto, dropped) = status_counts(statuses);
    history.push(IterationRecord {
        iteration: ctx.iteration,
        undecided,
        pareto,
        dropped,
        runs: ctx.runs,
        duration_s: ctx.duration_s,
        gp_fit_s: ctx.gp_fit_s,
        predict_s: ctx.predict_s,
    });
    if observer.enabled() {
        let pts: Vec<Vec<f64>> = evaluated.iter().map(|(_, y)| y.clone()).collect();
        let hypervolume = pareto::hypervolume::hypervolume(&pts, hv_reference).unwrap_or(0.0);
        observer.emit(&Event::IterationEnd {
            iteration: ctx.iteration,
            runs: ctx.runs,
            pareto,
            dropped,
            undecided,
            hypervolume,
            duration_s: ctx.duration_s,
            gp_fit_s: ctx.gp_fit_s,
            predict_s: ctx.predict_s,
        });
    }
}

/// Predicts `[μ − √τ·σ, μ + √τ·σ]` boxes for the active candidates via
/// the multi-RHS batch path of [`TransferGp::predict_latent_batch`],
/// chunking the query set across `threads` scoped threads.
///
/// Batch prediction is bit-identical however the queries are chunked, so
/// the boxes — and everything downstream of them — do not depend on the
/// thread count.
fn predict_boxes(
    models: &[TransferGp],
    candidates: &[Vec<f64>],
    active: &[usize],
    tau: f64,
    threads: usize,
) -> Result<Vec<(Vec<f64>, Vec<f64>)>> {
    let n_obj = models.len();
    let scale = tau.sqrt();
    let queries: Vec<Vec<f64>> = active.iter().map(|&i| candidates[i].clone()).collect();
    // One prediction list per objective, each parallel to `queries`.
    type ModelPreds = gp::Result<Vec<Vec<(f64, f64)>>>;
    let predict_chunk = |qs: &[Vec<f64>]| -> ModelPreds {
        models.iter().map(|m| m.predict_latent_batch(qs)).collect()
    };

    let threads = threads.max(1).min(queries.len().max(1));
    let preds: Vec<Vec<(f64, f64)>> = if threads == 1 || queries.len() < 64 {
        predict_chunk(&queries)?
    } else {
        let chunk = queries.len().div_ceil(threads);
        let chunks: Vec<&[Vec<f64>]> = queries.chunks(chunk).collect();
        let mut results: Vec<Option<ModelPreds>> = (0..chunks.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let predict_chunk = &predict_chunk;
            for (slot, qs) in results.iter_mut().zip(&chunks) {
                s.spawn(move || *slot = Some(predict_chunk(qs)));
            }
        });
        let mut preds: Vec<Vec<(f64, f64)>> = vec![Vec::with_capacity(queries.len()); n_obj];
        for r in results {
            let per_model = r.expect("every prediction slot is filled")?;
            for (k, chunk_preds) in per_model.into_iter().enumerate() {
                preds[k].extend(chunk_preds);
            }
        }
        preds
    };

    let mut out = Vec::with_capacity(queries.len());
    for q in 0..queries.len() {
        let mut lo = Vec::with_capacity(n_obj);
        let mut hi = Vec::with_capacity(n_obj);
        for preds_k in &preds {
            let (mu, var) = preds_k[q];
            let sd = var.max(0.0).sqrt();
            lo.push(mu - scale * sd);
            hi.push(mu + scale * sd);
        }
        out.push((lo, hi));
    }
    Ok(out)
}

/// Squared Euclidean distance (local helper; avoids a linalg dependency).
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::VecOracle;

    /// A deterministic toy landscape: 1-D configurations, two objectives
    /// with a clean convex trade-off plus one dominated "bump" region.
    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let truth: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| {
                let x = p[0];
                let bump = if (0.4..0.6).contains(&x) { 0.3 } else { 0.0 };
                vec![x + bump + 0.05, (1.0 - x).powi(2) + bump + 0.05]
            })
            .collect();
        (candidates, truth)
    }

    fn shifted_source(candidates: &[Vec<f64>], truth: &[Vec<f64>]) -> SourceData {
        SourceData::new(
            candidates.to_vec(),
            truth
                .iter()
                .map(|y| y.iter().map(|v| v * 1.1 + 0.02).collect())
                .collect(),
        )
        .unwrap()
    }

    fn quick_config() -> PpaTunerConfig {
        PpaTunerConfig {
            initial_samples: 8,
            max_iterations: 40,
            refit_every: 10,
            fit_budget: FitBudget {
                restarts: 1,
                evals_per_restart: 60,
            },
            threads: 2,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn finds_the_true_front_on_toy_problem() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth.clone());
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();

        assert!(!result.pareto_indices.is_empty());
        // The predicted set should stay close to the true front: ADRS of
        // the predicted configurations' true values must be small.
        let golden: Vec<Vec<f64>> = pareto::front::pareto_front(&truth)
            .into_iter()
            .map(|i| truth[i].clone())
            .collect();
        let predicted: Vec<Vec<f64>> = result
            .pareto_indices
            .iter()
            .map(|&i| truth[i].clone())
            .collect();
        let adrs = pareto::metrics::adrs(&golden, &predicted).unwrap();
        assert!(adrs < 0.25, "adrs {adrs}");
    }

    #[test]
    fn uses_fewer_runs_than_exhaustive() {
        let (candidates, truth) = toy(60);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        assert!(
            result.runs < 60,
            "tuner used {} runs on 60 candidates",
            result.runs
        );
        assert_eq!(result.runs, result.evaluated.len());
    }

    #[test]
    fn works_without_source_data() {
        let (candidates, truth) = toy(30);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        assert!(!result.pareto_indices.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(quick_config())
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.pareto_indices, b.pareto_indices);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (candidates, truth) = toy(80);
        let source = shifted_source(&candidates, &truth);
        let run = |threads: usize| {
            let mut oracle = VecOracle::new(truth.clone());
            let cfg = PpaTunerConfig {
                threads,
                fit_budget: FitBudget {
                    restarts: 3,
                    evals_per_restart: 40,
                },
                ..quick_config()
            };
            PpaTuner::new(cfg)
                .run(&source, &candidates, &mut oracle)
                .unwrap()
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let other = run(threads);
            assert_eq!(
                base.pareto_indices, other.pareto_indices,
                "threads={threads}"
            );
            assert_eq!(base.runs, other.runs, "threads={threads}");
            assert_eq!(base.iterations, other.iterations, "threads={threads}");
            assert_eq!(base.evaluated, other.evaluated, "threads={threads}");
        }
    }

    #[test]
    fn history_is_monotone_in_decisions() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        for w in result.history.windows(2) {
            assert!(w[1].dropped >= w[0].dropped, "drops cannot be undone");
            assert!(w[1].runs >= w[0].runs);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut oracle = VecOracle::new(vec![vec![1.0, 2.0]]);
        let tuner = PpaTuner::new(quick_config());
        assert!(matches!(
            tuner.run(&SourceData::empty(), &[], &mut oracle),
            Err(TunerError::InvalidInput { .. })
        ));
        let bad_cfg = PpaTunerConfig {
            tau: -1.0,
            ..quick_config()
        };
        assert!(matches!(
            PpaTuner::new(bad_cfg).run(&SourceData::empty(), &[vec![0.0]], &mut oracle),
            Err(TunerError::InvalidConfig { name: "tau", .. })
        ));
        let bad_init = PpaTunerConfig {
            initial_samples: 1,
            ..quick_config()
        };
        assert!(matches!(
            PpaTuner::new(bad_init).run(&SourceData::empty(), &[vec![0.0]], &mut oracle),
            Err(TunerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn source_data_validation() {
        assert!(SourceData::new(vec![vec![0.0]], vec![]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![]]).is_err());
        assert!(SourceData::new(vec![vec![0.0]], vec![vec![1.0, 2.0]]).is_ok());
        let s = SourceData::new(
            vec![vec![0.0], vec![1.0]],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.objectives(), Some(2));
    }

    #[test]
    fn result_serializes_with_timing_fields() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        for rec in &result.history {
            assert!(rec.duration_s >= 0.0);
            assert!(rec.gp_fit_s >= 0.0);
            assert!(rec.gp_fit_s <= rec.duration_s + 1e-9);
        }
        let json = result.to_json();
        assert!(json.contains("\"pareto_indices\""));
        assert!(json.contains("\"gp_fit_s\""));
        let back: TuneResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pareto_indices, result.pareto_indices);
        assert_eq!(back.history.len(), result.history.len());
    }

    #[test]
    fn observed_run_emits_consistent_trace() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let sink = obs::RecordingSink::new();
        let result = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .unwrap();
        assert_eq!(sink.count("RunStart"), 1);
        assert_eq!(sink.count("RunEnd"), 1);
        assert_eq!(sink.count("IterationEnd"), result.history.len());
        // Every tool run appears in the trace.
        assert_eq!(
            sink.count("ToolEval"),
            result.runs + result.verification_runs
        );
        // One GpFit per objective per iteration.
        assert_eq!(sink.count("GpFit"), 2 * result.iterations);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let (candidates, truth) = toy(30);
        let source = shifted_source(&candidates, &truth);
        let mut o1 = VecOracle::new(truth.clone());
        let plain = PpaTuner::new(quick_config())
            .run(&source, &candidates, &mut o1)
            .unwrap();
        let mut o2 = VecOracle::new(truth);
        let sink = obs::RecordingSink::new();
        let observed = PpaTuner::new(quick_config())
            .run_observed(&source, &candidates, &mut o2, &sink)
            .unwrap();
        assert_eq!(plain.pareto_indices, observed.pareto_indices);
        assert_eq!(plain.runs, observed.runs);
    }

    #[test]
    fn batch_mode_evaluates_multiple_per_iteration() {
        let (candidates, truth) = toy(40);
        let source = shifted_source(&candidates, &truth);
        // Whether any candidates stay undecided after the initial design is
        // sensitive to the RNG stream; this seed leaves some undecided so the
        // batch loop actually executes.
        let cfg = PpaTunerConfig {
            batch_size: 4,
            max_iterations: 5,
            seed: 2,
            ..quick_config()
        };
        let mut oracle = VecOracle::new(truth);
        let result = PpaTuner::new(cfg)
            .run(&source, &candidates, &mut oracle)
            .unwrap();
        // 8 init + up to 5 iterations × 4 batch.
        assert!(result.runs <= 8 + 20);
        assert!(result.runs > 8);
    }
}

//! Versioned checkpoint/resume support for interrupted tuning runs.
//!
//! A real tuning campaign runs for days on a shared license pool; the
//! driver process dies, the cluster preempts, someone trips over a power
//! cord. The tuner therefore persists a [`Checkpoint`] at the end of
//! every iteration, and [`PpaTuner::resume`](crate::PpaTuner::resume)
//! continues an interrupted run to a [`TuneResult`](crate::TuneResult)
//! *identical* to the uninterrupted one.
//!
//! # How resume reproduces a run exactly
//!
//! The checkpoint's load-bearing content is the **evaluation-outcome
//! log**: one [`EvalRecord`] per oracle attempt, successes and failures
//! alike, in order. Resume re-executes Algorithm 1 from the beginning
//! with the same seed, but serves oracle calls from the log instead of
//! the live tool; because every other source of randomness (the
//! initialization shuffle, the hyper-parameter restart draws) is the
//! tuner's own seeded RNG replayed over the same data, the loop
//! deterministically re-reaches the checkpointed state — regions,
//! statuses, models, and RNG position included — and then switches to
//! live evaluation. Failed attempts are replayed too: they drive retry
//! and quarantine control flow, so eliding them would desynchronize the
//! resumed run.
//!
//! The [`StateSnapshot`] carried alongside the log serves two purposes:
//! cheap *verification* that replay really did land in the recorded state
//! (statuses, run counts, and the RNG position are compared before going
//! live; any mismatch aborts with
//! [`TunerError::Checkpoint`](crate::TunerError::Checkpoint)), and
//! offline *inspection* of an interrupted run without re-executing it.

use std::cell::RefCell;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::oracle::EvalError;
use crate::region::UncertaintyRegion;
use crate::tuner::{IterationRecord, PpaTunerConfig, SourceData};

/// Current checkpoint format version. Bumped on any incompatible change;
/// resume refuses other versions rather than misinterpreting them.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The result of one oracle attempt, after sanitization.
///
/// `Accepted` means the QoR vector passed validation and entered the
/// model; `Failed` covers crashes, timeouts, and rejected QoR. The
/// distinction is exactly what the resilient executor branches on, which
/// is why replaying these records reproduces its control flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalOutcome {
    /// The attempt produced a usable QoR vector.
    Accepted {
        /// The accepted (finite, validated) QoR values.
        qor: Vec<f64>,
    },
    /// The attempt produced no usable QoR.
    Failed {
        /// Why the attempt failed.
        error: EvalError,
    },
}

/// One oracle attempt in the evaluation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Candidate index the attempt targeted.
    pub candidate: usize,
    /// What came back.
    pub outcome: EvalOutcome,
}

/// Inspection/verification snapshot of the loop state at checkpoint time.
///
/// Everything here is *derived* — resume rebuilds it by replaying the
/// evaluation log — but it lets tooling inspect an interrupted run and
/// lets resume verify the replay landed where the original run stood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// One character per candidate: `u` undecided, `p` Pareto,
    /// `d` dropped, `q` quarantined.
    pub statuses: String,
    /// Number of accepted observations so far.
    pub evaluated: usize,
    /// Oracle runs so far (failed attempts included).
    pub runs: usize,
    /// The tuner RNG's internal state words at checkpoint time; compared
    /// verbatim after replay, so any drift in RNG consumption is caught
    /// before live evaluation resumes.
    pub rng_state: Vec<u64>,
    /// Absolute per-objective δ the run locked in after initialization.
    pub delta: Vec<f64>,
    /// Per-candidate uncertainty regions (inspection only: still-unbounded
    /// coordinates do not survive the JSON round trip, see
    /// [`UncertaintyRegion`]).
    pub regions: Vec<UncertaintyRegion>,
    /// Per-iteration trajectory so far.
    pub history: Vec<IterationRecord>,
    /// Degraded-fit fallbacks the run has taken so far (surrogate
    /// calibrations served by the last-good model; see the `DegradedFit`
    /// trace event). Compared after replay like the other derived
    /// counters: a resume that forgets to re-install an injected fault
    /// plan (or hits different numerics) is caught here, before going
    /// live.
    #[serde(default)]
    pub degraded_fits: usize,
}

/// A complete, resumable checkpoint of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The iteration resume will execute next (the checkpoint was written
    /// at the end of iteration `next_iteration − 1`).
    pub next_iteration: usize,
    /// The configuration the run used. Resume requires an identical
    /// configuration: a different τ, seed, or budget would silently
    /// diverge from the log.
    pub config: PpaTunerConfig,
    /// Digest of the candidate matrix the run was started with.
    pub candidates_digest: u64,
    /// Digest of the source-task data the run was started with.
    pub source_digest: u64,
    /// Every oracle attempt so far, in order (the replay script).
    pub eval_log: Vec<EvalRecord>,
    /// Derived loop state for verification and inspection.
    pub snapshot: StateSnapshot,
    /// FNV-1a content digest over the JSON form of this checkpoint with
    /// `digest` itself zeroed. `0` means "unsealed" (legacy checkpoints
    /// predate the digest; [`Checkpoint::seal`] never produces 0).
    /// [`Checkpoint::from_json`] rejects a sealed checkpoint whose bytes
    /// do not hash back to the stored digest, so a torn or bit-flipped
    /// write surfaces as *corrupt* instead of silently resuming from
    /// damaged state.
    #[serde(default)]
    pub digest: u64,
}

impl Checkpoint {
    /// Validates that this checkpoint belongs to the run being resumed:
    /// same format version, identical configuration, and the same
    /// candidate/source data (by digest).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn validate(
        &self,
        config: &PpaTunerConfig,
        candidates: &[Vec<f64>],
        source: &SourceData,
    ) -> Result<(), String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if &self.config != config {
            return Err("checkpoint configuration differs from the tuner's".into());
        }
        let cd = digest_matrix(candidates);
        if self.candidates_digest != cd {
            return Err(format!(
                "candidate set changed since checkpoint (digest {:#x} != {:#x})",
                cd, self.candidates_digest
            ));
        }
        let sd = source_digest(source);
        if self.source_digest != sd {
            return Err(format!(
                "source data changed since checkpoint (digest {:#x} != {:#x})",
                sd, self.source_digest
            ));
        }
        Ok(())
    }

    /// Serializes to the JSON checkpoint format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// The content digest this checkpoint's data hashes to: FNV-1a over
    /// the JSON serialization with the `digest` field zeroed. Never 0 (a
    /// zero hash is remapped so it cannot collide with the "unsealed"
    /// sentinel), and independent of whether the checkpoint is currently
    /// sealed — so sealing is idempotent.
    pub fn content_digest(&self) -> u64 {
        let mut unsealed = self.clone();
        unsealed.digest = 0;
        let h = fnv1a(unsealed.to_json().as_bytes());
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Stamps the content digest into `self` so persisted bytes are
    /// verifiable. The tuner seals every checkpoint it writes; stores also
    /// serialize through [`Checkpoint::sealed_json`], so file bytes carry
    /// a digest even for hand-built checkpoints.
    pub fn seal(&mut self) {
        self.digest = self.content_digest();
    }

    /// The JSON form with the content digest stamped in (without mutating
    /// `self`). Idempotent: sealing a sealed checkpoint yields the same
    /// bytes.
    pub fn sealed_json(&self) -> String {
        let mut sealed = self.clone();
        sealed.seal();
        sealed.to_json()
    }

    /// Parses a checkpoint from its JSON form and verifies the content
    /// digest when one is present (`digest != 0`).
    ///
    /// # Errors
    ///
    /// A description of the parse failure or digest mismatch.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let ckpt: Checkpoint =
            serde_json::from_str(s).map_err(|e| format!("malformed checkpoint: {e}"))?;
        if ckpt.digest != 0 {
            let expected = ckpt.content_digest();
            if ckpt.digest != expected {
                return Err(format!(
                    "checkpoint digest mismatch: stored {:#x}, content hashes to {:#x} \
                     (torn or tampered write)",
                    ckpt.digest, expected
                ));
            }
        }
        Ok(ckpt)
    }
}

/// FNV-1a over raw bytes (same constants as [`digest_matrix`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the bit patterns of an `f64` matrix (rows delimited), used
/// to pin a checkpoint to the exact data it was created from.
pub fn digest_matrix(rows: &[Vec<f64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(rows.len() as u64);
    for row in rows {
        mix(row.len() as u64);
        for &v in row {
            mix(v.to_bits());
        }
    }
    h
}

/// Digest of a full [`SourceData`] (inputs and outputs).
pub fn source_digest(source: &SourceData) -> u64 {
    digest_matrix(source.inputs()) ^ digest_matrix(source.outputs()).rotate_left(1)
}

/// Why a checkpoint store operation failed, split along the axis callers
/// branch on: *corrupt data* can be degraded around (scan back to an
/// older entry, or accept losing progress), while an *I/O failure* means
/// the storage itself is unhealthy and retrying or aborting is the only
/// sound move. Refuse-with-reason for foreign checkpoints (wrong version,
/// config, or data digest) is unchanged — that check lives in
/// [`Checkpoint::validate`], after a load succeeds.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The stored bytes exist but do not parse as a checkpoint or fail
    /// their content-digest check (torn write, bit rot, tampering).
    Corrupt {
        /// What was wrong with the bytes.
        reason: String,
    },
    /// The underlying storage failed (permissions, disk full, transient
    /// filesystem error). The data may be fine; the medium is not.
    Io {
        /// The failing operation and OS error.
        reason: String,
    },
}

impl CheckpointError {
    /// `true` for [`CheckpointError::Corrupt`] — the variant a caller may
    /// degrade around by falling back to an older checkpoint.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, CheckpointError::Corrupt { .. })
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CheckpointError::Io { reason } => write!(f, "checkpoint I/O failure: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What a [`CheckpointStore::recover`] scan found.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// The newest valid checkpoint, or `None` when the store is empty.
    pub checkpoint: Option<Checkpoint>,
    /// Entries examined, newest first (0 for an empty store).
    pub scanned: usize,
    /// Entries skipped as torn/corrupt/digest-mismatched before a valid
    /// one was found. Always 0 for single-slot stores.
    pub skipped: usize,
}

/// Where checkpoints are persisted and recovered from.
///
/// `&self` receivers keep the store usable through the tuner's shared
/// borrows; implementations use interior mutability where needed.
pub trait CheckpointStore {
    /// Persists a checkpoint, replacing any previous one atomically (a
    /// torn write must never shadow a complete older checkpoint).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] describing the persistence failure.
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), CheckpointError>;

    /// Recovers the most recent checkpoint, or `None` when the store is
    /// empty (resume then starts a fresh run).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the stored bytes are damaged
    /// (callers may fall back), [`CheckpointError::Io`] when the storage
    /// failed (callers should abort).
    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError>;

    /// Like [`CheckpointStore::load`], but reports how the recovery went:
    /// chain stores scan back past damaged entries and count what they
    /// skipped, which resume surfaces as a `RecoveryScan` trace event.
    /// The default implementation is a plain load with no scan-back.
    ///
    /// # Errors
    ///
    /// Same surface as [`CheckpointStore::load`].
    fn recover(&self) -> Result<Recovery, CheckpointError> {
        let checkpoint = self.load()?;
        Ok(Recovery {
            scanned: usize::from(checkpoint.is_some()),
            skipped: 0,
            checkpoint,
        })
    }
}

/// In-memory store, for tests and same-process recovery drills.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    slot: RefCell<Option<Checkpoint>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently held checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.slot.borrow().clone()
    }

    /// Seeds the store with a checkpoint (e.g. one carried over from
    /// another process).
    pub fn put(&self, checkpoint: Checkpoint) {
        *self.slot.borrow_mut() = Some(checkpoint);
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        *self.slot.borrow_mut() = Some(checkpoint.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(self.slot.borrow().clone())
    }
}

/// An I/O-failure error tagged with the failing operation and path.
fn io_failure(op: &str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        reason: format!("{op} {}: {e}", path.display()),
    }
}

/// Writes `contents` to `path` and flushes it to the storage device
/// (`fsync`), so the bytes survive power loss once this returns.
fn write_durable(path: &Path, contents: &str) -> Result<(), CheckpointError> {
    use std::io::Write;
    let mut file = std::fs::File::create(path).map_err(|e| io_failure("creating", path, e))?;
    file.write_all(contents.as_bytes())
        .map_err(|e| io_failure("writing", path, e))?;
    file.sync_all().map_err(|e| io_failure("syncing", path, e))
}

/// Flushes the directory entry for `path` (the rename itself) to the
/// storage device. Without this the atomic rename is crash-*consistent*
/// but not *durable*: after power loss the directory may still name the
/// old file.
fn sync_parent_dir(path: &Path) -> Result<(), CheckpointError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = std::fs::File::open(parent).map_err(|e| io_failure("opening dir", parent, e))?;
    dir.sync_all()
        .map_err(|e| io_failure("syncing dir", parent, e))
}

/// Reads and parses one checkpoint file. `Ok(None)` when the file does
/// not exist; parse/digest failures are [`CheckpointError::Corrupt`],
/// everything else [`CheckpointError::Io`].
fn read_checkpoint_file(path: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
    match std::fs::read_to_string(path) {
        Ok(s) => Checkpoint::from_json(&s)
            .map(Some)
            .map_err(|reason| CheckpointError::Corrupt {
                reason: format!("{}: {reason}", path.display()),
            }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_failure("reading", path, e)),
    }
}

/// File-backed store: one JSON checkpoint file, replaced atomically via a
/// sibling temp file and rename, with the temp file and the parent
/// directory fsynced around the rename so a completed [`save`] survives
/// power loss (not just a process crash).
///
/// [`save`]: CheckpointStore::save
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    path: PathBuf,
}

impl FileCheckpointStore {
    /// A store writing to (and reading from) `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        write_durable(&tmp, &checkpoint.sealed_json())?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| io_failure("renaming into", &self.path, e))?;
        sync_parent_dir(&self.path)
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        read_checkpoint_file(&self.path)
    }
}

/// Bounded rotating checkpoint chain: each save writes a fresh
/// `ckpt-NNNNNNNN.json` entry (durably, like [`FileCheckpointStore`]) and
/// prunes entries beyond the newest `keep`. Recovery scans back from the
/// newest entry past anything torn, unparseable, or digest-mismatched to
/// the newest *valid* checkpoint — so a crash at any byte of a save costs
/// at most one iteration of progress, never the run.
#[derive(Debug, Clone)]
pub struct ChainCheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl ChainCheckpointStore {
    /// A chain rooted at directory `dir` keeping the newest `keep`
    /// entries (at least 1; 0 is clamped).
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Self {
        ChainCheckpointStore {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The chain directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many entries the chain retains.
    pub fn keep(&self) -> usize {
        self.keep
    }

    fn entry_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{seq:08}.json"))
    }

    /// Chain entries as `(sequence, path)`, ascending by sequence. Files
    /// that do not match the `ckpt-NNNNNNNN.json` pattern (including
    /// leftover `.tmp` files from a crashed save) are ignored.
    fn entries(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let read = match std::fs::read_dir(&self.dir) {
            Ok(read) => read,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_failure("listing", &self.dir, e)),
        };
        let mut entries = Vec::new();
        for entry in read {
            let entry = entry.map_err(|e| io_failure("listing", &self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            entries.push((seq, entry.path()));
        }
        entries.sort_unstable();
        Ok(entries)
    }
}

impl CheckpointStore for ChainCheckpointStore {
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| io_failure("creating dir", &self.dir, e))?;
        let entries = self.entries()?;
        let seq = entries.last().map_or(0, |&(seq, _)| seq + 1);
        let path = self.entry_path(seq);
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        write_durable(&tmp, &checkpoint.sealed_json())?;
        std::fs::rename(&tmp, &path).map_err(|e| io_failure("renaming into", &path, e))?;
        sync_parent_dir(&path)?;
        // Prune beyond keep-last-k, oldest first. Best-effort: the new
        // entry is already durable, and a failed unlink only costs disk.
        let excess = (entries.len() + 1).saturating_sub(self.keep);
        for (_, old) in entries.into_iter().take(excess) {
            std::fs::remove_file(old).ok();
        }
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        self.recover().map(|r| r.checkpoint)
    }

    fn recover(&self) -> Result<Recovery, CheckpointError> {
        let entries = self.entries()?;
        let mut scanned = 0;
        let mut skipped = 0;
        let mut first_damage: Option<String> = None;
        for (_, path) in entries.iter().rev() {
            scanned += 1;
            match read_checkpoint_file(path) {
                Ok(Some(checkpoint)) => {
                    return Ok(Recovery {
                        checkpoint: Some(checkpoint),
                        scanned,
                        skipped,
                    });
                }
                // Raced unlink (e.g. a concurrent prune): not damage.
                Ok(None) => {}
                Err(CheckpointError::Corrupt { reason }) => {
                    skipped += 1;
                    first_damage.get_or_insert(reason);
                }
                Err(e @ CheckpointError::Io { .. }) => return Err(e),
            }
        }
        if skipped > 0 {
            // Every entry was damaged: losing the whole campaign silently
            // would be worse than surfacing it.
            return Err(CheckpointError::Corrupt {
                reason: format!(
                    "all {skipped} chain entr{} corrupt (newest: {})",
                    if skipped == 1 { "y is" } else { "ies are" },
                    first_damage.unwrap_or_default()
                ),
            });
        }
        Ok(Recovery {
            checkpoint: None,
            scanned,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            next_iteration: 3,
            config: PpaTunerConfig::default(),
            candidates_digest: digest_matrix(&[vec![0.5], vec![1.0]]),
            source_digest: source_digest(&SourceData::empty()),
            eval_log: vec![
                EvalRecord {
                    candidate: 1,
                    outcome: EvalOutcome::Accepted {
                        qor: vec![1.0, 2.0],
                    },
                },
                EvalRecord {
                    candidate: 0,
                    outcome: EvalOutcome::Failed {
                        error: EvalError::Crash {
                            detail: "injected".into(),
                        },
                    },
                },
            ],
            snapshot: StateSnapshot {
                statuses: "up".into(),
                evaluated: 1,
                runs: 2,
                rng_state: vec![1, 2, 3, 4],
                delta: vec![0.1, 0.1],
                regions: vec![
                    UncertaintyRegion::point(&[1.0, 2.0]),
                    UncertaintyRegion::point(&[3.0, 4.0]),
                ],
                history: Vec::new(),
                degraded_fits: 0,
            },
            digest: 0,
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ckpt = sample_checkpoint();
        let back = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn validate_rejects_version_config_and_data_drift() {
        let ckpt = sample_checkpoint();
        let candidates = vec![vec![0.5], vec![1.0]];
        let source = SourceData::empty();
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &candidates, &source)
            .is_ok());

        let mut wrong_version = ckpt.clone();
        wrong_version.version = 99;
        let e = wrong_version
            .validate(&PpaTunerConfig::default(), &candidates, &source)
            .unwrap_err();
        assert!(e.contains("version"), "{e}");

        let other_config = PpaTunerConfig {
            seed: 1234,
            ..PpaTunerConfig::default()
        };
        assert!(ckpt.validate(&other_config, &candidates, &source).is_err());

        let other_candidates = vec![vec![0.5], vec![0.9]];
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &other_candidates, &source)
            .is_err());

        let other_source = SourceData::new(vec![vec![0.0]], vec![vec![1.0, 2.0]]).unwrap();
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &candidates, &other_source)
            .is_err());
    }

    #[test]
    fn digest_is_sensitive_to_values_and_shape() {
        let base = digest_matrix(&[vec![1.0, 2.0], vec![3.0]]);
        assert_ne!(base, digest_matrix(&[vec![1.0, 2.0], vec![3.5]]));
        assert_ne!(base, digest_matrix(&[vec![1.0, 2.0, 3.0]]));
        assert_ne!(base, digest_matrix(&[vec![1.0], vec![2.0, 3.0]]));
        assert_eq!(base, digest_matrix(&[vec![1.0, 2.0], vec![3.0]]));
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryCheckpointStore::new();
        assert!(store.load().unwrap().is_none());
        let ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), ckpt);
        assert_eq!(store.latest().unwrap(), ckpt);
    }

    #[test]
    fn file_store_round_trips_and_overwrites() {
        let dir = std::env::temp_dir().join(format!("ppat-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = FileCheckpointStore::new(dir.join("run.ckpt.json"));
        assert!(store.load().unwrap().is_none());
        let mut ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        ckpt.next_iteration = 9;
        store.save(&ckpt).unwrap();
        let back = store.load().unwrap().unwrap();
        assert_eq!(back.next_iteration, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_checkpoint_file_is_an_error_not_none() {
        let dir = std::env::temp_dir().join(format!("ppat-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt.json");
        std::fs::write(&path, "{ not json").unwrap();
        let store = FileCheckpointStore::new(&path);
        // Malformed bytes are a *corrupt* error — the variant a caller
        // may degrade around — never silently `None`, and never mistaken
        // for an I/O failure.
        let err = store.load().unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sealing_is_idempotent_and_detects_tampering() {
        let mut ckpt = sample_checkpoint();
        ckpt.seal();
        assert_ne!(ckpt.digest, 0);
        let json = ckpt.to_json();
        assert_eq!(json, ckpt.sealed_json());
        assert_eq!(json, sample_checkpoint().sealed_json());
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back, ckpt);

        // Any content change under an unrefreshed digest is rejected.
        let tampered = json.replace("\"next_iteration\":3", "\"next_iteration\":4");
        assert_ne!(tampered, json);
        let e = Checkpoint::from_json(&tampered).unwrap_err();
        assert!(e.contains("digest mismatch"), "{e}");

        // Legacy unsealed checkpoints (digest 0 / missing) still load.
        let mut unsealed = sample_checkpoint();
        unsealed.digest = 0;
        assert_eq!(
            Checkpoint::from_json(&unsealed.to_json()).unwrap(),
            unsealed
        );
    }

    #[test]
    fn file_store_seals_on_disk_and_rejects_truncation() {
        let dir = std::env::temp_dir().join(format!("ppat-ckpt-seal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt.json");
        let store = FileCheckpointStore::new(&path);
        store.save(&sample_checkpoint()).unwrap();
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(Checkpoint::from_json(&on_disk).unwrap().digest != 0);

        // A torn (truncated) file is corrupt, not an I/O failure.
        std::fs::write(&path, &on_disk[..on_disk.len() - 7]).unwrap();
        let err = store.load().unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn chain_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppat-chain-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn chain_store_rotates_and_loads_newest() {
        let dir = chain_dir("rotate");
        let store = ChainCheckpointStore::new(&dir, 3);
        assert_eq!(store.keep(), 3);
        assert!(store.load().unwrap().is_none());
        for t in 0..5 {
            let mut ckpt = sample_checkpoint();
            ckpt.next_iteration = t;
            store.save(&ckpt).unwrap();
        }
        assert_eq!(store.load().unwrap().unwrap().next_iteration, 4);
        // Only the newest `keep` entries survive pruning.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert!(
            names.contains(&"ckpt-00000004.json".to_string()),
            "{names:?}"
        );
        assert!(
            !names.contains(&"ckpt-00000001.json".to_string()),
            "{names:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_recover_scans_past_damaged_entries() {
        let dir = chain_dir("scan");
        let store = ChainCheckpointStore::new(&dir, 4);
        for t in 0..3 {
            let mut ckpt = sample_checkpoint();
            ckpt.next_iteration = t;
            store.save(&ckpt).unwrap();
        }
        // Tear the newest entry mid-byte and digest-tamper the next one:
        // recovery must land on entry 0 and count both skips.
        let newest = dir.join("ckpt-00000002.json");
        let bytes = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let middle = dir.join("ckpt-00000001.json");
        let bytes = std::fs::read_to_string(&middle).unwrap();
        std::fs::write(&middle, bytes.replace("\"runs\":2", "\"runs\":3")).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.checkpoint.as_ref().unwrap().next_iteration, 0);
        assert_eq!(recovery.scanned, 3);
        assert_eq!(recovery.skipped, 2);
        assert_eq!(store.load().unwrap().unwrap().next_iteration, 0);

        // A leftover .tmp from a crashed save is ignored entirely.
        std::fs::write(dir.join("ckpt-00000003.json.tmp"), "torn").unwrap();
        assert_eq!(store.recover().unwrap().skipped, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_with_only_damaged_entries_is_corrupt_not_empty() {
        let dir = chain_dir("all-bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ckpt-00000000.json"), "{ torn").unwrap();
        let store = ChainCheckpointStore::new(&dir, 2);
        let err = store.recover().unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        // An actually-empty chain is a fresh start, not an error.
        std::fs::remove_dir_all(&dir).ok();
        let empty = store.recover().unwrap();
        assert_eq!(
            empty,
            Recovery {
                checkpoint: None,
                scanned: 0,
                skipped: 0
            }
        );
    }
}

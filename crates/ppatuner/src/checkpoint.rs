//! Versioned checkpoint/resume support for interrupted tuning runs.
//!
//! A real tuning campaign runs for days on a shared license pool; the
//! driver process dies, the cluster preempts, someone trips over a power
//! cord. The tuner therefore persists a [`Checkpoint`] at the end of
//! every iteration, and [`PpaTuner::resume`](crate::PpaTuner::resume)
//! continues an interrupted run to a [`TuneResult`](crate::TuneResult)
//! *identical* to the uninterrupted one.
//!
//! # How resume reproduces a run exactly
//!
//! The checkpoint's load-bearing content is the **evaluation-outcome
//! log**: one [`EvalRecord`] per oracle attempt, successes and failures
//! alike, in order. Resume re-executes Algorithm 1 from the beginning
//! with the same seed, but serves oracle calls from the log instead of
//! the live tool; because every other source of randomness (the
//! initialization shuffle, the hyper-parameter restart draws) is the
//! tuner's own seeded RNG replayed over the same data, the loop
//! deterministically re-reaches the checkpointed state — regions,
//! statuses, models, and RNG position included — and then switches to
//! live evaluation. Failed attempts are replayed too: they drive retry
//! and quarantine control flow, so eliding them would desynchronize the
//! resumed run.
//!
//! The [`StateSnapshot`] carried alongside the log serves two purposes:
//! cheap *verification* that replay really did land in the recorded state
//! (statuses, run counts, and the RNG position are compared before going
//! live; any mismatch aborts with
//! [`TunerError::Checkpoint`](crate::TunerError::Checkpoint)), and
//! offline *inspection* of an interrupted run without re-executing it.

use std::cell::RefCell;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::oracle::EvalError;
use crate::region::UncertaintyRegion;
use crate::tuner::{IterationRecord, PpaTunerConfig, SourceData};

/// Current checkpoint format version. Bumped on any incompatible change;
/// resume refuses other versions rather than misinterpreting them.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The result of one oracle attempt, after sanitization.
///
/// `Accepted` means the QoR vector passed validation and entered the
/// model; `Failed` covers crashes, timeouts, and rejected QoR. The
/// distinction is exactly what the resilient executor branches on, which
/// is why replaying these records reproduces its control flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalOutcome {
    /// The attempt produced a usable QoR vector.
    Accepted {
        /// The accepted (finite, validated) QoR values.
        qor: Vec<f64>,
    },
    /// The attempt produced no usable QoR.
    Failed {
        /// Why the attempt failed.
        error: EvalError,
    },
}

/// One oracle attempt in the evaluation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Candidate index the attempt targeted.
    pub candidate: usize,
    /// What came back.
    pub outcome: EvalOutcome,
}

/// Inspection/verification snapshot of the loop state at checkpoint time.
///
/// Everything here is *derived* — resume rebuilds it by replaying the
/// evaluation log — but it lets tooling inspect an interrupted run and
/// lets resume verify the replay landed where the original run stood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// One character per candidate: `u` undecided, `p` Pareto,
    /// `d` dropped, `q` quarantined.
    pub statuses: String,
    /// Number of accepted observations so far.
    pub evaluated: usize,
    /// Oracle runs so far (failed attempts included).
    pub runs: usize,
    /// The tuner RNG's internal state words at checkpoint time; compared
    /// verbatim after replay, so any drift in RNG consumption is caught
    /// before live evaluation resumes.
    pub rng_state: Vec<u64>,
    /// Absolute per-objective δ the run locked in after initialization.
    pub delta: Vec<f64>,
    /// Per-candidate uncertainty regions (inspection only: still-unbounded
    /// coordinates do not survive the JSON round trip, see
    /// [`UncertaintyRegion`]).
    pub regions: Vec<UncertaintyRegion>,
    /// Per-iteration trajectory so far.
    pub history: Vec<IterationRecord>,
}

/// A complete, resumable checkpoint of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The iteration resume will execute next (the checkpoint was written
    /// at the end of iteration `next_iteration − 1`).
    pub next_iteration: usize,
    /// The configuration the run used. Resume requires an identical
    /// configuration: a different τ, seed, or budget would silently
    /// diverge from the log.
    pub config: PpaTunerConfig,
    /// Digest of the candidate matrix the run was started with.
    pub candidates_digest: u64,
    /// Digest of the source-task data the run was started with.
    pub source_digest: u64,
    /// Every oracle attempt so far, in order (the replay script).
    pub eval_log: Vec<EvalRecord>,
    /// Derived loop state for verification and inspection.
    pub snapshot: StateSnapshot,
}

impl Checkpoint {
    /// Validates that this checkpoint belongs to the run being resumed:
    /// same format version, identical configuration, and the same
    /// candidate/source data (by digest).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn validate(
        &self,
        config: &PpaTunerConfig,
        candidates: &[Vec<f64>],
        source: &SourceData,
    ) -> Result<(), String> {
        if self.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
                self.version
            ));
        }
        if &self.config != config {
            return Err("checkpoint configuration differs from the tuner's".into());
        }
        let cd = digest_matrix(candidates);
        if self.candidates_digest != cd {
            return Err(format!(
                "candidate set changed since checkpoint (digest {:#x} != {:#x})",
                cd, self.candidates_digest
            ));
        }
        let sd = source_digest(source);
        if self.source_digest != sd {
            return Err(format!(
                "source data changed since checkpoint (digest {:#x} != {:#x})",
                sd, self.source_digest
            ));
        }
        Ok(())
    }

    /// Serializes to the JSON checkpoint format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization cannot fail")
    }

    /// Parses a checkpoint from its JSON form.
    ///
    /// # Errors
    ///
    /// A description of the parse failure.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("malformed checkpoint: {e}"))
    }
}

/// FNV-1a over the bit patterns of an `f64` matrix (rows delimited), used
/// to pin a checkpoint to the exact data it was created from.
pub fn digest_matrix(rows: &[Vec<f64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(rows.len() as u64);
    for row in rows {
        mix(row.len() as u64);
        for &v in row {
            mix(v.to_bits());
        }
    }
    h
}

/// Digest of a full [`SourceData`] (inputs and outputs).
pub fn source_digest(source: &SourceData) -> u64 {
    digest_matrix(source.inputs()) ^ digest_matrix(source.outputs()).rotate_left(1)
}

/// Where checkpoints are persisted and recovered from.
///
/// `&self` receivers keep the store usable through the tuner's shared
/// borrows; implementations use interior mutability where needed.
pub trait CheckpointStore {
    /// Persists a checkpoint, replacing any previous one atomically (a
    /// torn write must never shadow a complete older checkpoint).
    ///
    /// # Errors
    ///
    /// A description of the persistence failure.
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), String>;

    /// Recovers the most recent checkpoint, or `None` when the store is
    /// empty (resume then starts a fresh run).
    ///
    /// # Errors
    ///
    /// A description of the recovery failure (distinct from "empty").
    fn load(&self) -> Result<Option<Checkpoint>, String>;
}

/// In-memory store, for tests and same-process recovery drills.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    slot: RefCell<Option<Checkpoint>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently held checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.slot.borrow().clone()
    }

    /// Seeds the store with a checkpoint (e.g. one carried over from
    /// another process).
    pub fn put(&self, checkpoint: Checkpoint) {
        *self.slot.borrow_mut() = Some(checkpoint);
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), String> {
        *self.slot.borrow_mut() = Some(checkpoint.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, String> {
        Ok(self.slot.borrow().clone())
    }
}

/// File-backed store: one JSON checkpoint file, replaced atomically via a
/// sibling temp file and rename.
#[derive(Debug, Clone)]
pub struct FileCheckpointStore {
    path: PathBuf,
}

impl FileCheckpointStore {
    /// A store writing to (and reading from) `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&self, checkpoint: &Checkpoint) -> Result<(), String> {
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, checkpoint.to_json())
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("renaming into {}: {e}", self.path.display()))
    }

    fn load(&self) -> Result<Option<Checkpoint>, String> {
        match std::fs::read_to_string(&self.path) {
            Ok(s) => Checkpoint::from_json(&s).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("reading {}: {e}", self.path.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            next_iteration: 3,
            config: PpaTunerConfig::default(),
            candidates_digest: digest_matrix(&[vec![0.5], vec![1.0]]),
            source_digest: source_digest(&SourceData::empty()),
            eval_log: vec![
                EvalRecord {
                    candidate: 1,
                    outcome: EvalOutcome::Accepted {
                        qor: vec![1.0, 2.0],
                    },
                },
                EvalRecord {
                    candidate: 0,
                    outcome: EvalOutcome::Failed {
                        error: EvalError::Crash {
                            detail: "injected".into(),
                        },
                    },
                },
            ],
            snapshot: StateSnapshot {
                statuses: "up".into(),
                evaluated: 1,
                runs: 2,
                rng_state: vec![1, 2, 3, 4],
                delta: vec![0.1, 0.1],
                regions: vec![
                    UncertaintyRegion::point(&[1.0, 2.0]),
                    UncertaintyRegion::point(&[3.0, 4.0]),
                ],
                history: Vec::new(),
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ckpt = sample_checkpoint();
        let back = Checkpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn validate_rejects_version_config_and_data_drift() {
        let ckpt = sample_checkpoint();
        let candidates = vec![vec![0.5], vec![1.0]];
        let source = SourceData::empty();
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &candidates, &source)
            .is_ok());

        let mut wrong_version = ckpt.clone();
        wrong_version.version = 99;
        let e = wrong_version
            .validate(&PpaTunerConfig::default(), &candidates, &source)
            .unwrap_err();
        assert!(e.contains("version"), "{e}");

        let other_config = PpaTunerConfig {
            seed: 1234,
            ..PpaTunerConfig::default()
        };
        assert!(ckpt.validate(&other_config, &candidates, &source).is_err());

        let other_candidates = vec![vec![0.5], vec![0.9]];
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &other_candidates, &source)
            .is_err());

        let other_source = SourceData::new(vec![vec![0.0]], vec![vec![1.0, 2.0]]).unwrap();
        assert!(ckpt
            .validate(&PpaTunerConfig::default(), &candidates, &other_source)
            .is_err());
    }

    #[test]
    fn digest_is_sensitive_to_values_and_shape() {
        let base = digest_matrix(&[vec![1.0, 2.0], vec![3.0]]);
        assert_ne!(base, digest_matrix(&[vec![1.0, 2.0], vec![3.5]]));
        assert_ne!(base, digest_matrix(&[vec![1.0, 2.0, 3.0]]));
        assert_ne!(base, digest_matrix(&[vec![1.0], vec![2.0, 3.0]]));
        assert_eq!(base, digest_matrix(&[vec![1.0, 2.0], vec![3.0]]));
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryCheckpointStore::new();
        assert!(store.load().unwrap().is_none());
        let ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), ckpt);
        assert_eq!(store.latest().unwrap(), ckpt);
    }

    #[test]
    fn file_store_round_trips_and_overwrites() {
        let dir = std::env::temp_dir().join(format!("ppat-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = FileCheckpointStore::new(dir.join("run.ckpt.json"));
        assert!(store.load().unwrap().is_none());
        let mut ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        ckpt.next_iteration = 9;
        store.save(&ckpt).unwrap();
        let back = store.load().unwrap().unwrap();
        assert_eq!(back.next_iteration, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_checkpoint_file_is_an_error_not_none() {
        let dir = std::env::temp_dir().join(format!("ppat-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.ckpt.json");
        std::fs::write(&path, "{ not json").unwrap();
        let store = FileCheckpointStore::new(&path);
        assert!(store.load().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

use std::error::Error;
use std::fmt;

use gp::GpError;

/// Errors produced by the tuner.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TunerError {
    /// The candidate set or source data is malformed.
    InvalidInput {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// Name of the offending option.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The surrogate model failed to fit or predict.
    Surrogate(GpError),
}

impl fmt::Display for TunerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunerError::InvalidInput { reason } => write!(f, "invalid tuner input: {reason}"),
            TunerError::InvalidConfig { name, value } => {
                write!(f, "invalid tuner configuration: {name} = {value}")
            }
            TunerError::Surrogate(e) => write!(f, "surrogate model failure: {e}"),
        }
    }
}

impl Error for TunerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TunerError::Surrogate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for TunerError {
    fn from(e: GpError) -> Self {
        TunerError::Surrogate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TunerError::InvalidConfig {
            name: "tau",
            value: -1.0,
        };
        assert!(e.to_string().contains("tau"));
        let e = TunerError::from(GpError::InvalidTrainingData { reason: "empty" });
        assert!(e.source().is_some());
    }
}

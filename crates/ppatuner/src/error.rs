use std::error::Error;
use std::fmt;

use gp::GpError;

use crate::oracle::EvalError;

/// Errors produced by the tuner.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TunerError {
    /// The candidate set or source data is malformed.
    InvalidInput {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A configuration value is out of range.
    InvalidConfig {
        /// Name of the offending option.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The surrogate model failed to fit or predict.
    Surrogate(GpError),
    /// A tool evaluation failed in a non-recoverable way (an
    /// out-of-range index, or every candidate's failure budget
    /// exhausted). Transient failures are retried and quarantined inside
    /// the loop and never surface here.
    Evaluation(EvalError),
    /// A checkpoint could not be written, read, or replayed against the
    /// current run (version/config mismatch, divergent evaluation log,
    /// I/O failure).
    Checkpoint {
        /// Description of the problem.
        reason: String,
    },
    /// Surrogate calibration degraded (served by a last-good model) for
    /// more consecutive iterations than `degraded_fit_budget` allows.
    /// Isolated numerical failures are absorbed by the degraded-mode
    /// supervisor and never surface here; this fires only when
    /// degradation is *persistent*, i.e. the model is no longer tracking
    /// fresh observations and continuing would waste real tool runs.
    DegradationBudgetExhausted {
        /// Consecutive degraded iterations, including the one that broke
        /// the budget.
        consecutive: usize,
        /// The most recent calibration failure.
        cause: String,
    },
}

impl fmt::Display for TunerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunerError::InvalidInput { reason } => write!(f, "invalid tuner input: {reason}"),
            TunerError::InvalidConfig { name, value } => {
                write!(f, "invalid tuner configuration: {name} = {value}")
            }
            TunerError::Surrogate(e) => write!(f, "surrogate model failure: {e}"),
            TunerError::Evaluation(e) => write!(f, "tool evaluation failure: {e}"),
            TunerError::Checkpoint { reason } => write!(f, "checkpoint failure: {reason}"),
            TunerError::DegradationBudgetExhausted { consecutive, cause } => write!(
                f,
                "surrogate degraded for {consecutive} consecutive iterations \
                 (budget exhausted; last cause: {cause})"
            ),
        }
    }
}

impl Error for TunerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TunerError::Surrogate(e) => Some(e),
            TunerError::Evaluation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for TunerError {
    fn from(e: GpError) -> Self {
        TunerError::Surrogate(e)
    }
}

impl From<EvalError> for TunerError {
    fn from(e: EvalError) -> Self {
        TunerError::Evaluation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TunerError::InvalidConfig {
            name: "tau",
            value: -1.0,
        };
        assert!(e.to_string().contains("tau"));
        let e = TunerError::from(GpError::InvalidTrainingData { reason: "empty" });
        assert!(e.source().is_some());
    }

    #[test]
    fn evaluation_variant_wraps_eval_error_with_source() {
        let inner = EvalError::OutOfRange { index: 4, len: 2 };
        let e = TunerError::from(inner.clone());
        assert!(e.to_string().contains("out of range"), "{e}");
        let src = e.source().expect("Evaluation carries a source");
        assert_eq!(src.to_string(), inner.to_string());
    }

    #[test]
    fn degradation_budget_variant_displays_streak_and_cause() {
        let e = TunerError::DegradationBudgetExhausted {
            consecutive: 4,
            cause: "kernel matrix factorization failed: not positive definite".into(),
        };
        let text = e.to_string();
        assert!(text.contains("4 consecutive"), "{text}");
        assert!(text.contains("positive definite"), "{text}");
        assert!(e.source().is_none());
    }

    #[test]
    fn checkpoint_variant_displays_reason() {
        let e = TunerError::Checkpoint {
            reason: "version 7 unsupported".into(),
        };
        assert!(e.to_string().contains("version 7"), "{e}");
        assert!(e.source().is_none());
    }
}

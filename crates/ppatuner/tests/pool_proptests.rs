//! Property-based tests of the adaptive candidate pool: refinement must
//! grow the pool strictly by appending — it never rewrites existing
//! candidates and never splits a cell whose representative has already
//! been decided (so a dropped or quarantined configuration can never be
//! resurrected by the pool).

use ppatuner::{AdaptivePool, Status, UncertaintyRegion};
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = Status> {
    (0u8..4).prop_map(|k| match k {
        0 => Status::Undecided,
        1 => Status::Pareto,
        2 => Status::Dropped,
        _ => Status::Quarantined,
    })
}

/// A finite uncertainty region of the given half-width, centered at 0.
fn region(half_width: f64) -> UncertaintyRegion {
    let mut r = UncertaintyRegion::unbounded(2);
    r.intersect(&[-half_width, -half_width], &[half_width, half_width]);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn refinement_appends_and_never_resurrects(
        coords in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 2..=2), 1..10),
        statuses in prop::collection::vec(arb_status(), 10),
        widths in prop::collection::vec(0.0f64..50.0, 10),
        ceiling in 1.0f64..120.0,
        max_refines in 1usize..6,
    ) {
        let n = coords.len();
        let statuses = statuses[..n].to_vec();
        let regions: Vec<UncertaintyRegion> =
            widths[..n].iter().map(|&w| region(w)).collect();

        let mut candidates = coords.clone();
        let mut pool = AdaptivePool::new(&candidates).unwrap();
        let leaves_before = pool.leaf_count();
        let out = pool.refine(
            &mut candidates, &regions, &statuses, 0.5, ceiling, max_refines, 64);

        // Growth is append-only: the original candidates are untouched.
        prop_assert_eq!(&candidates[..n], &coords[..]);
        prop_assert_eq!(candidates.len(), n + out.splits);
        prop_assert_eq!(out.leaves, leaves_before + out.splits);
        prop_assert!(out.splits <= max_refines);

        // Splits can only come from active representatives whose region
        // diameter sits below the prior-dominated ceiling.
        let eligible = statuses
            .iter()
            .zip(&regions)
            .filter(|(s, r)| s.is_active() && r.diameter() < ceiling)
            .count();
        prop_assert!(out.splits <= eligible.min(max_refines));

        // A zero ceiling admits no leaf at all: refinement is a no-op
        // regardless of status or uncertainty.
        let mut frozen_c = coords.clone();
        let mut pool_c = AdaptivePool::new(&frozen_c).unwrap();
        let out_c = pool_c.refine(
            &mut frozen_c, &regions, &statuses, 0.5, 0.0, max_refines, 64);
        prop_assert_eq!(out_c.splits, 0);
        prop_assert_eq!(&frozen_c[..], &coords[..]);

        // With every candidate decided, refinement is a no-op: nothing
        // appended, no cell split — a decided candidate stays decided.
        let decided: Vec<Status> = statuses
            .iter()
            .map(|s| match s {
                Status::Quarantined => Status::Quarantined,
                _ => Status::Dropped,
            })
            .collect();
        let mut frozen = coords.clone();
        let mut pool2 = AdaptivePool::new(&frozen).unwrap();
        let out2 = pool2.refine(
            &mut frozen, &regions, &decided, 0.5, f64::INFINITY, max_refines, 64);
        prop_assert_eq!(out2.splits, 0);
        prop_assert_eq!(&frozen[..], &coords[..]);
        prop_assert_eq!(pool2.leaf_count(), leaves_before);
    }

    #[test]
    fn refinement_is_deterministic_for_any_input(
        coords in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 2..=2), 1..8),
        widths in prop::collection::vec(0.0f64..20.0, 8),
    ) {
        let n = coords.len();
        let statuses = vec![Status::Undecided; n];
        let regions: Vec<UncertaintyRegion> =
            widths[..n].iter().map(|&w| region(w)).collect();
        let run = || {
            let mut candidates = coords.clone();
            let mut pool = AdaptivePool::new(&candidates).unwrap();
            let out = pool.refine(
                &mut candidates, &regions, &statuses, 0.5, f64::INFINITY, 4, 64);
            (candidates, out.splits, out.leaves)
        };
        prop_assert_eq!(run(), run());
    }
}

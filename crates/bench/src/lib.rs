//! Experiment harness for the PPATuner reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index); this library holds the
//! shared plumbing: method runners with paper-scale budgets, metric
//! evaluation (hypervolume error, ADRS, tool runs), and plain-text table
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fleet;
pub mod gate;
pub mod perfrun;

use benchgen::Scenario;
use gp::optimize::FitBudget;
use obs::{Observer, NULL_SINK};
use pareto::hypervolume::{hypervolume_error, reference_point};
use pareto::metrics::adrs;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

pub use cli::{BinArgs, Sinks};

/// One method's scores on one objective space: the three columns of
/// Tables 2–3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodScore {
    /// Hypervolume error (Eq. 2) against the golden front.
    pub hv_error: f64,
    /// ADRS (Eq. 3) against the golden front.
    pub adrs: f64,
    /// Tool runs consumed.
    pub runs: usize,
}

/// The five tabulated methods, in the paper's column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// TCAD'19 active-learning GP.
    Tcad19,
    /// MLCAD'19 BO with LCB.
    Mlcad19,
    /// DAC'19 recommender.
    Dac19,
    /// ASPDAC'20 FIST.
    Aspdac20,
    /// PPATuner (this paper).
    PpaTuner,
}

impl Method {
    /// All methods in table order.
    pub const ALL: [Method; 5] = [
        Method::Tcad19,
        Method::Mlcad19,
        Method::Dac19,
        Method::Aspdac20,
        Method::PpaTuner,
    ];

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Tcad19 => "TCAD'19",
            Method::Mlcad19 => "MLCAD'19",
            Method::Dac19 => "DAC'19",
            Method::Aspdac20 => "ASPDAC'20",
            Method::PpaTuner => "PPATuner",
        }
    }
}

/// Per-scenario experiment budgets, mirroring the paper's run counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budgets {
    /// Fixed budget of MLCAD'19 and ASPDAC'20 (400 / 70 in the paper).
    pub fixed: usize,
    /// Budget cap of TCAD'19 (it stops on convergence; ~508 / ~92).
    pub tcad_cap: usize,
    /// Budget of DAC'19 (the hungriest method; ~600 / ~131).
    pub dac_budget: usize,
    /// PPATuner initialization samples (≤ 5 % of the target data).
    pub ppatuner_init: usize,
    /// PPATuner iteration cap.
    pub ppatuner_iters: usize,
}

impl Budgets {
    /// Paper-scale budgets for Scenario One (Target1, 5000 points).
    pub fn scenario_one() -> Self {
        Budgets {
            fixed: 400,
            tcad_cap: 520,
            dac_budget: 600,
            ppatuner_init: 200,
            ppatuner_iters: 60,
        }
    }

    /// Paper-scale budgets for Scenario Two (Target2, 727 points).
    pub fn scenario_two() -> Self {
        Budgets {
            fixed: 70,
            tcad_cap: 95,
            dac_budget: 131,
            ppatuner_init: 36,
            ppatuner_iters: 26,
        }
    }

    /// Scaled-down budgets proportional to a reduced target size (for
    /// smoke tests of the harness itself).
    pub fn scaled(target_points: usize, reference_points: usize, reference: Budgets) -> Self {
        let f = |v: usize| ((v * target_points) / reference_points).max(4);
        Budgets {
            fixed: f(reference.fixed),
            tcad_cap: f(reference.tcad_cap),
            dac_budget: f(reference.dac_budget),
            ppatuner_init: f(reference.ppatuner_init).max(4),
            ppatuner_iters: f(reference.ppatuner_iters).max(4),
        }
    }
}

/// Scores the true QoR values of a predicted Pareto set against the
/// golden front of the target benchmark.
///
/// # Panics
///
/// Panics when the metric computation fails (degenerate golden front) —
/// which would indicate a broken benchmark, not user error.
pub fn score(
    scenario: &Scenario,
    space: ObjectiveSpace,
    pareto_indices: &[usize],
    runs: usize,
) -> MethodScore {
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = reference_point(&table, 1.1).expect("non-empty target table");
    let predicted: Vec<Vec<f64>> = pareto_indices.iter().map(|&i| table[i].clone()).collect();
    let hv = hypervolume_error(&golden, &predicted, &reference)
        .expect("golden front has positive hypervolume");
    let dist = adrs(&golden, &predicted).expect("metric inputs are valid");
    MethodScore {
        hv_error: hv,
        adrs: dist,
        runs,
    }
}

/// Runs one method on one objective space of a scenario.
///
/// # Panics
///
/// Panics when a method errors — budgets and inputs are
/// harness-controlled, so an error is a bug worth crashing on.
pub fn run_method(
    scenario: &Scenario,
    space: ObjectiveSpace,
    method: Method,
    budgets: &Budgets,
    seed: u64,
) -> MethodScore {
    run_method_observed(scenario, space, method, budgets, seed, &NULL_SINK)
}

/// Like [`run_method`], but streams PPATuner's trace events to
/// `observer` (the baseline methods are not instrumented and run silently).
///
/// # Panics
///
/// Same as [`run_method`].
pub fn run_method_observed(
    scenario: &Scenario,
    space: ObjectiveSpace,
    method: Method,
    budgets: &Budgets,
    seed: u64,
    observer: &dyn Observer,
) -> MethodScore {
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let mut oracle = VecOracle::new(table);
    let (indices, runs) = match method {
        Method::Tcad19 => {
            let params = baselines::Tcad19Params {
                budget: budgets.tcad_cap,
                initial_samples: (budgets.tcad_cap / 3).max(8),
                seed,
                ..Default::default()
            };
            let r = baselines::Tcad19::new(params)
                .tune(&candidates, &mut oracle)
                .expect("tcad19 runs");
            (r.pareto_indices, r.runs)
        }
        Method::Mlcad19 => {
            let params = baselines::Mlcad19Params {
                budget: budgets.fixed,
                initial_samples: (budgets.fixed / 8).max(8),
                screen_size: 512,
                refit_every: 25,
                seed,
                ..Default::default()
            };
            let r = baselines::Mlcad19::new(params)
                .tune(&candidates, &mut oracle)
                .expect("mlcad19 runs");
            (r.pareto_indices, r.runs)
        }
        Method::Dac19 => {
            let params = baselines::Dac19Params {
                budget: budgets.dac_budget,
                initial_samples: (budgets.dac_budget / 6).max(8),
                batch: (budgets.dac_budget / 40).max(2),
                seed,
                ..Default::default()
            };
            let r = baselines::Dac19::new(params)
                .tune(&candidates, &mut oracle)
                .expect("dac19 runs");
            (r.pareto_indices, r.runs)
        }
        Method::Aspdac20 => {
            let (sx, sy) = scenario.source_xy(space);
            let source = SourceData::new(sx, sy).expect("source data is consistent");
            let params = baselines::Aspdac20Params {
                budget: budgets.fixed,
                initial_samples: (budgets.fixed / 5).max(8),
                batch: (budgets.fixed / 30).max(2),
                seed,
                ..Default::default()
            };
            let r = baselines::Aspdac20::new(params)
                .tune(&source, &candidates, &mut oracle)
                .expect("aspdac20 runs");
            (r.pareto_indices, r.runs)
        }
        Method::PpaTuner => {
            let (sx, sy) = scenario.source_xy(space);
            let source = SourceData::new(sx, sy).expect("source data is consistent");
            let config = PpaTunerConfig {
                initial_samples: budgets.ppatuner_init,
                max_iterations: budgets.ppatuner_iters,
                refit_every: 25,
                fit_budget: FitBudget {
                    restarts: 2,
                    evals_per_restart: 80,
                },
                seed,
                ..Default::default()
            };
            let r = PpaTuner::new(config)
                .run_observed(&source, &candidates, &mut oracle, observer)
                .expect("ppatuner runs");
            (r.pareto_indices, r.runs)
        }
    };
    score(scenario, space, &indices, runs)
}

/// Renders a Tables-2/3-shaped comparison as plain text: one row per
/// objective space, HV/ADRS/Runs per method, plus Average and Ratio rows.
pub fn render_table(title: &str, rows: &[(ObjectiveSpace, Vec<MethodScore>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<18}", "Multi-objective");
    for m in Method::ALL {
        let _ = write!(out, " | {:^26}", m.label());
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<18}", "");
    for _ in Method::ALL {
        let _ = write!(out, " | {:>8} {:>8} {:>8}", "HV", "ADRS", "Runs");
    }
    let _ = writeln!(out);

    let mut sums = vec![(0.0, 0.0, 0.0); Method::ALL.len()];
    for (space, scores) in rows {
        let _ = write!(out, "{:<18}", space.label());
        for (j, s) in scores.iter().enumerate() {
            let _ = write!(out, " | {:>8.3} {:>8.3} {:>8}", s.hv_error, s.adrs, s.runs);
            sums[j].0 += s.hv_error;
            sums[j].1 += s.adrs;
            sums[j].2 += s.runs as f64;
        }
        let _ = writeln!(out);
    }
    let n = rows.len().max(1) as f64;
    let _ = write!(out, "{:<18}", "Average");
    for (hv, ad, r) in &sums {
        let _ = write!(out, " | {:>8.3} {:>8.3} {:>8.1}", hv / n, ad / n, r / n);
    }
    let _ = writeln!(out);
    // Ratio row: each method relative to PPATuner (last column).
    let base = sums.last().copied().unwrap_or((1.0, 1.0, 1.0));
    let _ = write!(out, "{:<18}", "Ratio");
    for (hv, ad, r) in &sums {
        let _ = write!(
            out,
            " | {:>8.3} {:>8.3} {:>8.3}",
            hv / base.0.max(1e-12),
            ad / base.1.max(1e-12),
            r / base.2.max(1e-12)
        );
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_proportionally() {
        let b = Budgets::scaled(500, 5000, Budgets::scenario_one());
        assert_eq!(b.fixed, 40);
        assert_eq!(b.dac_budget, 60);
        assert!(b.ppatuner_init >= 4);
    }

    #[test]
    fn method_labels_match_paper() {
        assert_eq!(Method::Tcad19.label(), "TCAD'19");
        assert_eq!(Method::PpaTuner.label(), "PPATuner");
        assert_eq!(Method::ALL.len(), 5);
    }

    #[test]
    fn render_table_shape() {
        let rows = vec![(
            ObjectiveSpace::AreaDelay,
            vec![
                MethodScore {
                    hv_error: 0.1,
                    adrs: 0.05,
                    runs: 100
                };
                Method::ALL.len()
            ],
        )];
        let txt = render_table("Table X", &rows);
        assert!(txt.contains("Table X"));
        assert!(txt.contains("Area-Delay"));
        assert!(txt.contains("Average"));
        assert!(txt.contains("Ratio"));
        assert!(txt.contains("PPATuner"));
    }

    #[test]
    fn smoke_scenario_two_tiny() {
        // End-to-end harness smoke test at a tiny scale: every method
        // completes and produces finite metrics.
        let scenario = benchgen::Scenario::two_with_counts(3, 80, 60).with_source_budget(40);
        let budgets = Budgets {
            fixed: 12,
            tcad_cap: 14,
            dac_budget: 18,
            ppatuner_init: 8,
            ppatuner_iters: 6,
        };
        for m in Method::ALL {
            let s = run_method(&scenario, ObjectiveSpace::PowerDelay, m, &budgets, 1);
            assert!(s.hv_error.is_finite(), "{m:?}");
            assert!(s.adrs.is_finite(), "{m:?}");
            assert!(s.runs > 0, "{m:?}");
        }
    }
}

//! Trace ingestion and fleet-view aggregation for `trace_report`.
//!
//! A *fleet* is a directory of JSONL traces — one file per tuning run,
//! e.g. a seed sweep or a nightly farm. This module parses each trace
//! (strictly by default, skip-and-count under `--lenient`), reduces it
//! to a [`RunSummary`], and renders cross-run aggregates: hypervolume
//! convergence quantiles, evaluation failure/retry/quarantine rates, a
//! per-phase wall-clock breakdown from the causal spans, and the
//! slowest spans across the whole fleet.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use obs::Event;

/// A malformed trace line: where it is and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The parser's complaint.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// One parsed JSONL trace.
#[derive(Debug, Default)]
pub struct ParsedTrace {
    /// Events in file order.
    pub events: Vec<Event>,
    /// Malformed lines skipped (always 0 in strict mode).
    pub skipped: usize,
}

/// Parses a JSONL trace. Blank lines are ignored. In strict mode
/// (`lenient == false`) the first malformed line aborts the parse with
/// its line number; in lenient mode malformed lines are skipped and
/// counted.
///
/// # Errors
///
/// Returns the first [`ParseError`] in strict mode.
pub fn parse_jsonl(text: &str, lenient: bool) -> Result<ParsedTrace, ParseError> {
    let mut out = ParsedTrace::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(line) {
            Ok(e) => out.events.push(e),
            Err(e) if lenient => {
                let _ = e;
                out.skipped += 1;
            }
            Err(e) => {
                return Err(ParseError {
                    line: idx + 1,
                    message: format!("unparseable event: {e}"),
                });
            }
        }
    }
    Ok(out)
}

/// One span's closing record, kept for the fleet-wide slowest-span view.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace (file stem) the span belongs to.
    pub run: String,
    /// Span name (`run`, `iteration`, `gp_fit`, ...).
    pub name: String,
    /// Causal span id within its run.
    pub id: u64,
    /// Wall-clock duration.
    pub duration_s: f64,
}

/// Everything the fleet view needs from one run's trace.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Display name (file stem).
    pub name: String,
    /// Total events in the trace.
    pub events: usize,
    /// Iterations completed (`IterationEnd` count).
    pub iterations: usize,
    /// Accepted evaluations (`ToolEval` count).
    pub tool_evals: usize,
    /// Failed attempts (`EvalFailed` count).
    pub failures: usize,
    /// Retries issued (`EvalRetry` count).
    pub retries: usize,
    /// Candidates quarantined.
    pub quarantines: usize,
    /// Checkpoints written.
    pub checkpoints: usize,
    /// Hypervolume after each iteration, in order.
    pub hv_trajectory: Vec<f64>,
    /// Per-span-name wall clock: name → (count, total seconds).
    pub phase_seconds: BTreeMap<String, (usize, f64)>,
    /// Every closed span, for the slowest-span ranking.
    pub spans: Vec<SpanRecord>,
    /// Summed resource counters across the run's `ResourceSample`s:
    /// (chol_flops, kernel_assemblies, fitcache_hits, fitcache_misses).
    pub resources: (u64, u64, u64, u64),
    /// Summed predict-sweep counters across the run's `ResourceSample`s:
    /// (cache hits, cache misses, cache evictions, chunks dispatched).
    /// All zero for traces predating the predict cache.
    pub predict_resources: (u64, u64, u64, u64),
    /// Adaptive-pool splits across all `PoolRefine` passes.
    pub pool_splits: usize,
    /// Final (pool size, effective pool) from the last `PoolRefine`,
    /// `None` when the run used a fixed pool.
    pub pool_final: Option<(usize, f64)>,
    /// Predict-path usage from `PredictMode`: mode → iterations.
    pub predict_modes: BTreeMap<String, usize>,
    /// Degraded surrogate calibrations (`DegradedFit` count).
    pub degraded_fits: usize,
    /// Checkpoint-chain recovery scans that skipped damaged entries
    /// (`RecoveryScan` count).
    pub recovery_scans: usize,
    /// Watchdog deadline firings (`WatchdogFired` count).
    pub watchdog_firings: usize,
}

impl RunSummary {
    /// The run's final hypervolume, when it iterated at all.
    pub fn final_hv(&self) -> Option<f64> {
        self.hv_trajectory.last().copied()
    }
}

/// Reduces one trace to its [`RunSummary`].
pub fn summarize_run(name: &str, events: &[Event]) -> RunSummary {
    let mut s = RunSummary {
        name: name.to_string(),
        events: events.len(),
        ..RunSummary::default()
    };
    for e in events {
        match e {
            Event::IterationEnd { hypervolume, .. } => {
                s.iterations += 1;
                s.hv_trajectory.push(*hypervolume);
            }
            Event::ToolEval { .. } => s.tool_evals += 1,
            Event::EvalFailed { .. } => s.failures += 1,
            Event::EvalRetry { .. } => s.retries += 1,
            Event::CandidateQuarantined { .. } => s.quarantines += 1,
            Event::Checkpoint { .. } => s.checkpoints += 1,
            Event::SpanEnd {
                id,
                name: span_name,
                duration_s,
            } => {
                let entry = s.phase_seconds.entry(span_name.clone()).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += duration_s;
                s.spans.push(SpanRecord {
                    run: name.to_string(),
                    name: span_name.clone(),
                    id: *id,
                    duration_s: *duration_s,
                });
            }
            Event::ResourceSample {
                chol_flops,
                kernel_assemblies,
                fitcache_hits,
                fitcache_misses,
                predict_cache_hits,
                predict_cache_misses,
                predict_cache_evictions,
                predict_chunks,
                ..
            } => {
                s.resources.0 += chol_flops;
                s.resources.1 += kernel_assemblies;
                s.resources.2 += fitcache_hits;
                s.resources.3 += fitcache_misses;
                s.predict_resources.0 += predict_cache_hits;
                s.predict_resources.1 += predict_cache_misses;
                s.predict_resources.2 += predict_cache_evictions;
                s.predict_resources.3 += predict_chunks;
            }
            Event::PoolRefine {
                splits,
                pool_size,
                effective_pool,
                ..
            } => {
                s.pool_splits += splits;
                s.pool_final = Some((*pool_size, *effective_pool));
            }
            Event::PredictMode { mode, .. } => {
                *s.predict_modes.entry(mode.clone()).or_default() += 1;
            }
            Event::DegradedFit { .. } => s.degraded_fits += 1,
            Event::RecoveryScan { .. } => s.recovery_scans += 1,
            Event::WatchdogFired { .. } => s.watchdog_firings += 1,
            _ => {}
        }
    }
    s
}

/// Nearest-rank quantile of an unsorted, non-empty sample.
fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Cross-run aggregates over a fleet of [`RunSummary`]s.
#[derive(Debug, Default)]
pub struct FleetReport {
    /// One summary per ingested trace, in directory order.
    pub runs: Vec<RunSummary>,
}

impl FleetReport {
    /// Renders the fleet view as plain text: header, hv-convergence
    /// quantiles, evaluation health, per-phase time breakdown, and the
    /// `top_k` slowest spans.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let total_events: usize = self.runs.iter().map(|r| r.events).sum();
        let _ = writeln!(
            out,
            "fleet report: {} runs, {} events",
            self.runs.len(),
            total_events
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "  {:<24} {:>6} events  {:>3} iters  {:>4} evals  hv {}",
                r.name,
                r.events,
                r.iterations,
                r.tool_evals,
                r.final_hv()
                    .map_or_else(|| "   -".into(), |h| format!("{h:.4}")),
            );
        }

        let finals: Vec<f64> = self.runs.iter().filter_map(RunSummary::final_hv).collect();
        if !finals.is_empty() {
            let _ = writeln!(out, "\nhypervolume convergence ({} runs):", finals.len());
            let _ = writeln!(
                out,
                "  final hv   min {:.4}  p25 {:.4}  median {:.4}  p75 {:.4}  max {:.4}",
                quantile(&finals, 0.0),
                quantile(&finals, 0.25),
                quantile(&finals, 0.5),
                quantile(&finals, 0.75),
                quantile(&finals, 1.0),
            );
            let iters: Vec<f64> = self
                .runs
                .iter()
                .filter(|r| r.iterations > 0)
                .map(|r| r.iterations as f64)
                .collect();
            let _ = writeln!(
                out,
                "  iterations min {:.0}  median {:.0}  max {:.0}",
                quantile(&iters, 0.0),
                quantile(&iters, 0.5),
                quantile(&iters, 1.0),
            );
        }

        let attempts: usize = self.runs.iter().map(|r| r.tool_evals + r.failures).sum();
        let failures: usize = self.runs.iter().map(|r| r.failures).sum();
        let retries: usize = self.runs.iter().map(|r| r.retries).sum();
        let quarantines: usize = self.runs.iter().map(|r| r.quarantines).sum();
        let checkpoints: usize = self.runs.iter().map(|r| r.checkpoints).sum();
        let _ = writeln!(out, "\nevaluation health:");
        let pct = |n: usize| {
            if attempts == 0 {
                0.0
            } else {
                100.0 * n as f64 / attempts as f64
            }
        };
        let _ = writeln!(
            out,
            "  {attempts} attempts: {failures} failed ({:.1}%), {retries} retries ({:.1}%), \
             {quarantines} quarantined; {checkpoints} checkpoints",
            pct(failures),
            pct(retries),
        );

        let degraded: usize = self.runs.iter().map(|r| r.degraded_fits).sum();
        let scans: usize = self.runs.iter().map(|r| r.recovery_scans).sum();
        let watchdogs: usize = self.runs.iter().map(|r| r.watchdog_firings).sum();
        if degraded + scans + watchdogs > 0 {
            let affected = self
                .runs
                .iter()
                .filter(|r| r.degraded_fits + r.recovery_scans + r.watchdog_firings > 0)
                .count();
            let _ = writeln!(
                out,
                "\nresilience ({affected} of {} runs affected):",
                self.runs.len()
            );
            let _ = writeln!(
                out,
                "  {degraded} degraded fits, {scans} recovery scans past damaged checkpoints, \
                 {watchdogs} watchdog firings"
            );
        }

        let mut phases: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
        for r in &self.runs {
            for (name, (count, secs)) in &r.phase_seconds {
                let entry = phases.entry(name).or_insert((0, 0.0));
                entry.0 += count;
                entry.1 += secs;
            }
        }
        if !phases.is_empty() {
            // Shares are against the summed leaf-ish phases; the `run`
            // span double-counts its children, so report raw totals and
            // leave interpretation to the reader.
            let _ = writeln!(out, "\nper-phase time (causal spans, all runs):");
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>12} {:>12}",
                "span", "count", "total s", "mean ms"
            );
            for (name, (count, secs)) in &phases {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>8} {:>12.3} {:>12.2}",
                    name,
                    count,
                    secs,
                    secs / (*count).max(1) as f64 * 1e3
                );
            }
        }

        let mut slowest: Vec<&SpanRecord> = self.runs.iter().flat_map(|r| r.spans.iter()).collect();
        slowest.sort_by(|a, b| {
            b.duration_s
                .partial_cmp(&a.duration_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if !slowest.is_empty() && top_k > 0 {
            let _ = writeln!(out, "\nslowest spans (top {top_k}):");
            for rec in slowest.iter().take(top_k) {
                let _ = writeln!(
                    out,
                    "  {:>10.1} ms  {:<12} #{:<5} {}",
                    rec.duration_s * 1e3,
                    rec.name,
                    rec.id,
                    rec.run
                );
            }
        }

        let adaptive: Vec<&RunSummary> = self
            .runs
            .iter()
            .filter(|r| r.pool_final.is_some())
            .collect();
        if !adaptive.is_empty() {
            let splits: usize = adaptive.iter().map(|r| r.pool_splits).sum();
            let effs: Vec<f64> = adaptive
                .iter()
                .filter_map(|r| r.pool_final.map(|(_, e)| e))
                .collect();
            let sizes: Vec<f64> = adaptive
                .iter()
                .filter_map(|r| r.pool_final.map(|(n, _)| n as f64))
                .collect();
            let _ = writeln!(
                out,
                "\nadaptive pools ({} of {} runs): {splits} splits total",
                adaptive.len(),
                self.runs.len()
            );
            let _ = writeln!(
                out,
                "  final pool size   min {:.0}  median {:.0}  max {:.0}",
                quantile(&sizes, 0.0),
                quantile(&sizes, 0.5),
                quantile(&sizes, 1.0),
            );
            let _ = writeln!(
                out,
                "  effective pool    min {:.0}  median {:.0}  max {:.0}",
                quantile(&effs, 0.0),
                quantile(&effs, 0.5),
                quantile(&effs, 1.0),
            );
            let mut modes: BTreeMap<&str, usize> = BTreeMap::new();
            for r in &self.runs {
                for (mode, iters) in &r.predict_modes {
                    *modes.entry(mode).or_default() += iters;
                }
            }
            if !modes.is_empty() {
                let parts: Vec<String> = modes.iter().map(|(m, n)| format!("{m} {n}")).collect();
                let _ = writeln!(
                    out,
                    "  predict path usage (iterations): {}",
                    parts.join(", ")
                );
            }
        }

        let flops: u64 = self.runs.iter().map(|r| r.resources.0).sum();
        let kernels: u64 = self.runs.iter().map(|r| r.resources.1).sum();
        let hits: u64 = self.runs.iter().map(|r| r.resources.2).sum();
        let misses: u64 = self.runs.iter().map(|r| r.resources.3).sum();
        if flops + kernels + hits + misses > 0 {
            let _ = writeln!(
                out,
                "\nresources: {flops} Cholesky flops, {kernels} kernel assemblies, \
                 fitcache {hits} hits / {misses} misses"
            );
        }
        let p_hits: u64 = self.runs.iter().map(|r| r.predict_resources.0).sum();
        let p_misses: u64 = self.runs.iter().map(|r| r.predict_resources.1).sum();
        let p_evict: u64 = self.runs.iter().map(|r| r.predict_resources.2).sum();
        let p_chunks: u64 = self.runs.iter().map(|r| r.predict_resources.3).sum();
        if p_hits + p_misses + p_evict + p_chunks > 0 {
            let served = p_hits + p_misses;
            let rate = if served > 0 {
                100.0 * p_hits as f64 / served as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "predict sweep: cache {p_hits} hits / {p_misses} misses ({rate:.1}% hit), \
                 {p_evict} evictions, {p_chunks} chunks"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_run(hv_final: f64, slow_ms: f64) -> Vec<Event> {
        vec![
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "gp_fit".into(),
            },
            Event::SpanEnd {
                id: 2,
                name: "gp_fit".into(),
                duration_s: slow_ms / 1e3,
            },
            Event::ToolEval {
                iteration: 0,
                candidate: 0,
                qor: vec![1.0, 2.0],
                duration_s: 0.01,
            },
            Event::EvalFailed {
                iteration: 0,
                candidate: 1,
                attempt: 1,
                kind: "timeout".into(),
                detail: "x".into(),
            },
            Event::ResourceSample {
                iteration: 0,
                chol_flops: 100,
                chol_panels: 1,
                tri_solve_rhs: 5,
                fitcache_hits: 3,
                fitcache_misses: 1,
                kernel_assemblies: 2,
                predict_cache_hits: 9,
                predict_cache_misses: 4,
                predict_cache_evictions: 2,
                predict_chunks: 6,
            },
            Event::IterationEnd {
                iteration: 0,
                runs: 1,
                pareto: 0,
                dropped: 0,
                undecided: 1,
                hypervolume: hv_final,
                duration_s: 0.1,
                gp_fit_s: 0.05,
                predict_s: 0.01,
            },
            Event::SpanEnd {
                id: 1,
                name: "run".into(),
                duration_s: slow_ms / 1e3 + 0.001,
            },
        ]
    }

    #[test]
    fn strict_parse_reports_line_numbers() {
        let text = "{\"Message\":{\"text\":\"ok\"}}\n\nnot json\n";
        let err = parse_jsonl(text, false).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unparseable"), "{err}");
    }

    #[test]
    fn lenient_parse_skips_and_counts() {
        let text = "{\"Message\":{\"text\":\"ok\"}}\nnot json\n{\"Message\":{\"text\":\"ok2\"}}\n";
        let parsed = parse_jsonl(text, true).expect("lenient never errors");
        assert_eq!(parsed.events.len(), 2);
        assert_eq!(parsed.skipped, 1);
    }

    #[test]
    fn summarize_run_extracts_everything() {
        let s = summarize_run("a", &mini_run(0.5, 40.0));
        assert_eq!(s.iterations, 1);
        assert_eq!(s.tool_evals, 1);
        assert_eq!(s.failures, 1);
        assert_eq!(s.final_hv(), Some(0.5));
        assert_eq!(s.phase_seconds["gp_fit"].0, 1);
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.resources, (100, 2, 3, 1));
        assert_eq!(s.predict_resources, (9, 4, 2, 6));
    }

    #[test]
    fn fleet_report_renders_aggregate_sections() {
        let runs = vec![
            summarize_run("seed-1", &mini_run(0.40, 10.0)),
            summarize_run("seed-2", &mini_run(0.50, 80.0)),
            summarize_run("seed-3", &mini_run(0.60, 30.0)),
        ];
        let text = FleetReport { runs }.render(2);
        assert!(text.contains("fleet report: 3 runs"), "{text}");
        assert!(text.contains("hypervolume convergence (3 runs)"), "{text}");
        assert!(text.contains("median 0.5000"), "{text}");
        assert!(text.contains("evaluation health"), "{text}");
        assert!(text.contains("6 attempts: 3 failed (50.0%)"), "{text}");
        assert!(text.contains("per-phase time"), "{text}");
        assert!(text.contains("gp_fit"), "{text}");
        assert!(text.contains("slowest spans (top 2)"), "{text}");
        // The fleet-wide slowest span is seed-2's 80 ms gp_fit.
        let slow_line = text
            .lines()
            .skip_while(|l| !l.contains("slowest spans"))
            .nth(1)
            .expect("a slowest-span line");
        assert!(slow_line.contains("seed-2"), "{slow_line}");
        assert!(text.contains("300 Cholesky flops"), "{text}");
        // 3 runs × (9 hits, 4 misses): 27/39 served from cache = 69.2%.
        assert!(
            text.contains("predict sweep: cache 27 hits / 12 misses (69.2% hit)"),
            "{text}"
        );
        assert!(text.contains("6 evictions, 18 chunks"), "{text}");
    }

    #[test]
    fn pool_events_reach_the_fleet_view() {
        let mut events = mini_run(0.5, 10.0);
        events.push(Event::PoolRefine {
            iteration: 0,
            splits: 3,
            leaves: 12,
            pool_size: 12,
            effective_pool: 64.0,
        });
        events.push(Event::PredictMode {
            iteration: 0,
            train_size: 300,
            subset_size: 128,
            queries: 40,
            mode: "subset".into(),
        });
        let s = summarize_run("pool-run", &events);
        assert_eq!(s.pool_splits, 3);
        assert_eq!(s.pool_final, Some((12, 64.0)));
        assert_eq!(s.predict_modes["subset"], 1);
        let fixed = summarize_run("fixed-run", &mini_run(0.4, 5.0));
        assert_eq!(fixed.pool_final, None);
        let text = FleetReport {
            runs: vec![s, fixed],
        }
        .render(2);
        assert!(
            text.contains("adaptive pools (1 of 2 runs): 3 splits total"),
            "{text}"
        );
        assert!(text.contains("effective pool"), "{text}");
        assert!(text.contains("subset 1"), "{text}");
    }

    #[test]
    fn resilience_events_reach_the_fleet_view() {
        let mut events = mini_run(0.5, 10.0);
        events.push(Event::DegradedFit {
            iteration: 3,
            objective: 0,
            cause: "kernel matrix factorization failed".into(),
            mode: "refit-reused-hypers".into(),
            consecutive: 1,
        });
        events.push(Event::RecoveryScan {
            scanned: 3,
            skipped: 2,
            next_iteration: Some(4),
        });
        events.push(Event::WatchdogFired {
            iteration: 5,
            candidate: 7,
            attempt: 1,
            deadline_s: 30.0,
        });
        let s = summarize_run("chaos-run", &events);
        assert_eq!(s.degraded_fits, 1);
        assert_eq!(s.recovery_scans, 1);
        assert_eq!(s.watchdog_firings, 1);
        let clean = summarize_run("clean-run", &mini_run(0.4, 5.0));
        assert_eq!(clean.degraded_fits, 0);
        let text = FleetReport {
            runs: vec![s, clean],
        }
        .render(2);
        assert!(text.contains("resilience (1 of 2 runs affected)"), "{text}");
        assert!(
            text.contains(
                "1 degraded fits, 1 recovery scans past damaged checkpoints, 1 watchdog firings"
            ),
            "{text}"
        );
        // Clean fleets keep their report unchanged.
        let quiet = FleetReport {
            runs: vec![summarize_run("q", &mini_run(0.4, 5.0))],
        }
        .render(2);
        assert!(!quiet.contains("resilience"), "{quiet}");
    }

    #[test]
    fn quantile_is_nearest_rank() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
    }
}

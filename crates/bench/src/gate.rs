//! Noise-aware perf-regression gate over `BENCH_gp.json` history.
//!
//! The `perf` benchmark measures machine-dependent wall clocks, so raw
//! times cannot be compared across CI hosts. What *is* comparable is the
//! **speedup ratio** of each optimized hot path against its frozen
//! pre-overhaul baseline, measured back-to-back on the same machine: a
//! real regression in the optimized path drags its ratio toward 1.0
//! wherever it runs. The gate therefore compares fresh ratios against
//! the median of mode-matched history entries with a generous tolerance
//! ([`GateConfig::min_speedup_ratio`], default 0.5 — smoke sizes are
//! tiny and noisy), and separately pins the tuner scenario's `tool_runs`
//! exactly: that count is deterministic per mode, so any change is
//! behavioral drift, not noise.
//!
//! With no mode-matched history the gate **bootstraps**: it passes and
//! records the fresh entry as the first reference point.

use serde::{Deserialize, Serialize};

use crate::perfrun::SizeResult;

/// One size's gate-relevant numbers, as stored in the history array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateSize {
    /// Size label (`smoke`, `small`, ...).
    pub name: String,
    /// Hyper-parameter search speedup vs the frozen baseline.
    pub search_speedup: f64,
    /// Incremental-conditioning speedup vs a full refit.
    pub condition_speedup: f64,
    /// Batch-prediction speedup vs the scalar loop.
    pub batch_speedup: f64,
    /// Predict-sweep data-parallel speedup vs the serial sweep. Absent
    /// in pre-sweep history entries, where it parses as 0 and the gate
    /// skips the metric rather than comparing against a zero median.
    #[serde(default)]
    pub predict_par_speedup: f64,
    /// Predict-sweep cached-incremental speedup vs the serial
    /// from-scratch sweep (same `#[serde(default)]` back-compat rule).
    #[serde(default)]
    pub predict_cached_speedup: f64,
    /// Tuner scenario wall clock (recorded, not gated — machine-bound).
    pub tuner_total_s: f64,
    /// Tuner scenario tool runs (gated exactly — deterministic).
    pub tool_runs: usize,
}

/// One history entry: the gate numbers of one `perf` execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateEntry {
    /// `smoke` or `full` — entries only compare within a mode.
    pub mode: String,
    /// The benchmark seed.
    pub seed: u64,
    /// Per-size numbers.
    pub sizes: Vec<GateSize>,
}

impl GateEntry {
    /// Builds an entry from a fresh measurement.
    pub fn from_results(mode: &str, seed: u64, results: &[SizeResult]) -> Self {
        GateEntry {
            mode: mode.to_string(),
            seed,
            sizes: results
                .iter()
                .map(|r| GateSize {
                    name: r.name.clone(),
                    search_speedup: r.search_speedup,
                    condition_speedup: r.condition_speedup,
                    batch_speedup: r.batch_speedup,
                    predict_par_speedup: r.predict_par_speedup,
                    predict_cached_speedup: r.predict_cached_speedup,
                    tuner_total_s: r.tuner_total_s,
                    tool_runs: r.tool_runs,
                })
                .collect(),
        }
    }
}

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// A fresh speedup must reach at least this fraction of the
    /// mode-matched history median. 0.5 tolerates scheduler noise on
    /// tiny smoke sizes while still catching a hot path that lost its
    /// advantage (ratios collapse toward 1.0 from several ×).
    pub min_speedup_ratio: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            min_speedup_ratio: 0.5,
        }
    }
}

/// How the gate concluded (when it passed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOutcome {
    /// No mode-matched history: the fresh entry becomes the reference.
    Bootstrap,
    /// Compared against history; `checks` individual comparisons held.
    Pass {
        /// Metric comparisons performed.
        checks: usize,
    },
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Compares a fresh entry against mode-matched history.
///
/// # Errors
///
/// Returns every violated comparison, formatted for the CI log.
pub fn evaluate(
    fresh: &GateEntry,
    history: &[GateEntry],
    config: &GateConfig,
) -> Result<GateOutcome, Vec<String>> {
    let matched: Vec<&GateEntry> = history.iter().filter(|e| e.mode == fresh.mode).collect();
    if matched.is_empty() {
        return Ok(GateOutcome::Bootstrap);
    }
    let mut violations = Vec::new();
    let mut checks = 0usize;
    for size in &fresh.sizes {
        let past: Vec<&GateSize> = matched
            .iter()
            .flat_map(|e| e.sizes.iter())
            .filter(|s| s.name == size.name)
            .collect();
        if past.is_empty() {
            continue;
        }
        type MetricReader = fn(&GateSize) -> f64;
        let metrics: [(&str, f64, MetricReader); 5] = [
            ("search", size.search_speedup, |s| s.search_speedup),
            ("condition", size.condition_speedup, |s| s.condition_speedup),
            ("batch_predict", size.batch_speedup, |s| s.batch_speedup),
            ("predict_par", size.predict_par_speedup, |s| {
                s.predict_par_speedup
            }),
            ("predict_cached", size.predict_cached_speedup, |s| {
                s.predict_cached_speedup
            }),
        ];
        for (label, fresh_value, read) in metrics {
            // Entries recorded before a metric existed deserialize it as
            // 0 (`#[serde(default)]`); a speedup is positive by
            // construction, so only positive values are real
            // measurements. A metric with no history yet is skipped, not
            // bootstrapped against a zero median.
            let mut values: Vec<f64> = past.iter().map(|s| read(s)).filter(|v| *v > 0.0).collect();
            if values.is_empty() {
                continue;
            }
            let med = median(&mut values);
            let floor = config.min_speedup_ratio * med;
            checks += 1;
            if !(fresh_value.is_finite() && fresh_value >= floor) {
                violations.push(format!(
                    "{}/{label}: speedup {fresh_value:.2}x fell below {floor:.2}x \
                     ({}% of the history median {med:.2}x over {} entries)",
                    size.name,
                    (config.min_speedup_ratio * 100.0).round(),
                    past.len(),
                ));
            }
        }
        // Behavioral drift: the scenario's tool-run count is seeded and
        // deterministic, so it must match the most recent reference.
        let reference = past.last().expect("non-empty past");
        checks += 1;
        if size.tool_runs != reference.tool_runs {
            violations.push(format!(
                "{}/tuner_scenario: tool_runs {} != recorded {} — the tuner's \
                 behavior changed, re-bless the benchmark history if intended",
                size.name, size.tool_runs, reference.tool_runs,
            ));
        }
    }
    if violations.is_empty() {
        Ok(GateOutcome::Pass { checks })
    } else {
        Err(violations)
    }
}

/// How many history entries to keep per mode; older ones age out so one
/// noisy outlier cannot pin the median forever.
pub const HISTORY_CAP_PER_MODE: usize = 20;

/// Appends `fresh` to `history`, dropping the oldest same-mode entries
/// beyond [`HISTORY_CAP_PER_MODE`].
pub fn append_history(history: &mut Vec<GateEntry>, fresh: GateEntry) {
    history.push(fresh);
    let mode = history.last().expect("just pushed").mode.clone();
    let same_mode = history.iter().filter(|e| e.mode == mode).count();
    if same_mode > HISTORY_CAP_PER_MODE {
        let mut to_drop = same_mode - HISTORY_CAP_PER_MODE;
        history.retain(|e| {
            if to_drop > 0 && e.mode == mode {
                to_drop -= 1;
                false
            } else {
                true
            }
        });
    }
}

/// One `pool_scale` execution's gate-relevant numbers, stored in the
/// `pool_history` array of `BENCH_gp.json` (a sibling of the `history`
/// array `perf_gate` maintains; both rewrite only their own key).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolEntry {
    /// `smoke` or `full` — entries only compare within a mode.
    pub mode: String,
    /// The benchmark seed.
    pub seed: u64,
    /// Candidate count of the fixed-pool reference run.
    pub fixed_pool: usize,
    /// Initial candidate count of the adaptive run.
    pub adaptive_start: usize,
    /// Final candidate count of the adaptive run (start + splits).
    pub final_pool: usize,
    /// Peak effective pool size (uniform-grid equivalent resolution).
    pub effective_pool: f64,
    /// Adaptive / fixed mean per-iteration wall clock (≤ 1 means the
    /// adaptive run iterates faster than the fixed-pool reference).
    pub iter_time_ratio: f64,
    /// Adaptive hypervolume error divided by the fixed run's.
    pub hv_ratio: f64,
    /// Adaptive ADRS divided by the fixed run's.
    pub adrs_ratio: f64,
}

/// Appends `fresh` to the pool-sweep history, dropping the oldest
/// same-mode entries beyond [`HISTORY_CAP_PER_MODE`].
pub fn append_pool_history(history: &mut Vec<PoolEntry>, fresh: PoolEntry) {
    history.push(fresh);
    let mode = history.last().expect("just pushed").mode.clone();
    let same_mode = history.iter().filter(|e| e.mode == mode).count();
    if same_mode > HISTORY_CAP_PER_MODE {
        let mut to_drop = same_mode - HISTORY_CAP_PER_MODE;
        history.retain(|e| {
            if to_drop > 0 && e.mode == mode {
                to_drop -= 1;
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(name: &str, speedup: f64, tool_runs: usize) -> GateSize {
        GateSize {
            name: name.into(),
            search_speedup: speedup,
            condition_speedup: speedup + 1.0,
            batch_speedup: speedup + 0.5,
            predict_par_speedup: speedup + 0.7,
            predict_cached_speedup: speedup + 3.0,
            tuner_total_s: 0.1,
            tool_runs,
        }
    }

    fn entry(mode: &str, speedup: f64, tool_runs: usize) -> GateEntry {
        GateEntry {
            mode: mode.into(),
            seed: 7,
            sizes: vec![size("smoke", speedup, tool_runs)],
        }
    }

    #[test]
    fn bootstraps_without_matching_history() {
        let fresh = entry("smoke", 2.0, 18);
        assert_eq!(
            evaluate(&fresh, &[], &GateConfig::default()),
            Ok(GateOutcome::Bootstrap)
        );
        let other_mode = [entry("full", 2.0, 18)];
        assert_eq!(
            evaluate(&fresh, &other_mode, &GateConfig::default()),
            Ok(GateOutcome::Bootstrap)
        );
    }

    #[test]
    fn passes_within_tolerance() {
        let history = [entry("smoke", 2.0, 18), entry("smoke", 2.4, 18)];
        // Half the median is tolerated; 1.3 is comfortably above 1.2.
        let fresh = entry("smoke", 1.3, 18);
        let outcome = evaluate(&fresh, &history, &GateConfig::default()).expect("passes");
        assert_eq!(outcome, GateOutcome::Pass { checks: 6 });
    }

    #[test]
    fn pre_sweep_history_skips_the_new_metrics() {
        // History recorded before the predict-sweep metrics existed
        // carries them as the `#[serde(default)]` zero; the gate must
        // skip those comparisons instead of flooring against 0.
        let mut old = entry("smoke", 2.0, 18);
        old.sizes[0].predict_par_speedup = 0.0;
        old.sizes[0].predict_cached_speedup = 0.0;
        let fresh = entry("smoke", 2.0, 18);
        let outcome = evaluate(&fresh, &[old], &GateConfig::default()).expect("passes");
        assert_eq!(outcome, GateOutcome::Pass { checks: 4 });
    }

    #[test]
    fn sweep_metric_regression_fails_the_gate() {
        let history = [entry("smoke", 2.0, 18), entry("smoke", 2.4, 18)];
        let mut fresh = entry("smoke", 2.2, 18);
        // The cache lost its edge: 1.0x against a 5.2x median.
        fresh.sizes[0].predict_cached_speedup = 1.0;
        let violations = evaluate(&fresh, &history, &GateConfig::default()).unwrap_err();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("smoke/predict_cached"),
            "{violations:?}"
        );
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        let history = [
            entry("smoke", 2.2, 18),
            entry("smoke", 2.4, 18),
            entry("smoke", 2.6, 18),
        ];
        // A hot path that lost its edge: ratios collapse to ~1.0x while
        // history's median is 2.4x — below the 50% floor.
        let fresh = entry("smoke", 1.0, 18);
        let violations = evaluate(&fresh, &history, &GateConfig::default()).unwrap_err();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("smoke/search"), "{violations:?}");
        assert!(violations[0].contains("median 2.40x"), "{violations:?}");
    }

    #[test]
    fn tool_run_drift_fails_the_gate() {
        let history = [entry("smoke", 2.0, 18)];
        let fresh = entry("smoke", 2.0, 21);
        let violations = evaluate(&fresh, &history, &GateConfig::default()).unwrap_err();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("tool_runs 21"), "{violations:?}");
    }

    #[test]
    fn non_finite_fresh_speedup_fails() {
        let history = [entry("smoke", 2.0, 18)];
        let fresh = entry("smoke", f64::NAN, 18);
        assert!(evaluate(&fresh, &history, &GateConfig::default()).is_err());
    }

    #[test]
    fn unknown_size_names_are_skipped_not_failed() {
        let history = [entry("smoke", 2.0, 18)];
        let mut fresh = entry("smoke", 2.0, 18);
        fresh.sizes[0].name = "brand-new".into();
        let outcome = evaluate(&fresh, &history, &GateConfig::default()).expect("passes");
        assert_eq!(outcome, GateOutcome::Pass { checks: 0 });
    }

    #[test]
    fn history_caps_per_mode() {
        let mut history = Vec::new();
        for i in 0..(HISTORY_CAP_PER_MODE + 5) {
            append_history(&mut history, entry("smoke", 2.0 + i as f64 * 0.01, 18));
        }
        append_history(&mut history, entry("full", 3.0, 40));
        assert_eq!(
            history.iter().filter(|e| e.mode == "smoke").count(),
            HISTORY_CAP_PER_MODE
        );
        assert_eq!(history.iter().filter(|e| e.mode == "full").count(), 1);
        // The oldest smoke entries aged out; the newest survive.
        assert!(history
            .iter()
            .filter(|e| e.mode == "smoke")
            .all(|e| e.sizes[0].search_speedup >= 2.05));
    }

    #[test]
    fn entries_round_trip_through_json() {
        let e = entry("smoke", 2.37, 18);
        let value = serde_json::to_value(&e);
        let back: GateEntry = serde_json::from_value(&value).expect("round trip");
        assert_eq!(back, e);
    }

    fn pool_entry(mode: &str, effective: f64) -> PoolEntry {
        PoolEntry {
            mode: mode.into(),
            seed: 7,
            fixed_pool: 5000,
            adaptive_start: 500,
            final_pool: 1200,
            effective_pool: effective,
            iter_time_ratio: 0.4,
            hv_ratio: 1.01,
            adrs_ratio: 0.99,
        }
    }

    #[test]
    fn pool_history_caps_per_mode() {
        let mut history = Vec::new();
        for i in 0..(HISTORY_CAP_PER_MODE + 3) {
            append_pool_history(&mut history, pool_entry("smoke", 60_000.0 + i as f64));
        }
        append_pool_history(&mut history, pool_entry("full", 70_000.0));
        assert_eq!(
            history.iter().filter(|e| e.mode == "smoke").count(),
            HISTORY_CAP_PER_MODE
        );
        assert_eq!(history.iter().filter(|e| e.mode == "full").count(), 1);
        // The oldest smoke entries aged out; the newest survive.
        assert!(history
            .iter()
            .filter(|e| e.mode == "smoke")
            .all(|e| e.effective_pool >= 60_003.0));
    }

    #[test]
    fn pool_entries_round_trip_through_json() {
        let e = pool_entry("full", 81_920.0);
        let value = serde_json::to_value(&e);
        let back: PoolEntry = serde_json::from_value(&value).expect("round trip");
        assert_eq!(back, e);
    }
}

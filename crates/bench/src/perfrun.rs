//! The GP hot-path benchmark core shared by the `perf` and `perf_gate`
//! bins: problem sizes, the measurement of each size (optimized paths vs
//! the frozen pre-overhaul implementations), and the frozen baselines
//! themselves.
//!
//! `perf` renders the results into `BENCH_gp.json`; `perf_gate` compares
//! them against that file's recorded history (see [`crate::gate`]).

use std::time::Instant;

use gp::kernel::{SquaredExponential, Task, TransferKernel};
use gp::optimize::{
    fit_transfer_gp_from_starts, nelder_mead, restart_starts, FitBudget, NelderMeadOptions,
};
use gp::{TaskData, TransferGp, TransferGpConfig};
use linalg::Matrix;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::json;

/// One benchmark problem size.
pub struct SizeSpec {
    /// Size label (`smoke`, `small`, ...), the key history is matched on.
    pub name: &'static str,
    /// Source-task observations.
    pub n_source: usize,
    /// Target-task observations.
    pub m_target: usize,
    /// Parameter-space dimensionality.
    pub dim: usize,
    /// Prediction queries.
    pub queries: usize,
    /// Hyper-parameter search restarts.
    pub restarts: usize,
    /// Nelder–Mead evaluations per restart.
    pub evals_per_restart: usize,
    /// Points appended by the conditioning benchmark (one refit period).
    pub cond_k: usize,
    /// Target-candidate count of the end-to-end tuner scenario.
    pub tuner_points: usize,
}

/// The default (paper-scale) sizes.
pub const FULL_SIZES: [SizeSpec; 3] = [
    SizeSpec {
        name: "small",
        n_source: 80,
        m_target: 100,
        dim: 5,
        queries: 1500,
        restarts: 2,
        evals_per_restart: 40,
        cond_k: 10,
        tuner_points: 120,
    },
    SizeSpec {
        name: "medium",
        n_source: 140,
        m_target: 180,
        dim: 7,
        queries: 2500,
        restarts: 2,
        evals_per_restart: 60,
        cond_k: 15,
        tuner_points: 160,
    },
    // Scenario One scale: the tuner's GP after its 200 initialization
    // samples plus most of its 60 iterations, sweeping a 5000-candidate
    // table (Table 2's configuration).
    SizeSpec {
        name: "table2",
        n_source: 200,
        m_target: 260,
        dim: 9,
        queries: 5000,
        restarts: 2,
        evals_per_restart: 80,
        cond_k: 25,
        tuner_points: 200,
    },
];

/// The tiny CI configuration (`--smoke`).
pub const SMOKE_SIZES: [SizeSpec; 1] = [SizeSpec {
    name: "smoke",
    n_source: 24,
    m_target: 30,
    dim: 3,
    queries: 200,
    restarts: 1,
    evals_per_restart: 8,
    cond_k: 4,
    tuner_points: 60,
}];

/// One size's measurements: the headline ratios plus the full JSON
/// rendering written to `BENCH_gp.json`.
#[derive(Debug, Clone)]
pub struct SizeResult {
    /// The size label.
    pub name: String,
    /// Hyper-parameter search speedup (frozen baseline / optimized).
    pub search_speedup: f64,
    /// Incremental-conditioning speedup (full refit / rank-k extend).
    pub condition_speedup: f64,
    /// Batch-prediction speedup (scalar loop / multi-RHS batch).
    pub batch_speedup: f64,
    /// Predict-sweep data-parallel speedup (serial sweep / 4 workers).
    pub predict_par_speedup: f64,
    /// Predict-sweep cache speedup (serial from-scratch sweep / cached
    /// incremental sweep after conditioning, 4 workers).
    pub predict_cached_speedup: f64,
    /// End-to-end tuner scenario wall clock, seconds.
    pub tuner_total_s: f64,
    /// Tool runs the tuner scenario consumed (deterministic per mode —
    /// any change is behavioral drift, not noise).
    pub tool_runs: usize,
    /// The complete per-size report object.
    pub json: serde_json::Value,
}

/// Benchmarks every size of a mode. `smoke` selects [`SMOKE_SIZES`] and
/// shrinks repeat counts.
pub fn run_sizes(smoke: bool, seed: u64) -> Vec<SizeResult> {
    let sizes: &[SizeSpec] = if smoke { &SMOKE_SIZES } else { &FULL_SIZES };
    sizes
        .iter()
        .map(|spec| {
            eprintln!(
                "perf: size {} (n={} m={} dim={} q={})",
                spec.name, spec.n_source, spec.m_target, spec.dim, spec.queries
            );
            bench_size(spec, seed, smoke)
        })
        .collect()
}

/// Measures one problem size.
///
/// # Panics
///
/// Panics when a fit or tuner run errors — inputs are synthetic and
/// seeded, so an error is a bug worth crashing on.
pub fn bench_size(spec: &SizeSpec, seed: u64, smoke: bool) -> SizeResult {
    let (sx, sy) = synth_task(spec.n_source, spec.dim, seed, 0.0);
    let (tx, ty) = synth_task(spec.m_target, spec.dim, seed ^ 0x9e37, 0.3);
    let source = TaskData::new(sx.clone(), sy.clone());
    let target = TaskData::new(tx.clone(), ty.clone());

    // --- Hyper-parameter search: identical restart starts for both paths.
    let budget = FitBudget {
        restarts: spec.restarts,
        evals_per_restart: spec.evals_per_restart,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let starts = restart_starts(spec.dim, budget.restarts, &mut rng);

    let t = Instant::now();
    let (model, report) =
        fit_transfer_gp_from_starts(&source, &target, spec.dim, budget, &starts, 1)
            .expect("optimized fit");
    let search_opt = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let baseline_obj = old_search(&sx, &sy, &tx, &ty, spec.dim, budget, &starts);
    let search_base = t.elapsed().as_secs_f64();

    // --- Incremental conditioning vs full refit over one refit period.
    let cfg = model.config().clone();
    let (ax, ay) = synth_task(spec.cond_k, spec.dim, seed ^ 0x517c, 0.55);
    let cond_reps = if smoke { 2 } else { 5 };
    let t = Instant::now();
    let mut acc = 0.0;
    for _ in 0..cond_reps {
        let mut inc = model.clone();
        inc.condition_on(&ax, &ay).expect("condition_on");
        acc += inc.log_marginal_likelihood();
    }
    let cond_inc = t.elapsed().as_secs_f64() / cond_reps as f64;
    let mut gx = tx.clone();
    gx.extend(ax.iter().cloned());
    let mut gy = ty.clone();
    gy.extend_from_slice(&ay);
    let t = Instant::now();
    for _ in 0..cond_reps {
        let refit = TransferGp::fit(
            TaskData::new(sx.clone(), sy.clone()),
            TaskData::new(gx.clone(), gy.clone()),
            cfg.clone(),
        )
        .expect("full refit");
        acc += refit.log_marginal_likelihood();
    }
    let cond_full = t.elapsed().as_secs_f64() / cond_reps as f64;

    // --- Batch prediction vs the scalar predict loop.
    let queries: Vec<Vec<f64>> = (0..spec.queries)
        .map(|i| {
            (0..spec.dim)
                .map(|d| ((i * 13 + d * 29 + 3 + seed as usize % 97) % 997) as f64 / 997.0)
                .collect()
        })
        .collect();
    let t = Instant::now();
    for x in &queries {
        let (mu, var) = model.predict(x).expect("scalar predict");
        acc += mu + var;
    }
    let predict_scalar = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let batch = model.predict_batch(&queries).expect("batch predict");
    let predict_batch = t.elapsed().as_secs_f64();
    acc += batch[0].0;

    // --- Predict sweep: the data-parallel and cached-incremental paths
    // vs the serial from-scratch blocked batch, all three on the same
    // conditioned model — the steady state the tuner's warm iterations
    // live in (refits are rare; conditioning appends a few rows).
    let sweep_q = spec.cond_k.clamp(1, 4);
    let sweep_workers = 4;
    let mut sweep_model = model.clone();
    let ids: Vec<u64> = (0..queries.len() as u64).collect();
    let mut cache = gp::PredictCache::new();
    cache.begin_sweep();
    // Prime the cache against the pre-conditioning factor (untimed); the
    // timed cached sweep below then pays only the q-row tail per
    // candidate, exactly as the tuner's next iteration would.
    let _ = sweep_model
        .predict_latent_batch_cached(&ids, &queries, gp::PREDICT_BLOCK, 1, &mut cache)
        .expect("cache-priming sweep");
    sweep_model
        .condition_on(&ax[..sweep_q], &ay[..sweep_q])
        .expect("sweep conditioning");
    let t = Instant::now();
    let sweep_serial_out = sweep_model
        .predict_latent_batch_with_block(&queries, gp::PREDICT_BLOCK)
        .expect("serial sweep");
    let sweep_serial = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let sweep_par_out = sweep_model
        .predict_latent_batch_par(&queries, gp::PREDICT_BLOCK, sweep_workers)
        .expect("parallel sweep");
    let sweep_par = t.elapsed().as_secs_f64();
    cache.begin_sweep();
    let t = Instant::now();
    let sweep_cached_out = sweep_model
        .predict_latent_batch_cached(&ids, &queries, gp::PREDICT_BLOCK, sweep_workers, &mut cache)
        .expect("cached sweep");
    let sweep_cached = t.elapsed().as_secs_f64();
    // The three paths promise identical bits; assert it where the timing
    // claims are made so a divergence can never hide behind a speedup.
    assert!(
        sweep_serial_out == sweep_par_out && sweep_serial_out == sweep_cached_out,
        "predict sweep paths diverged"
    );
    acc += sweep_serial_out[0].0;

    // --- End-to-end tuner scenario (absolute time; no frozen baseline).
    let t = Instant::now();
    let result = run_tuner_scenario(spec, seed, smoke, &obs::NULL_SINK);
    let tuner_s = t.elapsed().as_secs_f64();

    // `acc` and the objectives keep the optimizer honest; reporting them
    // also documents that both search paths landed in the same basin.
    let search = json!({
        "restarts": spec.restarts,
        "evals_per_restart": spec.evals_per_restart,
        "baseline_s": search_base,
        "optimized_s": search_opt,
        "speedup": search_base / search_opt,
        "baseline_best_objective": baseline_obj,
        "optimized_best_objective": report.best_objective,
    });
    let condition = json!({
        "appended": spec.cond_k,
        "full_refit_s": cond_full,
        "incremental_s": cond_inc,
        "speedup": cond_full / cond_inc,
    });
    let batch_predict = json!({
        "scalar_s": predict_scalar,
        "batch_s": predict_batch,
        "speedup": predict_scalar / predict_batch,
    });
    let predict_sweep = json!({
        "queries": spec.queries,
        "appended_rows": sweep_q,
        "workers": sweep_workers,
        "serial_s": sweep_serial,
        "parallel_s": sweep_par,
        "cached_s": sweep_cached,
        "parallel_speedup": sweep_serial / sweep_par,
        "cached_speedup": sweep_serial / sweep_cached,
    });
    let tool_runs = result.runs + result.verification_runs;
    let tuner_scenario = json!({
        "candidates": spec.tuner_points,
        "total_s": tuner_s,
        "tool_runs": tool_runs,
        "checksum": acc,
    });
    SizeResult {
        name: spec.name.to_string(),
        search_speedup: search_base / search_opt,
        condition_speedup: cond_full / cond_inc,
        batch_speedup: predict_scalar / predict_batch,
        predict_par_speedup: sweep_serial / sweep_par,
        predict_cached_speedup: sweep_serial / sweep_cached,
        tuner_total_s: tuner_s,
        tool_runs,
        json: json!({
            "name": spec.name,
            "n_source": spec.n_source,
            "m_target": spec.m_target,
            "dim": spec.dim,
            "queries": spec.queries,
            "search": search,
            "condition": condition,
            "batch_predict": batch_predict,
            "predict_sweep": predict_sweep,
            "tuner_scenario": tuner_scenario,
        }),
    }
}

/// Runs the end-to-end tuner scenario of one size through `observer` and
/// returns the tuner's result. Shared with `obs_overhead`, which times
/// the same scenario under different observers.
///
/// # Panics
///
/// Panics when the tuning run errors.
pub fn run_tuner_scenario(
    spec: &SizeSpec,
    seed: u64,
    smoke: bool,
    observer: &dyn obs::Observer,
) -> ppatuner::TuneResult {
    let scenario =
        benchgen::Scenario::two_with_counts(seed, spec.n_source.max(40), spec.tuner_points)
            .with_source_budget(spec.n_source.min(60));
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (ssx, ssy) = scenario.source_xy(space);
    let tuner_source = SourceData::new(ssx, ssy).expect("scenario source");
    let mut oracle = VecOracle::new(scenario.target_table(space));
    let config = PpaTunerConfig {
        initial_samples: if smoke { 8 } else { 24 },
        max_iterations: if smoke { 4 } else { 12 },
        refit_every: if smoke { 4 } else { 8 },
        seed,
        threads: 1,
        ..Default::default()
    };
    PpaTuner::new(config)
        .run_observed(&tuner_source, &candidates, &mut oracle, observer)
        .expect("tuner scenario")
}

/// Deterministic synthetic task data (a seeded quasi-random design over
/// a sum-of-sines surface), shared by both benchmark arms.
pub fn synth_task(count: usize, dim: usize, seed: u64, phase: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let s = (seed % 911) as usize;
    let x: Vec<Vec<f64>> = (0..count)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 37 + d * 11 + 7 + s) % 1000) as f64 / 1000.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(j, &v)| ((2.0 + j as f64) * v).sin())
                .sum::<f64>()
                + phase
        })
        .collect();
    (x, y)
}

// ---------------------------------------------------------------------
// Frozen pre-overhaul reference path. This reproduces, inside the bench
// crate, the hyper-parameter search as it ran before the hot-path
// overhaul: every objective evaluation deep-cloned the task data,
// re-assembled the joint kernel entry-by-entry through the kernel
// object, and factored it with the original serial single-accumulator
// Cholesky. Kept verbatim (modulo being a free function) so the speedup
// in BENCH_gp.json is measured against the real former implementation,
// not a strawman.
// ---------------------------------------------------------------------

/// The original serial Cholesky: scalar triple loop over matrix
/// indexing, one accumulation chain.
fn old_cholesky(a: &Matrix) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if !(s.is_finite() && s > 0.0) {
                    return None;
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Some(l)
}

fn old_cholesky_with_jitter(a: &Matrix, jitter0: f64, max_tries: usize) -> Option<Matrix> {
    if let Some(l) = old_cholesky(a) {
        return Some(l);
    }
    let mut jitter = jitter0;
    for _ in 0..max_tries {
        let mut aj = a.clone();
        aj.add_diag(jitter);
        if let Some(l) = old_cholesky(&aj) {
            return Some(l);
        }
        jitter *= 10.0;
    }
    None
}

fn old_log_det(l: &Matrix) -> f64 {
    (0..l.rows()).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0
}

fn old_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let z = linalg::solve::solve_lower(l, b).expect("forward solve");
    linalg::solve::solve_lower_transposed(l, &z).expect("back solve")
}

/// The pre-overhaul MAP objective: clone the data, rebuild the kernel
/// point-by-point, factor with the serial Cholesky, and return the
/// negative log conditional likelihood (`+∞` on failure).
fn old_objective(
    sx: &[Vec<f64>],
    sy: &[f64],
    tx: &[Vec<f64>],
    ty: &[f64],
    cfg: &TransferGpConfig,
) -> f64 {
    // Clone-per-eval churn, exactly as the old search did.
    let sx: Vec<Vec<f64>> = sx.to_vec();
    let sy: Vec<f64> = sy.to_vec();
    let tx: Vec<Vec<f64>> = tx.to_vec();
    let ty: Vec<f64> = ty.to_vec();

    let base = match SquaredExponential::new(cfg.signal_var, cfg.lengthscales.clone()) {
        Ok(b) => b,
        Err(_) => return f64::INFINITY,
    };
    let kernel = match TransferKernel::with_lambda(base, cfg.lambda) {
        Ok(k) => k,
        Err(_) => return f64::INFINITY,
    };
    if !(cfg.noise_source.is_finite()
        && cfg.noise_source >= 0.0
        && cfg.noise_target.is_finite()
        && cfg.noise_target >= 0.0)
    {
        return f64::INFINITY;
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let std_of = |v: &[f64], mu: f64| {
        let var = v.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / v.len().max(1) as f64;
        var.sqrt().max(1e-12)
    };
    let (mu_s, mu_t) = (mean(&sy), mean(&ty));
    let (sd_s, sd_t) = (std_of(&sy, mu_s), std_of(&ty, mu_t));
    let n = sx.len();
    let p = n + tx.len();
    let mut z = Vec::with_capacity(p);
    z.extend(sy.iter().map(|&v| (v - mu_s) / sd_s));
    z.extend(ty.iter().map(|&v| (v - mu_t) / sd_t));

    let task_of = |i: usize| if i < n { Task::Source } else { Task::Target };
    let point_of = |i: usize| -> &[f64] {
        if i < n {
            &sx[i]
        } else {
            &tx[i - n]
        }
    };
    let mut k = Matrix::from_fn(p, p, |i, j| {
        kernel.eval_task(point_of(i), task_of(i), point_of(j), task_of(j))
    });
    for i in 0..p {
        k[(i, i)] += if i < n {
            cfg.noise_source
        } else {
            cfg.noise_target
        };
    }
    let ln_2pi = (2.0 * std::f64::consts::PI).ln();
    let Some(l) = old_cholesky_with_jitter(&k, 1e-10, 12) else {
        return f64::INFINITY;
    };
    let alpha = old_solve(&l, &z);
    let lml =
        -0.5 * linalg::vecops::dot(&z, &alpha) - 0.5 * old_log_det(&l) - 0.5 * p as f64 * ln_2pi;
    let source_lml = if n == 0 {
        0.0
    } else {
        let k_ss = k.submatrix(0, n, 0, n);
        let Some(l_s) = old_cholesky_with_jitter(&k_ss, 1e-10, 12) else {
            return f64::INFINITY;
        };
        let alpha_s = old_solve(&l_s, &z[..n]);
        -0.5 * linalg::vecops::dot(&z[..n], &alpha_s)
            - 0.5 * old_log_det(&l_s)
            - 0.5 * n as f64 * ln_2pi
    };
    -(lml - source_lml)
}

/// Copy of the (private) search decode: unconstrained θ → kernel config.
fn old_decode(theta: &[f64], dim: usize) -> TransferGpConfig {
    let ls: Vec<f64> = theta[..dim]
        .iter()
        .map(|&t| t.exp().clamp(1e-3, 1e3))
        .collect();
    TransferGpConfig {
        lengthscales: ls,
        signal_var: theta[dim].exp().clamp(1e-6, 1e4),
        lambda: theta[dim + 1].tanh().clamp(-0.999, 0.999),
        noise_source: theta[dim + 2].exp().clamp(1e-8, 1.0),
        noise_target: theta[dim + 3].exp().clamp(1e-8, 1.0),
    }
}

/// Copy of the (private) log-normal length-scale prior penalty.
fn old_penalty(lengthscales: &[f64]) -> f64 {
    let mu = 0.5f64.ln();
    let sigma = 0.75;
    lengthscales
        .iter()
        .map(|&l| {
            let d = l.ln() - mu;
            d * d / (2.0 * sigma * sigma)
        })
        .sum()
}

/// The pre-overhaul multi-start search loop, run to the same budget from
/// the same starts as the optimized path. Returns the best MAP objective
/// (the timing is what matters; the value documents basin agreement).
fn old_search(
    sx: &[Vec<f64>],
    sy: &[f64],
    tx: &[Vec<f64>],
    ty: &[f64],
    dim: usize,
    budget: FitBudget,
    starts: &[Vec<f64>],
) -> f64 {
    let opts = NelderMeadOptions {
        max_evals: budget.evals_per_restart,
        ..Default::default()
    };
    let mut best = f64::INFINITY;
    let mut best_theta: Option<Vec<f64>> = None;
    for x0 in starts {
        let (theta, value) = nelder_mead(
            |t| {
                let cfg = old_decode(t, dim);
                old_objective(sx, sy, tx, ty, &cfg) + old_penalty(&cfg.lengthscales)
            },
            x0,
            opts,
        );
        if best_theta.is_none() || value < best {
            best = value;
            best_theta = Some(theta);
        }
    }
    // Final model build from the winning θ, as the old path did.
    let theta = best_theta.expect("at least one restart");
    let cfg = old_decode(&theta, dim);
    let _ = old_objective(sx, sy, tx, ty, &cfg);
    best
}

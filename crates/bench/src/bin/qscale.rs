//! q-batch scaling benchmark: concurrent oracle fan-out must buy
//! near-linear oracle wall-clock without costing solution quality or
//! determinism.
//!
//! The oracle is a *sleepy* table — the golden QoR values of the seeded
//! Scenario Two, each evaluation sleeping a deterministic 2–4 ms (hashed
//! from the candidate index) while recording its busy interval. That
//! makes oracle wall-clock measurable and the parallelism of a wave
//! directly observable as interval overlap. Four gates:
//!
//! 1. **Oracle speedup**: at `q = 4` with 4 workers, the summed busy
//!    time divided by the union of busy intervals (the parallelism
//!    factor — exactly the wall-clock speedup over running the same
//!    attempts serially) must be ≥ 3×.
//! 2. **Equal-budget quality**: every `q > 1` run must reach its final
//!    classified front with at most 25 % more tool runs than `q = 1`,
//!    scoring a hypervolume error and ADRS within 1.05× of the `q = 1`
//!    front. (Prefix fronts at the smallest common budget are printed as
//!    diagnostics — batch diversity reorders the evaluation stream, so
//!    tiny prefix fronts wobble a few percent either way.)
//! 3. **Worker-count determinism**: the canonical trace at `q = 4` is
//!    byte-identical for 1, 2, and 8 workers.
//! 4. **Repeat determinism**: re-running any configuration reproduces
//!    its canonical trace byte for byte.
//!
//! Usage: `cargo run --release -p bench --bin qscale -- [--smoke]`.
//! `--smoke` trims the sweep (q ∈ {1, 4}, fewer determinism repeats) for
//! CI; the full mode also covers q = 2. Exits non-zero listing every
//! violated gate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use obs::RecordingSink;
use pdsim::ObjectiveSpace;
use ppatuner::{ConcurrentOracle, EvalError, PpaTuner, PpaTunerConfig, SourceData, TuneResult};
use testkit::trace::canonical_jsonl;

/// A table oracle that sleeps a deterministic per-candidate latency and
/// records every evaluation's busy interval against a shared origin.
struct SleepyOracle {
    table: Vec<Vec<f64>>,
    origin: Instant,
    runs: AtomicUsize,
    busy: Mutex<Vec<(f64, f64)>>,
}

impl SleepyOracle {
    fn new(table: Vec<Vec<f64>>) -> Self {
        SleepyOracle {
            table,
            origin: Instant::now(),
            runs: AtomicUsize::new(0),
            busy: Mutex::new(Vec::new()),
        }
    }

    /// Deterministic latency in 2.8–3.2 ms, hashed from the index
    /// (SplitMix64) so reruns and worker counts see identical
    /// per-candidate costs. The spread keeps completion order scrambled
    /// (stressing the deterministic merge) while staying narrow enough
    /// that a full 4-wave's intrinsic parallelism (Σ latency / max
    /// latency) clears the 3× gate.
    fn latency_us(index: usize) -> u64 {
        let mut z = (index as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        2800 + (z ^ (z >> 31)) % 400
    }

    fn busy_intervals(&self) -> Vec<(f64, f64)> {
        self.busy.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl ConcurrentOracle for SleepyOracle {
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, Ordering::Relaxed);
        let start = self.origin.elapsed().as_secs_f64();
        std::thread::sleep(Duration::from_micros(Self::latency_us(index)));
        let end = self.origin.elapsed().as_secs_f64();
        self.busy
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((start, end));
        self.table.get(index).cloned().ok_or(EvalError::OutOfRange {
            index,
            len: self.table.len(),
        })
    }

    fn runs(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }
}

/// Sum and union (merged length) of a set of busy intervals.
fn busy_stats(mut intervals: Vec<(f64, f64)>) -> (f64, f64) {
    let sum: f64 = intervals.iter().map(|(s, e)| e - s).sum();
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut union = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (s, e) in intervals {
        match current {
            Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                union += ce - cs;
                current = Some((s, e));
            }
            None => current = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = current {
        union += ce - cs;
    }
    (sum, union)
}

struct RunOutput {
    result: TuneResult,
    trace: String,
    busy_sum: f64,
    busy_union: f64,
}

fn run_config(q: usize, workers: usize) -> RunOutput {
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("scenario source data");
    let config = PpaTunerConfig {
        // Divisible by every q in the sweep, so initialization fans out
        // in full waves (a trailing 2-wave would dilute the parallelism
        // measurement without testing anything new).
        initial_samples: 12,
        max_iterations: 20,
        tau: 3.0,
        seed: testkit::test_seed(),
        threads: 1,
        batch_size: q,
        eval_workers: workers,
        ..Default::default()
    };
    let oracle = SleepyOracle::new(scenario.target_table(space));
    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_concurrent(&source, &candidates, &oracle, &sink)
        .expect("qscale run succeeds");
    let (busy_sum, busy_union) = busy_stats(oracle.busy_intervals());
    RunOutput {
        result,
        trace: canonical_jsonl(&sink.events()),
        busy_sum,
        busy_union,
    }
}

/// Pareto front of the first `budget` accepted evaluations, scored
/// against the scenario's golden front.
fn equal_budget_score(result: &TuneResult, budget: usize) -> bench::MethodScore {
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let prefix = &result.evaluated[..budget.min(result.evaluated.len())];
    let qors: Vec<Vec<f64>> = prefix.iter().map(|(_, y)| y.clone()).collect();
    let front: Vec<usize> = testkit::reference::pareto_front(&qors)
        .into_iter()
        .map(|pos| prefix[pos].0)
        .collect();
    bench::score(&scenario, space, &front, budget)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let qs: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4] };
    let worker_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 8] };
    let mut violations: Vec<String> = Vec::new();

    // ------------------------------------------------------- q sweep
    let mut outputs: Vec<(usize, RunOutput)> = Vec::new();
    for &q in qs {
        let workers = q.min(4);
        let out = run_config(q, workers);
        println!(
            "q={q} workers={workers}: {} runs, oracle busy {:.3}s over {:.3}s wall \
             (parallelism {:.2}x), {} evaluated, {} iterations",
            out.result.runs + out.result.verification_runs,
            out.busy_sum,
            out.busy_union,
            out.busy_sum / out.busy_union.max(1e-12),
            out.result.evaluated.len(),
            out.result.iterations,
        );
        outputs.push((q, out));
    }

    // Gate 1: oracle wall-clock speedup at q = 4.
    let q4 = &outputs.iter().find(|(q, _)| *q == 4).expect("q=4 ran").1;
    let parallelism = q4.busy_sum / q4.busy_union.max(1e-12);
    if parallelism < 3.0 {
        violations.push(format!(
            "oracle parallelism at q=4 is {parallelism:.2}x, below the 3x gate"
        ));
    } else {
        println!("gate 1 OK: q=4 oracle wall-clock speedup {parallelism:.2}x >= 3x");
    }

    // Gate 2: final-front quality at comparable tool-run budget.
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let budget_of = |r: &TuneResult| r.runs + r.verification_runs;
    let base_result = &outputs[0].1.result;
    let base = bench::score(
        &scenario,
        space,
        &base_result.pareto_indices,
        budget_of(base_result),
    );
    println!(
        "final front: q=1 hv {:.6} adrs {:.6} at {} tool runs",
        base.hv_error,
        base.adrs,
        budget_of(base_result)
    );
    for (q, out) in outputs.iter().skip(1) {
        let s = bench::score(
            &scenario,
            space,
            &out.result.pareto_indices,
            budget_of(&out.result),
        );
        println!(
            "final front: q={q} hv {:.6} adrs {:.6} at {} tool runs",
            s.hv_error,
            s.adrs,
            budget_of(&out.result)
        );
        if budget_of(&out.result) * 4 > budget_of(base_result) * 5 {
            violations.push(format!(
                "q={q} consumed {} tool runs, more than 1.25x the q=1 budget of {}",
                budget_of(&out.result),
                budget_of(base_result)
            ));
        }
        if s.hv_error.abs() > base.hv_error.abs() * 1.05 + 1e-9 {
            violations.push(format!(
                "q={q} hv error {} exceeds 1.05x the q=1 front's {}",
                s.hv_error, base.hv_error
            ));
        }
        if s.adrs.abs() > base.adrs.abs() * 1.05 + 1e-9 {
            violations.push(format!(
                "q={q} ADRS {} exceeds 1.05x the q=1 front's {}",
                s.adrs, base.adrs
            ));
        }
    }

    // Diagnostics: prefix fronts at the smallest common accepted-eval
    // budget (not gated; see the module docs).
    let prefix_budget = outputs
        .iter()
        .map(|(_, o)| o.result.evaluated.len())
        .min()
        .expect("at least one run");
    for (q, out) in &outputs {
        let s = equal_budget_score(&out.result, prefix_budget);
        println!(
            "prefix front B={prefix_budget}: q={q} hv {:.6} adrs {:.6}",
            s.hv_error, s.adrs
        );
    }

    // Gate 3: worker-count determinism at q = 4.
    let traces: Vec<(usize, String)> = worker_sweep
        .iter()
        .map(|&w| (w, run_config(4, w).trace))
        .collect();
    for (w, trace) in traces.iter().skip(1) {
        if trace != &traces[0].1 {
            violations.push(format!(
                "canonical trace at q=4 differs between {} and {w} workers",
                traces[0].0
            ));
        }
    }
    if traces.iter().skip(1).all(|(_, t)| t == &traces[0].1) {
        println!("gate 3 OK: q=4 canonical trace identical across workers {worker_sweep:?}");
    }

    // Gate 4: repeat determinism (the q=4 sweep run above doubles as the
    // repeat of the 4-worker entry when the sweep includes it).
    let repeat = run_config(4, 4);
    if repeat.trace != q4.trace {
        violations.push("repeat run of q=4 produced a different canonical trace".into());
    } else {
        println!("gate 4 OK: repeat q=4 run is byte-identical");
    }

    if violations.is_empty() {
        println!("qscale PASSED");
    } else {
        eprintln!("qscale FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

//! Predict-sweep scaling benchmark: the data-parallel pool sweep must
//! buy real wall-clock on multi-core machines, the cached-incremental
//! sweep must buy it everywhere, and neither may perturb a single bit.
//!
//! The pool is a large seeded query table swept by a fitted transfer GP
//! (the tuner's per-iteration hot loop at Scenario One scale). Four
//! gates:
//!
//! 1. **Worker speedup** (machine-gated): with ≥ 4 available cores, the
//!    4-worker sweep's busy interval (best-of-`REPS` wall-clock of the
//!    sweep itself) must be ≥ 2× shorter than the serial sweep's. On
//!    smaller machines the measurement still prints but the gate is
//!    skipped — CI runs this on 4-core runners.
//! 2. **Sweep determinism**: every (block, workers) combination — block
//!    = 1, a non-divisor, block > pool — returns the serial sweep's
//!    exact bits.
//! 3. **Cache speedup + equivalence**: after incremental conditioning,
//!    the cached sweep (which pays only the appended-row tail per
//!    candidate) must be ≥ 2× faster than the from-scratch serial sweep
//!    and bit-identical to it. This gate is algorithmic — it does not
//!    depend on core count.
//! 4. **Trace determinism**: the tuner's canonical trace is
//!    byte-identical across `predict_workers` (parallel vs serial sweep)
//!    and `predict_block` settings.
//!
//! Usage: `cargo run --release -p bench --bin predict_scale -- [--smoke]`.
//! `--smoke` shrinks the pool and trims the trace sweep for CI. Exits
//! non-zero listing every violated gate.

use std::time::Instant;

use gp::{PredictCache, TaskData, TransferGp, TransferGpConfig};
use obs::RecordingSink;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};
use testkit::trace::canonical_jsonl;

/// Timing repetitions per measured path; the minimum is reported, so a
/// stray scheduler hiccup inflates one rep, not the gate.
const REPS: usize = 3;

/// Builds the fitted model and query pool for the sweep gates.
fn fit_pool(smoke: bool, seed: u64) -> (TransferGp, Vec<Vec<f64>>) {
    // Full mode mirrors the table2 perf size (the tuner's GP late in a
    // Scenario One run); smoke trims it for CI while keeping the sweep
    // long enough (hundreds of ms serial) that thread startup is noise.
    let (n_source, m_target, dim, pool) = if smoke {
        (140, 180, 7, 6_000)
    } else {
        (200, 260, 9, 20_000)
    };
    let (sx, sy) = bench::perfrun::synth_task(n_source, dim, seed, 0.0);
    let (tx, ty) = bench::perfrun::synth_task(m_target, dim, seed ^ 0x9e37, 0.3);
    let model = TransferGp::fit(
        TaskData::new(sx, sy),
        TaskData::new(tx, ty),
        TransferGpConfig::default_for_dim(dim),
    )
    .expect("synthetic pool model fits");
    let queries: Vec<Vec<f64>> = (0..pool)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 13 + d * 29 + 3 + seed as usize % 97) % 997) as f64 / 997.0)
                .collect()
        })
        .collect();
    (model, queries)
}

/// Best-of-[`REPS`] wall-clock of `f`, returning its last output too.
fn best_of<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("REPS >= 1"))
}

fn bits_equal(a: &[(f64, f64)], b: &[(f64, f64)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|((am, av), (bm, bv))| {
            am.to_bits() == bm.to_bits() && av.to_bits() == bv.to_bits()
        })
}

/// Runs the tuner scenario with the given predict settings and returns
/// its canonical trace.
fn tuner_trace(seed: u64, predict_workers: usize, predict_block: usize) -> String {
    let scenario = benchgen::Scenario::two_with_counts(seed, 120, 160).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 8,
        max_iterations: 6,
        refit_every: 4,
        seed,
        threads: 1,
        predict_workers,
        predict_block,
        ..Default::default()
    };
    let mut oracle = VecOracle::new(scenario.target_table(space));
    let sink = RecordingSink::new();
    PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("predict_scale tuner run succeeds");
    canonical_jsonl(&sink.events())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = testkit::test_seed();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut violations: Vec<String> = Vec::new();

    let (model, queries) = fit_pool(smoke, seed);
    let pool = queries.len();
    println!(
        "pool: {} queries, {} training rows, {} cores available",
        pool,
        model.source_len() + model.target_len(),
        cores
    );

    // ------------------------------------------- gate 1: worker speedup
    let (serial_s, serial_out) = best_of(|| {
        model
            .predict_latent_batch_with_block(&queries, gp::PREDICT_BLOCK)
            .expect("serial sweep")
    });
    let (par_s, par_out) = best_of(|| {
        model
            .predict_latent_batch_par(&queries, gp::PREDICT_BLOCK, 4)
            .expect("parallel sweep")
    });
    let par_speedup = serial_s / par_s.max(1e-12);
    println!(
        "sweep busy interval: serial {serial_s:.3}s, 4 workers {par_s:.3}s \
         ({par_speedup:.2}x)"
    );
    if cores >= 4 {
        if par_speedup < 2.0 {
            violations.push(format!(
                "4-worker sweep speedup is {par_speedup:.2}x on a {cores}-core \
                 machine, below the 2x gate"
            ));
        } else {
            println!("gate 1 OK: 4-worker sweep {par_speedup:.2}x >= 2x");
        }
    } else {
        println!("gate 1 SKIPPED: {cores} core(s) available, need >= 4 for the speedup gate");
    }

    // ---------------------------------------- gate 2: sweep determinism
    if !bits_equal(&par_out, &serial_out) {
        violations.push("4-worker sweep output differs from the serial sweep".into());
    }
    let mut determinism_ok = true;
    // block = 1 is quadratic in pool size on the merge side; probe the
    // degenerate blocks on a prefix and the realistic block on the full
    // pool.
    let prefix = &queries[..pool.min(512)];
    let prefix_base = model
        .predict_latent_batch_with_block(prefix, gp::PREDICT_BLOCK)
        .expect("serial prefix sweep");
    for block in [1, 7, prefix.len() - 1, prefix.len() + 5] {
        for workers in [1, 2, 4, 8] {
            let par = model
                .predict_latent_batch_par(prefix, block, workers)
                .expect("parallel prefix sweep");
            if !bits_equal(&par, &prefix_base) {
                determinism_ok = false;
                violations.push(format!(
                    "sweep output at block={block} workers={workers} differs from serial"
                ));
            }
        }
    }
    if determinism_ok {
        println!("gate 2 OK: sweep bits invariant across block and worker settings");
    }

    // ------------------------------- gate 3: cache speedup + equivalence
    // Prime the cache against the current factor (untimed), append a few
    // rows incrementally, then race the cached sweep against the
    // from-scratch serial sweep — the tuner's steady-state iteration.
    let mut cached_model = model.clone();
    let ids: Vec<u64> = (0..pool as u64).collect();
    let mut cache = PredictCache::new();
    cache.begin_sweep();
    let _ = cached_model
        .predict_latent_batch_cached(&ids, &queries, gp::PREDICT_BLOCK, 1, &mut cache)
        .expect("cache-priming sweep");
    let dim = queries[0].len();
    let (ax, ay) = bench::perfrun::synth_task(3, dim, seed ^ 0x517c, 0.55);
    cached_model
        .condition_on(&ax, &ay)
        .expect("incremental conditioning");
    let (scratch_s, scratch_out) = best_of(|| {
        cached_model
            .predict_latent_batch_with_block(&queries, gp::PREDICT_BLOCK)
            .expect("post-conditioning serial sweep")
    });
    let (cached_s, cached_out) = best_of(|| {
        cache.begin_sweep();
        cached_model
            .predict_latent_batch_cached(&ids, &queries, gp::PREDICT_BLOCK, 1, &mut cache)
            .expect("cached sweep")
    });
    let cached_speedup = scratch_s / cached_s.max(1e-12);
    println!(
        "cached sweep after +3 rows: from-scratch {scratch_s:.3}s, cached {cached_s:.3}s \
         ({cached_speedup:.2}x)"
    );
    if !bits_equal(&cached_out, &scratch_out) {
        violations.push("cached sweep output differs from the from-scratch sweep".into());
    } else if cached_speedup < 2.0 {
        violations.push(format!(
            "cached sweep speedup is {cached_speedup:.2}x, below the 2x gate"
        ));
    } else {
        println!("gate 3 OK: cached sweep {cached_speedup:.2}x >= 2x, bit-identical");
    }

    // ----------------------------------------- gate 4: trace determinism
    // (workers, block) settings whose canonical traces must all match;
    // the first entry is the serial reference.
    let sweep: &[(usize, usize)] = if smoke {
        &[(1, gp::PREDICT_BLOCK), (4, gp::PREDICT_BLOCK), (4, 17)]
    } else {
        &[
            (1, gp::PREDICT_BLOCK),
            (2, gp::PREDICT_BLOCK),
            (4, gp::PREDICT_BLOCK),
            (8, gp::PREDICT_BLOCK),
            (4, 1),
            (4, 17),
        ]
    };
    let traces: Vec<((usize, usize), String)> = sweep
        .iter()
        .map(|&(w, b)| ((w, b), tuner_trace(seed, w, b)))
        .collect();
    let mut trace_ok = true;
    for ((w, b), trace) in traces.iter().skip(1) {
        if trace != &traces[0].1 {
            trace_ok = false;
            violations.push(format!(
                "canonical trace at predict_workers={w} predict_block={b} differs \
                 from the serial reference"
            ));
        }
    }
    if trace_ok {
        println!(
            "gate 4 OK: canonical trace byte-identical across {} predict settings",
            sweep.len()
        );
    }

    if violations.is_empty() {
        println!("predict_scale PASSED");
    } else {
        eprintln!("predict_scale FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

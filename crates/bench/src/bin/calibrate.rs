//! Calibration harness (not a paper artifact): runs all methods on
//! reduced-scale scenarios and prints scores + wall-times, to verify the
//! comparative shape before full table runs.
//!
//! Usage: `cargo run -p bench --release --bin calibrate [scale]`
//! where `scale` ∈ {small, medium, two}.

use std::time::Instant;

use bench::{run_method, Budgets, Method};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "medium".into());
    let (scenario, budgets) = match scale.as_str() {
        "small" => (
            Scenario::two_with_counts(1, 200, 150).with_source_budget(100),
            Budgets {
                fixed: 20,
                tcad_cap: 26,
                dac_budget: 36,
                ppatuner_init: 12,
                ppatuner_iters: 10,
            },
        ),
        "two" => (Scenario::two(1), Budgets::scenario_two()),
        _ => (
            Scenario::one_with_counts(1, 1000, 800).with_source_budget(200),
            Budgets {
                fixed: 80,
                tcad_cap: 104,
                dac_budget: 120,
                ppatuner_init: 40,
                ppatuner_iters: 15,
            },
        ),
    };
    println!(
        "calibration: {} source={} target={}",
        scenario.name(),
        scenario.source().len(),
        scenario.target().len()
    );
    for space in [ObjectiveSpace::PowerDelay, ObjectiveSpace::AreaPowerDelay] {
        println!("--- {space} ---");
        for m in Method::ALL {
            let t0 = Instant::now();
            let mut hv = 0.0;
            let mut ad = 0.0;
            let mut runs = 0;
            const SEEDS: [u64; 3] = [17, 29, 43];
            for &seed in &SEEDS {
                let s = run_method(&scenario, space, m, &budgets, seed);
                hv += s.hv_error;
                ad += s.adrs;
                runs += s.runs;
            }
            let n = SEEDS.len() as f64;
            println!(
                "{:<10} HV={:.3} ADRS={:.3} runs={:<6.1} ({:.1?})",
                m.label(),
                hv / n,
                ad / n,
                runs as f64 / n,
                t0.elapsed()
            );
        }
    }
}

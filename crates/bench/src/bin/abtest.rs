//! A/B probe (not a paper artifact): PAL with vs. without source data,
//! everything else identical — isolates the transfer contribution.

use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let scenario = Scenario::two(1);
    for space in [ObjectiveSpace::PowerDelay, ObjectiveSpace::AreaPowerDelay] {
        let candidates = scenario.target_candidates();
        let table = scenario.target_table(space);
        let golden = scenario.target().golden_front(space);
        let reference = pareto::hypervolume::reference_point(&table, 1.1).unwrap();
        let (sx, sy) = scenario.source_xy(space);
        let with_source = SourceData::new(sx, sy).unwrap();
        for &(tau, delta_rel) in &[
            (1.0, 0.05),
            (1.5, 0.05),
            (2.0, 0.05),
            (2.0, 0.08),
            (3.0, 0.03),
            (1.0, 0.08),
        ] {
            for seed in [17u64, 29, 43] {
                {
                    let (label, source) = ("with", with_source.clone());
                    let config = PpaTunerConfig {
                        initial_samples: 36,
                        max_iterations: 26,
                        tau,
                        delta_rel,
                        seed,
                        ..Default::default()
                    };
                    let mut oracle = VecOracle::new(table.clone());
                    let r = PpaTuner::new(config)
                        .run(&source, &candidates, &mut oracle)
                        .unwrap();
                    let predicted: Vec<Vec<f64>> =
                        r.pareto_indices.iter().map(|&i| table[i].clone()).collect();
                    let hv =
                        pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)
                            .unwrap();
                    let adrs = pareto::metrics::adrs(&golden, &predicted).unwrap();
                    println!(
                    "{space} tau={tau} delta={delta_rel} seed={seed} {label:<8} HV={hv:.4} ADRS={adrs:.4} runs={} verify={} iters={}",
                    r.runs, r.verification_runs, r.iterations
                );
                }
            }
        }
    }
}

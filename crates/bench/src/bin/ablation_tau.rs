//! Ablation A3: the region-scale coefficient τ of Eq. (9), swept on
//! Scenario Two. Small τ classifies aggressively (fast, riskier); large τ
//! is conservative (slow, safer).
//!
//! Usage: `cargo run -p bench --release --bin ablation_tau [seed]
//!         [--trace <path>] [-q|-v]`

use bench::{BinArgs, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let seed = args.seed;
    let scenario = Scenario::two(seed);
    let space = ObjectiveSpace::AreaPowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = pareto::hypervolume::reference_point(&table, 1.1).expect("ref");
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");

    println!("A3: tau sweep on {} ({space})", scenario.name());
    println!(
        "{:>6} {:>8} {:>8} {:>6} {:>8}",
        "tau", "HV", "ADRS", "runs", "dropped@end"
    );
    for tau in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
        let mut hv = 0.0;
        let mut ad = 0.0;
        let mut runs = 0.0;
        let mut dropped = 0.0;
        let seeds = [seed, seed + 7, seed + 19];
        for &sd in &seeds {
            let config = PpaTunerConfig {
                initial_samples: 36,
                max_iterations: 26,
                tau,
                seed: sd,
                ..Default::default()
            };
            let mut oracle = VecOracle::new(table.clone());
            let r = PpaTuner::new(config)
                .run_observed(&source, &candidates, &mut oracle, &sinks.observer())
                .expect("tuning succeeds");
            let predicted: Vec<Vec<f64>> =
                r.pareto_indices.iter().map(|&i| table[i].clone()).collect();
            hv += pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)
                .expect("hv");
            ad += pareto::metrics::adrs(&golden, &predicted).expect("adrs");
            runs += r.runs as f64;
            dropped += r.history.last().map_or(0.0, |h| h.dropped as f64);
        }
        let n = seeds.len() as f64;
        println!(
            "{:>6.1} {:>8.4} {:>8.4} {:>6.0} {:>8.0}",
            tau,
            hv / n,
            ad / n,
            runs / n,
            dropped / n
        );
    }
    sinks.flush();
}

//! Regenerates **Table 3** of the paper: the whole-performance comparison
//! on the Target2 benchmark (Scenario Two — similar but larger design).
//!
//! Usage: `cargo run -p bench --release --bin table3 [seed]
//!         [--trace <path>] [-q|-v]`
//! Writes `table3.txt` and `table3.json` in the working directory.

use std::time::Instant;

use bench::{render_table, run_method_observed, BinArgs, Budgets, Method, MethodScore, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let seed = args.seed;
    let t0 = Instant::now();
    sinks.message("generating Source2/Target2 (1440 + 727 flow runs)...");
    let scenario = Scenario::two(seed);
    sinks.message(format!("benchmarks ready in {:.1?}", t0.elapsed()));

    let budgets = Budgets::scenario_two();
    // Every cell is averaged over three seeds to damp selection luck.
    let seeds = [seed, seed.wrapping_add(12), seed.wrapping_add(26)];
    let mut rows: Vec<(ObjectiveSpace, Vec<MethodScore>)> = Vec::new();
    for space in ObjectiveSpace::ALL {
        let mut scores = Vec::new();
        for m in Method::ALL {
            let t = Instant::now();
            let mut hv = 0.0;
            let mut ad = 0.0;
            let mut runs = 0usize;
            for &sd in &seeds {
                let s = run_method_observed(&scenario, space, m, &budgets, sd, &sinks.observer());
                hv += s.hv_error;
                ad += s.adrs;
                runs += s.runs;
            }
            let n = seeds.len() as f64;
            let s = MethodScore {
                hv_error: hv / n,
                adrs: ad / n,
                runs: (runs as f64 / n).round() as usize,
            };
            sinks.message(format!(
                "{space} / {:<10} HV={:.3} ADRS={:.3} runs={} ({:.1?})",
                m.label(),
                s.hv_error,
                s.adrs,
                s.runs,
                t.elapsed()
            ));
            scores.push(s);
        }
        rows.push((space, scores));
    }

    let table = render_table(
        "Table 3: The whole performance comparison on Target2 benchmark.",
        &rows,
    );
    println!("{table}");
    std::fs::write("table3.txt", &table).expect("write table3.txt");
    let json: Vec<_> = rows
        .iter()
        .map(|(space, scores)| {
            serde_json::json!({
                "space": space.label(),
                "methods": Method::ALL.iter().zip(scores).map(|(m, s)| {
                    serde_json::json!({
                        "method": m.label(),
                        "hv_error": s.hv_error,
                        "adrs": s.adrs,
                        "runs": s.runs,
                    })
                }).collect::<Vec<_>>(),
            })
        })
        .collect();
    std::fs::write(
        "table3.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write table3.json");
    sinks.message(format!(
        "total {:.1?}; wrote table3.txt and table3.json",
        t0.elapsed()
    ));
    sinks.flush();
}

//! One-off full-scale probe of Scenario One (not a paper artifact):
//! PPATuner vs the two strongest baselines on one objective space.

use std::time::Instant;

use bench::{run_method, Budgets, Method};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;

fn main() {
    let space = match std::env::args().nth(1).as_deref() {
        Some("ad") => ObjectiveSpace::AreaDelay,
        Some("apd") => ObjectiveSpace::AreaPowerDelay,
        _ => ObjectiveSpace::PowerDelay,
    };
    let t0 = Instant::now();
    let scenario = Scenario::one(1);
    println!("generated benchmarks in {:.1?}", t0.elapsed());
    let mut budgets = Budgets::scenario_one();
    if let Some(init) = std::env::args().nth(2).and_then(|s| s.parse().ok()) {
        budgets.ppatuner_init = init;
    }
    if let Some(iters) = std::env::args().nth(3).and_then(|s| s.parse().ok()) {
        budgets.ppatuner_iters = iters;
    }
    {
        let m = Method::PpaTuner;
        let t = Instant::now();
        let s = run_method(&scenario, space, m, &budgets, 17);
        println!(
            "{:<10} {space} HV={:.3} ADRS={:.3} runs={} ({:.1?})",
            m.label(),
            s.hv_error,
            s.adrs,
            s.runs,
            t.elapsed()
        );
    }
}

//! Ablation A1: transfer GP vs. independent GP (no source data), on both
//! scenarios. Isolates the contribution of the paper's transfer kernel.
//!
//! Usage: `cargo run -p bench --release --bin ablation_transfer [seed]
//!         [--trace <path>] [-q|-v]`

use bench::{BinArgs, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let seed = args.seed;
    let cases = [
        (
            "scenario-one",
            Scenario::one_with_counts(seed, 1500, 1200),
            60,
            20,
        ),
        ("scenario-two", Scenario::two(seed), 36, 26),
    ];
    println!("A1: transfer vs no-transfer (3-seed means)");
    for (name, scenario, init, iters) in cases {
        for space in [ObjectiveSpace::PowerDelay, ObjectiveSpace::AreaPowerDelay] {
            let candidates = scenario.target_candidates();
            let table = scenario.target_table(space);
            let golden = scenario.target().golden_front(space);
            let reference = pareto::hypervolume::reference_point(&table, 1.1).expect("ref");
            let (sx, sy) = scenario.source_xy(space);
            let with_source = SourceData::new(sx, sy).expect("source");
            for (label, source) in [
                ("transfer", with_source.clone()),
                ("no-transfer", SourceData::empty()),
            ] {
                let mut hv = 0.0;
                let mut ad = 0.0;
                let mut runs = 0;
                let seeds = [seed, seed + 7, seed + 19];
                for &sd in &seeds {
                    let config = PpaTunerConfig {
                        initial_samples: init,
                        max_iterations: iters,
                        seed: sd,
                        ..Default::default()
                    };
                    let mut oracle = VecOracle::new(table.clone());
                    let r = PpaTuner::new(config)
                        .run_observed(&source, &candidates, &mut oracle, &sinks.observer())
                        .expect("tuning succeeds");
                    let predicted: Vec<Vec<f64>> =
                        r.pareto_indices.iter().map(|&i| table[i].clone()).collect();
                    hv += pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)
                        .expect("hv");
                    ad += pareto::metrics::adrs(&golden, &predicted).expect("adrs");
                    runs += r.runs;
                }
                let n = seeds.len() as f64;
                println!(
                    "{name} {space} {label:<12} HV={:.4} ADRS={:.4} runs={:.0}",
                    hv / n,
                    ad / n,
                    runs as f64 / n
                );
            }
        }
    }
    sinks.flush();
}

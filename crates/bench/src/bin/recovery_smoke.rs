//! Recovery smoke: the degraded-mode run supervisor against the full
//! tuner loop, on the committed fit-fault plan.
//!
//! CI's fast answer to "does the crash-and-degrade story actually hold
//! up?": one seeded scenario and five gates spanning the supervisor's
//! fault domains —
//!
//! 1. **Kill points (storage):** replaying the checkpoint-save prefix of
//!    a fault-free run into a fresh on-disk chain and resuming from it —
//!    for *every* save boundary — reproduces the fault-free result
//!    bitwise.
//! 2. **Torn writes (storage):** truncating the newest chain entry at
//!    every byte boundary still recovers the last-good checkpoint.
//! 3. **Numerical degradation:** with the committed ≥25 % fit-fault plan
//!    armed, the run completes with lawful degraded iterations (trace
//!    passes every invariant) and its hypervolume error stays within
//!    1.05× of the fault-free run.
//! 4. **Determinism under degradation:** the degraded run's canonical
//!    trace is byte-identical across `eval_workers` 1 and 4, and a
//!    mid-run resume with the plan re-armed lands on the same outcome.
//! 5. **Liveness:** a universally hanging oracle behind the watchdog
//!    still completes, every hang surfacing as a deterministic timeout.
//!
//! Usage: `cargo run --release -p bench --bin recovery_smoke -- [plan.json]`
//! (defaults to the committed `crates/bench/plans/recovery_smoke.json`).
//! Exits non-zero listing every violated gate.

use std::cell::RefCell;
use std::path::PathBuf;

use obs::RecordingSink;
use pdsim::ObjectiveSpace;
use ppatuner::{
    inject_fit_faults, ChainCheckpointStore, Checkpoint, CheckpointError, CheckpointStore,
    FitFaultPlan, PpaTuner, PpaTunerConfig, SourceData, TuneResult, VecOracle, WatchdogOracle,
};
use testkit::chaos::HangingOracle;
use testkit::invariants;
use testkit::trace::canonical_jsonl;

/// Keeps every checkpoint ever saved so the smoke can replay the save
/// sequence into fresh chains and crash at any boundary.
#[derive(Default)]
struct CaptureStore {
    all: RefCell<Vec<Checkpoint>>,
}

impl CheckpointStore for CaptureStore {
    fn save(&self, c: &Checkpoint) -> Result<(), CheckpointError> {
        self.all.borrow_mut().push(c.clone());
        Ok(())
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(self.all.borrow().last().cloned())
    }
}

fn same_outcome(a: &TuneResult, b: &TuneResult) -> Result<(), String> {
    let fields: [(&str, bool); 8] = [
        ("pareto_indices", a.pareto_indices == b.pareto_indices),
        ("evaluated", a.evaluated == b.evaluated),
        ("runs", a.runs == b.runs),
        ("iterations", a.iterations == b.iterations),
        ("delta", a.delta == b.delta),
        ("quarantined", a.quarantined == b.quarantined),
        ("degraded_fits", a.degraded_fits == b.degraded_fits),
        (
            "failure counters",
            (a.eval_failures, a.eval_retries) == (b.eval_failures, b.eval_retries),
        ),
    ];
    let diverged: Vec<&str> = fields
        .iter()
        .filter(|(_, same)| !same)
        .map(|(name, _)| *name)
        .collect();
    if diverged.is_empty() {
        Ok(())
    } else {
        Err(format!("diverged in {}", diverged.join(", ")))
    }
}

fn scratch_dir(tag: &str, n: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ppatuner_recovery_smoke_{tag}_{}_{n}",
        std::process::id()
    ))
}

fn main() {
    let plan_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/plans/recovery_smoke.json", env!("CARGO_MANIFEST_DIR")));
    let plan_json = std::fs::read_to_string(&plan_path)
        .unwrap_or_else(|e| panic!("cannot read fit-fault plan {plan_path}: {e}"));
    let plan: FitFaultPlan = serde_json::from_str(&plan_json)
        .unwrap_or_else(|e| panic!("malformed fit-fault plan {plan_path}: {e}"));
    plan.validate().expect("committed plan must be valid");
    assert!(
        plan.refit_fail >= 0.25 && plan.condition_fail >= 0.25,
        "the smoke wants >= 25% injected fit faults on both calibration \
         paths, plan has refit {} / condition {}",
        plan.refit_fail,
        plan.condition_fail
    );

    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let truth = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 20,
        tau: 3.0,
        // Several refit sites within the horizon, and enough budget that
        // a 25% plan cannot plausibly exhaust it.
        refit_every: 5,
        degraded_fit_budget: 64,
        seed: testkit::test_seed(),
        threads: 1,
        ..Default::default()
    };

    let mut violations: Vec<String> = Vec::new();

    // ------------------------------------------------ fault-free anchor
    let store = CaptureStore::default();
    let mut clean_oracle = VecOracle::new(truth.clone());
    let clean = PpaTuner::new(config.clone())
        .run_checkpointed(
            &source,
            &candidates,
            &mut clean_oracle,
            &obs::NULL_SINK,
            &store,
        )
        .expect("fault-free run succeeds");
    let clean_score = bench::score(&scenario, space, &clean.pareto_indices, clean.runs);
    let checkpoints = store.all.into_inner();
    println!(
        "fault-free anchor: {} iterations, {} checkpoints",
        clean.iterations,
        checkpoints.len()
    );
    if checkpoints.len() < 3 {
        violations.push(format!(
            "expected several checkpoints, got {}",
            checkpoints.len()
        ));
    }

    // -------------------------------------- gate 1: kill-point resumes
    let mut kill_failures = 0usize;
    for k in 0..checkpoints.len() {
        let dir = scratch_dir("killpoint", k);
        let chain = ChainCheckpointStore::new(&dir, 3);
        for c in &checkpoints[..=k] {
            chain.save(c).expect("chain save");
        }
        let mut oracle = VecOracle::new(truth.clone());
        match PpaTuner::new(config.clone()).resume(
            &source,
            &candidates,
            &mut oracle,
            &obs::NULL_SINK,
            &chain,
        ) {
            Ok(resumed) => {
                if let Err(e) = same_outcome(&clean, &resumed) {
                    kill_failures += 1;
                    violations.push(format!("kill point {k}: {e}"));
                }
            }
            Err(e) => {
                kill_failures += 1;
                violations.push(format!("kill point {k}: resume failed: {e}"));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "kill points: {} boundaries resumed, {} diverged",
        checkpoints.len(),
        kill_failures
    );

    // ----------------------------------- gate 2: every-byte truncation
    let dir = scratch_dir("truncate", 0);
    let chain = ChainCheckpointStore::new(&dir, 4);
    for c in &checkpoints {
        chain.save(c).expect("chain save");
    }
    let n = checkpoints.len();
    let newest = dir.join(format!("ckpt-{:08}.json", n - 1));
    let bytes = std::fs::read(&newest).expect("newest entry readable");
    let last_good = checkpoints[n - 2].content_digest();
    let mut torn_failures = 0usize;
    for cut in 0..bytes.len() {
        std::fs::write(&newest, &bytes[..cut]).expect("truncate entry");
        let recovered = chain
            .recover()
            .ok()
            .and_then(|r| r.checkpoint)
            .map(|c| c.content_digest());
        if recovered != Some(last_good) {
            torn_failures += 1;
            if torn_failures <= 3 {
                violations.push(format!(
                    "truncation at byte {cut} did not recover the last-good checkpoint"
                ));
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "torn writes: {} byte boundaries scanned, {} unrecovered",
        bytes.len(),
        torn_failures
    );
    if torn_failures > 3 {
        violations.push(format!(
            "... and {} more unrecovered truncations",
            torn_failures - 3
        ));
    }

    // --------------------------------- gate 3: degraded run, hv budget
    let sink = RecordingSink::new();
    let store = CaptureStore::default();
    let degraded = {
        let _armed = inject_fit_faults(plan.clone());
        let mut oracle = VecOracle::new(truth.clone());
        PpaTuner::new(config.clone())
            .run_checkpointed(&source, &candidates, &mut oracle, &sink, &store)
            .expect("degraded run completes within budget")
    };
    let degraded_score = bench::score(&scenario, space, &degraded.pareto_indices, degraded.runs);
    match invariants::check_trace(&sink.events(), Some(&truth)) {
        Ok(report) => println!(
            "degraded trace lawful: {} degraded fits, {} snapshots, {} accepted evals",
            report.degraded_fits, report.snapshots, report.tool_evals
        ),
        Err(e) => violations.push(format!("degraded-run invariant violated: {e}")),
    }
    if degraded.degraded_fits == 0 {
        violations.push("the plan injected no fit faults at all".into());
    }
    let limit = clean_score.hv_error.abs() * 1.05 + 1e-9;
    println!(
        "hv error: clean {:.6}, degraded {:.6} (limit {:.6}); {} degraded fits",
        clean_score.hv_error, degraded_score.hv_error, limit, degraded.degraded_fits
    );
    if degraded_score.hv_error.abs() > limit {
        violations.push(format!(
            "degraded hv error {} exceeds 1.05x the fault-free {}",
            degraded_score.hv_error, clean_score.hv_error
        ));
    }

    // --------------------- gate 4: degraded determinism across workers
    let run_degraded_concurrent = |workers: usize| {
        let cfg = PpaTunerConfig {
            batch_size: 4,
            eval_workers: workers,
            ..config.clone()
        };
        let _armed = inject_fit_faults(plan.clone());
        let oracle = ppatuner::SharedOracle::new(VecOracle::new(truth.clone()));
        let sink = RecordingSink::new();
        let result = PpaTuner::new(cfg)
            .run_concurrent(&source, &candidates, &oracle, &sink)
            .expect("degraded concurrent run completes");
        (result, sink.events())
    };
    let (serial, serial_events) = run_degraded_concurrent(1);
    let (wide, wide_events) = run_degraded_concurrent(4);
    if serial.degraded_fits == 0 {
        violations.push("concurrent degraded run saw no fit faults".into());
    }
    if let Err(e) = same_outcome(&serial, &wide) {
        violations.push(format!("degraded outcome depends on worker count: {e}"));
    }
    if canonical_jsonl(&serial_events) != canonical_jsonl(&wide_events) {
        violations.push("degraded canonical trace depends on worker count".into());
    } else {
        println!(
            "degraded determinism: canonical traces byte-identical across \
             eval_workers 1 and 4 ({} degraded fits each)",
            serial.degraded_fits
        );
    }
    // Mid-run resume with the plan re-armed lands on the same outcome.
    let degraded_checkpoints = store.all.into_inner();
    if let Some(mid) = degraded_checkpoints
        .iter()
        .find(|c| c.snapshot.degraded_fits > 0)
    {
        let dir = scratch_dir("degraded_resume", 0);
        let chain = ChainCheckpointStore::new(&dir, 2);
        chain.save(mid).expect("chain save");
        let resumed = {
            let _armed = inject_fit_faults(plan.clone());
            let mut oracle = VecOracle::new(truth.clone());
            PpaTuner::new(config.clone()).resume(
                &source,
                &candidates,
                &mut oracle,
                &obs::NULL_SINK,
                &chain,
            )
        };
        std::fs::remove_dir_all(&dir).ok();
        match resumed {
            Ok(resumed) => {
                if let Err(e) = same_outcome(&degraded, &resumed) {
                    violations.push(format!("degraded resume golden mismatch: {e}"));
                } else {
                    println!("degraded resume golden: identical outcome after mid-run restart");
                }
            }
            Err(e) => violations.push(format!("degraded resume failed: {e}")),
        }
    } else {
        violations.push("no checkpoint recorded a degraded fit".into());
    }

    // ------------------------------------------ gate 5: watchdog smoke
    let hangs: Vec<(usize, usize)> = (0..truth.len()).map(|i| (i, 1)).collect();
    let oracle = WatchdogOracle::new(HangingOracle::new(truth.clone(), hangs, 5.0), 0.05);
    let cfg = PpaTunerConfig {
        batch_size: 4,
        eval_workers: 4,
        max_eval_attempts: 3,
        ..config.clone()
    };
    let sink = RecordingSink::new();
    match PpaTuner::new(cfg).run_concurrent(&source, &candidates, &oracle, &sink) {
        Ok(result) => {
            let fired = sink.count("WatchdogFired");
            println!(
                "watchdog: {} firings over {} failures, {} runs",
                fired, result.eval_failures, result.runs
            );
            if fired == 0 {
                violations.push("watchdog never fired under a universally hanging oracle".into());
            }
            if fired != result.eval_failures {
                violations.push(format!(
                    "watchdog fired {fired} times but {} failures were recorded",
                    result.eval_failures
                ));
            }
            if let Err(e) = invariants::check_trace(&sink.events(), Some(&truth)) {
                violations.push(format!("watchdog-run invariant violated: {e}"));
            }
        }
        Err(e) => violations.push(format!("watchdogged run failed: {e}")),
    }

    if violations.is_empty() {
        println!("recovery smoke PASSED");
    } else {
        eprintln!("recovery smoke FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

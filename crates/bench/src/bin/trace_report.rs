//! Aggregates a JSONL event trace (written via `--trace <path>` by the
//! experiment bins, or by any [`obs::JsonlSink`]) into a timing and
//! convergence summary: where the wall-clock went per phase and causal
//! span, how the δ-dominance classification progressed, how the GP fits
//! behaved, and what resources the hot paths consumed.
//!
//! Usage:
//!
//! ```text
//! trace_report <trace.jsonl> [--lenient]
//! trace_report --fleet <dir> [--lenient]
//! ```
//!
//! Malformed lines abort with a nonzero exit and a line number;
//! `--lenient` skips and counts them instead. `--fleet <dir>` ingests
//! every `*.jsonl` in the directory and prints cross-run aggregates
//! (hv-convergence quantiles, failure/retry/quarantine rates, per-phase
//! time, slowest spans).

use std::collections::BTreeMap;

use bench::fleet::{self, FleetReport};
use obs::Event;

/// Slowest-span entries shown by the fleet view.
const FLEET_TOP_K: usize = 10;

fn parse_file(path: &str, lenient: bool) -> Vec<Event> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read trace {path}: {e}");
        std::process::exit(1);
    });
    match fleet::parse_jsonl(&text, lenient) {
        Ok(parsed) => {
            if parsed.skipped > 0 {
                eprintln!(
                    "warning: {path}: skipped {} malformed line(s)",
                    parsed.skipped
                );
            }
            parsed.events
        }
        Err(e) => {
            eprintln!(
                "error: {path}:{}: {} (rerun with --lenient to skip)",
                e.line, e.message
            );
            std::process::exit(1);
        }
    }
}

fn fleet_main(dir: &str, lenient: bool) {
    let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read fleet directory {dir}: {e}");
            std::process::exit(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("error: fleet directory {dir} contains no *.jsonl traces");
        std::process::exit(1);
    }
    let mut report = FleetReport::default();
    for path in &files {
        let events = parse_file(&path.to_string_lossy(), lenient);
        let name = path.file_stem().map_or_else(
            || path.to_string_lossy().into_owned(),
            |s| s.to_string_lossy().into_owned(),
        );
        report.runs.push(fleet::summarize_run(&name, &events));
    }
    print!("{}", report.render(FLEET_TOP_K));
}

#[derive(Default)]
struct Phase {
    count: usize,
    seconds: f64,
}

impl Phase {
    fn add(&mut self, secs: f64) {
        self.count += 1;
        self.seconds += secs;
    }
}

fn main() {
    let mut lenient = false;
    let mut fleet_dir: Option<String> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lenient" => lenient = true,
            "--fleet" => fleet_dir = args.next(),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = fleet_dir {
        fleet_main(&dir, lenient);
        return;
    }
    let Some(path) = path else {
        eprintln!("usage: trace_report <trace.jsonl> [--lenient] | --fleet <dir> [--lenient]");
        std::process::exit(2);
    };
    let events = parse_file(&path, lenient);
    if events.is_empty() {
        eprintln!("trace {path} contains no events");
        std::process::exit(1);
    }

    let mut phases: BTreeMap<String, Phase> = BTreeMap::new();
    let mut iterations: Vec<(usize, usize, usize, usize, usize, f64)> = Vec::new();
    let mut gp_evals = 0usize;
    let mut gp_cached_evals = 0usize;
    let mut gp_fresh_evals = 0usize;
    let mut gp_restarts = 0usize;
    let mut gp_refits = 0usize;
    let mut gp_jittered = 0usize;
    let mut predict_seconds = 0.0f64;
    let mut lambda_by_objective: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    let mut run_start: Option<String> = None;
    let mut run_end: Option<String> = None;
    let mut failures_by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut retries = 0usize;
    let mut quarantined: Vec<usize> = Vec::new();
    let mut checkpoints = 0usize;
    let mut last_checkpoint: Option<(usize, usize)> = None;
    let mut batch_selects = 0usize;
    let mut batch_members = 0usize;
    let mut batch_q = 0usize;
    let mut spans: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    let mut slowest: Vec<(f64, u64, String)> = Vec::new();
    let mut resources = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let mut predict_resources = (0u64, 0u64, 0u64, 0u64);
    let mut pool_refines: Vec<(usize, usize, usize, usize, f64)> = Vec::new();
    let mut pool_splits_total = 0usize;
    let mut predict_modes: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut degraded_by_mode: BTreeMap<String, usize> = BTreeMap::new();
    let mut degraded_max_streak = 0usize;
    let mut recovery_scans = 0usize;
    let mut recovery_skipped = 0usize;
    let mut watchdog_firings = 0usize;

    for e in &events {
        match e {
            Event::RunStart {
                candidates,
                objectives,
                dim,
                initial_samples,
                max_iterations,
                seed,
            } => {
                run_start = Some(format!(
                    "{candidates} candidates, {objectives} objectives, dim {dim}, \
                     {initial_samples} initial samples, cap {max_iterations} iters, seed {seed}"
                ));
            }
            Event::GpFit {
                objective,
                refit,
                lambda,
                restarts,
                evals,
                cached_evals,
                fresh_evals,
                jitter,
                duration_s,
                ..
            } => {
                phases.entry("gp-fit".into()).or_default().add(*duration_s);
                gp_evals += evals;
                gp_cached_evals += cached_evals;
                gp_fresh_evals += fresh_evals;
                gp_restarts += restarts;
                gp_refits += usize::from(*refit);
                gp_jittered += usize::from(*jitter > 0.0);
                lambda_by_objective
                    .entry(*objective)
                    .and_modify(|(_, last)| *last = *lambda)
                    .or_insert((*lambda, *lambda));
            }
            Event::ToolEval { duration_s, .. } => {
                phases
                    .entry("tool-eval".into())
                    .or_default()
                    .add(*duration_s);
            }
            Event::Stage {
                stage, duration_s, ..
            } => {
                phases
                    .entry(format!("flow/{stage}"))
                    .or_default()
                    .add(*duration_s);
            }
            Event::IterationEnd {
                iteration,
                runs,
                pareto,
                dropped,
                undecided,
                hypervolume,
                duration_s,
                predict_s,
                ..
            } => {
                phases
                    .entry("iteration".into())
                    .or_default()
                    .add(*duration_s);
                predict_seconds += predict_s;
                iterations.push((
                    *iteration,
                    *runs,
                    *pareto,
                    *dropped,
                    *undecided,
                    *hypervolume,
                ));
            }
            Event::RunEnd {
                iterations: it,
                runs,
                verification_runs,
                pareto,
                duration_s,
            } => {
                run_end = Some(format!(
                    "{it} iterations, {runs} runs (+{verification_runs} verification), \
                     {pareto} pareto points, {duration_s:.3} s total"
                ));
            }
            Event::EvalFailed { kind, .. } => {
                *failures_by_kind.entry(kind.clone()).or_default() += 1;
            }
            Event::EvalRetry { .. } => retries += 1,
            Event::CandidateQuarantined { candidate, .. } => quarantined.push(*candidate),
            Event::Checkpoint {
                iteration, runs, ..
            } => {
                checkpoints += 1;
                last_checkpoint = Some((*iteration, *runs));
            }
            Event::SpanEnd {
                id,
                name,
                duration_s,
            } => {
                let entry = spans.entry(name.clone()).or_default();
                entry.0 += 1;
                entry.1 += duration_s;
                slowest.push((*duration_s, *id, name.clone()));
            }
            Event::ResourceSample {
                chol_flops,
                chol_panels,
                tri_solve_rhs,
                fitcache_hits,
                fitcache_misses,
                kernel_assemblies,
                predict_cache_hits,
                predict_cache_misses,
                predict_cache_evictions,
                predict_chunks,
                ..
            } => {
                resources.0 += chol_flops;
                resources.1 += chol_panels;
                resources.2 += tri_solve_rhs;
                resources.3 += fitcache_hits;
                resources.4 += fitcache_misses;
                resources.5 += kernel_assemblies;
                predict_resources.0 += predict_cache_hits;
                predict_resources.1 += predict_cache_misses;
                predict_resources.2 += predict_cache_evictions;
                predict_resources.3 += predict_chunks;
            }
            Event::BatchSelect { q, chosen, .. } => {
                batch_selects += 1;
                batch_members += chosen.len();
                batch_q = batch_q.max(*q);
            }
            Event::PoolRefine {
                iteration,
                splits,
                leaves,
                pool_size,
                effective_pool,
            } => {
                pool_splits_total += splits;
                pool_refines.push((*iteration, *splits, *leaves, *pool_size, *effective_pool));
            }
            Event::PredictMode { mode, queries, .. } => {
                let entry = predict_modes.entry(mode.clone()).or_default();
                entry.0 += 1;
                entry.1 += queries;
            }
            Event::DegradedFit {
                mode, consecutive, ..
            } => {
                *degraded_by_mode.entry(mode.clone()).or_default() += 1;
                degraded_max_streak = degraded_max_streak.max(*consecutive);
            }
            Event::RecoveryScan { skipped, .. } => {
                recovery_scans += 1;
                recovery_skipped += skipped;
            }
            Event::WatchdogFired { .. } => watchdog_firings += 1,
            Event::Classify { .. }
            | Event::RegionSnapshot { .. }
            | Event::Select { .. }
            | Event::SpanStart { .. }
            | Event::Message { .. } => {}
        }
    }

    println!("trace report: {path} ({} events)", events.len());
    if let Some(s) = &run_start {
        println!("run:   {s}");
    }
    if let Some(s) = &run_end {
        println!("done:  {s}");
    }

    println!("\nwhere the time went:");
    println!(
        "{:<14} {:>8} {:>12} {:>12}",
        "phase", "count", "total s", "mean ms"
    );
    for (name, p) in &phases {
        println!(
            "{:<14} {:>8} {:>12.3} {:>12.2}",
            name,
            p.count,
            p.seconds,
            if p.count == 0 {
                0.0
            } else {
                p.seconds / p.count as f64 * 1e3
            }
        );
    }

    if gp_refits > 0 || gp_evals > 0 {
        println!(
            "\ngp fitting: {gp_refits} full refits ({gp_restarts} restarts, {gp_evals} objective \
             evals), {gp_jittered} fits needed Cholesky jitter"
        );
        println!(
            "  objective evals: {gp_cached_evals} distance-cached, {gp_fresh_evals} fresh model \
             builds; box prediction {predict_seconds:.3} s total"
        );
        for (k, (first, last)) in &lambda_by_objective {
            println!("  objective {k}: lambda {first:.3} -> {last:.3}");
        }
    }

    if !iterations.is_empty() {
        println!("\nclassification trajectory (iteration: runs, pareto/dropped/undecided, hv):");
        let stride = (iterations.len() / 12).max(1);
        for (n, (it, runs, pareto, dropped, undecided, hv)) in iterations.iter().enumerate() {
            if n % stride == 0 || n + 1 == iterations.len() {
                println!(
                    "  {it:>4}: runs {runs:>5}  P {pareto:>4}  D {dropped:>4}  U {undecided:>4}  \
                     hv {hv:.4}"
                );
            }
        }
        let (first, last) = (&iterations[0], &iterations[iterations.len() - 1]);
        println!(
            "  undecided {} -> {}, hypervolume {:.4} -> {:.4}",
            first.4, last.4, first.5, last.5
        );
    }

    if batch_selects > 0 {
        println!(
            "\nbatch selection: {batch_selects} waves at q = {batch_q}, {batch_members} members \
             total (mean {:.1} per wave)",
            batch_members as f64 / batch_selects as f64
        );
    }

    if !pool_refines.is_empty() {
        let last = pool_refines[pool_refines.len() - 1];
        println!(
            "\nadaptive pool: {pool_splits_total} splits over {} refinement passes",
            pool_refines.len()
        );
        println!(
            "  final: {} leaves, {} candidates, effective pool {:.0}",
            last.2, last.3, last.4
        );
        let stride = (pool_refines.len() / 12).max(1);
        println!("  refinement trajectory (iteration: splits, leaves, pool, effective):");
        for (n, (it, splits, leaves, pool, eff)) in pool_refines.iter().enumerate() {
            if n % stride == 0 || n + 1 == pool_refines.len() {
                println!(
                    "  {it:>4}: +{splits:<3} leaves {leaves:>6}  pool {pool:>6}  eff {eff:>10.0}"
                );
            }
        }
    }
    if !predict_modes.is_empty() {
        println!("\npredict path usage (posterior backend per iteration):");
        for (mode, (iters, queries)) in &predict_modes {
            println!("  {mode:<8} {iters:>5} iterations, {queries:>8} box queries");
        }
    }

    let total_failures: usize = failures_by_kind.values().sum();
    if total_failures > 0 || !quarantined.is_empty() {
        println!("\nevaluation failures:");
        for (kind, count) in &failures_by_kind {
            println!("  {kind:<12} {count:>5}");
        }
        println!("  {retries} retries issued");
        if quarantined.is_empty() {
            println!("  no candidates quarantined (every failure recovered on retry)");
        } else {
            println!(
                "  {} candidates quarantined: {:?}",
                quarantined.len(),
                quarantined
            );
        }
    }
    if checkpoints > 0 {
        let (it, runs) = last_checkpoint.expect("count implies a checkpoint was seen");
        println!("\ncheckpoints: {checkpoints} written, last at iteration {it} ({runs} runs)");
    }

    let degraded_total: usize = degraded_by_mode.values().sum();
    if degraded_total + recovery_scans + watchdog_firings > 0 {
        println!("\nresilience:");
        if degraded_total > 0 {
            let modes: Vec<String> = degraded_by_mode
                .iter()
                .map(|(mode, count)| format!("{count} {mode}"))
                .collect();
            println!(
                "  {degraded_total} degraded fits ({}), longest streak {degraded_max_streak}",
                modes.join(", ")
            );
        }
        if recovery_scans > 0 {
            println!(
                "  {recovery_scans} recovery scans skipped {recovery_skipped} damaged \
                 checkpoint(s)"
            );
        }
        if watchdog_firings > 0 {
            println!("  {watchdog_firings} watchdog deadline firings");
        }
    }

    if !spans.is_empty() {
        println!("\ncausal spans:");
        println!(
            "{:<14} {:>8} {:>12} {:>12}",
            "span", "count", "total s", "mean ms"
        );
        for (name, (count, secs)) in &spans {
            println!(
                "{:<14} {:>8} {:>12.3} {:>12.2}",
                name,
                count,
                secs,
                secs / (*count).max(1) as f64 * 1e3
            );
        }
        slowest.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        println!("  slowest:");
        for (secs, id, name) in slowest.iter().take(5) {
            println!("  {:>10.1} ms  {name:<12} #{id}", secs * 1e3);
        }
    }

    let (flops, panels, rhs, hits, misses, kernels) = resources;
    if flops + panels + rhs + hits + misses + kernels > 0 {
        println!(
            "\nresources: {flops} Cholesky flops in {panels} panels, {rhs} triangular-solve \
             rhs, fitcache {hits} hits / {misses} misses, {kernels} kernel assemblies"
        );
    }
    let (p_hits, p_misses, p_evict, p_chunks) = predict_resources;
    if p_hits + p_misses + p_evict + p_chunks > 0 {
        let served = p_hits + p_misses;
        let rate = if served > 0 {
            100.0 * p_hits as f64 / served as f64
        } else {
            0.0
        };
        println!(
            "predict sweep: cache {p_hits} hits / {p_misses} misses ({rate:.1}% hit), \
             {p_evict} evictions, {p_chunks} chunks dispatched"
        );
    }
}

//! Aggregates a JSONL event trace (written via `--trace <path>` by the
//! experiment bins, or by any [`obs::JsonlSink`]) into a timing and
//! convergence summary: where the wall-clock went per phase, how the
//! δ-dominance classification progressed, and how the GP fits behaved.
//!
//! Usage: `cargo run -p bench --bin trace_report -- <trace.jsonl>`

use std::collections::BTreeMap;

use obs::Event;

#[derive(Default)]
struct Phase {
    count: usize,
    seconds: f64,
}

impl Phase {
    fn add(&mut self, secs: f64) {
        self.count += 1;
        self.seconds += secs;
    }
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_report <trace.jsonl>");
        std::process::exit(2);
    });
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));

    let mut events: Vec<Event> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(line) {
            Ok(e) => events.push(e),
            Err(e) => eprintln!("warning: line {}: unparseable event: {e}", lineno + 1),
        }
    }
    if events.is_empty() {
        eprintln!("trace {path} contains no events");
        std::process::exit(1);
    }

    let mut phases: BTreeMap<String, Phase> = BTreeMap::new();
    let mut iterations: Vec<(usize, usize, usize, usize, usize, f64)> = Vec::new();
    let mut gp_evals = 0usize;
    let mut gp_cached_evals = 0usize;
    let mut gp_fresh_evals = 0usize;
    let mut gp_restarts = 0usize;
    let mut gp_refits = 0usize;
    let mut gp_jittered = 0usize;
    let mut predict_seconds = 0.0f64;
    let mut lambda_by_objective: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    let mut run_start: Option<String> = None;
    let mut run_end: Option<String> = None;
    let mut failures_by_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut retries = 0usize;
    let mut quarantined: Vec<usize> = Vec::new();
    let mut checkpoints = 0usize;
    let mut last_checkpoint: Option<(usize, usize)> = None;

    for e in &events {
        match e {
            Event::RunStart {
                candidates,
                objectives,
                dim,
                initial_samples,
                max_iterations,
                seed,
            } => {
                run_start = Some(format!(
                    "{candidates} candidates, {objectives} objectives, dim {dim}, \
                     {initial_samples} initial samples, cap {max_iterations} iters, seed {seed}"
                ));
            }
            Event::GpFit {
                objective,
                refit,
                lambda,
                restarts,
                evals,
                cached_evals,
                fresh_evals,
                jitter,
                duration_s,
                ..
            } => {
                phases.entry("gp-fit".into()).or_default().add(*duration_s);
                gp_evals += evals;
                gp_cached_evals += cached_evals;
                gp_fresh_evals += fresh_evals;
                gp_restarts += restarts;
                gp_refits += usize::from(*refit);
                gp_jittered += usize::from(*jitter > 0.0);
                lambda_by_objective
                    .entry(*objective)
                    .and_modify(|(_, last)| *last = *lambda)
                    .or_insert((*lambda, *lambda));
            }
            Event::ToolEval { duration_s, .. } => {
                phases
                    .entry("tool-eval".into())
                    .or_default()
                    .add(*duration_s);
            }
            Event::Stage {
                stage, duration_s, ..
            } => {
                phases
                    .entry(format!("flow/{stage}"))
                    .or_default()
                    .add(*duration_s);
            }
            Event::IterationEnd {
                iteration,
                runs,
                pareto,
                dropped,
                undecided,
                hypervolume,
                duration_s,
                predict_s,
                ..
            } => {
                phases
                    .entry("iteration".into())
                    .or_default()
                    .add(*duration_s);
                predict_seconds += predict_s;
                iterations.push((
                    *iteration,
                    *runs,
                    *pareto,
                    *dropped,
                    *undecided,
                    *hypervolume,
                ));
            }
            Event::RunEnd {
                iterations: it,
                runs,
                verification_runs,
                pareto,
                duration_s,
            } => {
                run_end = Some(format!(
                    "{it} iterations, {runs} runs (+{verification_runs} verification), \
                     {pareto} pareto points, {duration_s:.3} s total"
                ));
            }
            Event::EvalFailed { kind, .. } => {
                *failures_by_kind.entry(kind.clone()).or_default() += 1;
            }
            Event::EvalRetry { .. } => retries += 1,
            Event::CandidateQuarantined { candidate, .. } => quarantined.push(*candidate),
            Event::Checkpoint {
                iteration, runs, ..
            } => {
                checkpoints += 1;
                last_checkpoint = Some((*iteration, *runs));
            }
            Event::Classify { .. }
            | Event::RegionSnapshot { .. }
            | Event::Select { .. }
            | Event::Message { .. } => {}
        }
    }

    println!("trace report: {path} ({} events)", events.len());
    if let Some(s) = &run_start {
        println!("run:   {s}");
    }
    if let Some(s) = &run_end {
        println!("done:  {s}");
    }

    println!("\nwhere the time went:");
    println!(
        "{:<14} {:>8} {:>12} {:>12}",
        "phase", "count", "total s", "mean ms"
    );
    for (name, p) in &phases {
        println!(
            "{:<14} {:>8} {:>12.3} {:>12.2}",
            name,
            p.count,
            p.seconds,
            if p.count == 0 {
                0.0
            } else {
                p.seconds / p.count as f64 * 1e3
            }
        );
    }

    if gp_refits > 0 || gp_evals > 0 {
        println!(
            "\ngp fitting: {gp_refits} full refits ({gp_restarts} restarts, {gp_evals} objective \
             evals), {gp_jittered} fits needed Cholesky jitter"
        );
        println!(
            "  objective evals: {gp_cached_evals} distance-cached, {gp_fresh_evals} fresh model \
             builds; box prediction {predict_seconds:.3} s total"
        );
        for (k, (first, last)) in &lambda_by_objective {
            println!("  objective {k}: lambda {first:.3} -> {last:.3}");
        }
    }

    if !iterations.is_empty() {
        println!("\nclassification trajectory (iteration: runs, pareto/dropped/undecided, hv):");
        let stride = (iterations.len() / 12).max(1);
        for (n, (it, runs, pareto, dropped, undecided, hv)) in iterations.iter().enumerate() {
            if n % stride == 0 || n + 1 == iterations.len() {
                println!(
                    "  {it:>4}: runs {runs:>5}  P {pareto:>4}  D {dropped:>4}  U {undecided:>4}  \
                     hv {hv:.4}"
                );
            }
        }
        let (first, last) = (&iterations[0], &iterations[iterations.len() - 1]);
        println!(
            "  undecided {} -> {}, hypervolume {:.4} -> {:.4}",
            first.4, last.4, first.5, last.5
        );
    }

    let total_failures: usize = failures_by_kind.values().sum();
    if total_failures > 0 || !quarantined.is_empty() {
        println!("\nevaluation failures:");
        for (kind, count) in &failures_by_kind {
            println!("  {kind:<12} {count:>5}");
        }
        println!("  {retries} retries issued");
        if quarantined.is_empty() {
            println!("  no candidates quarantined (every failure recovered on retry)");
        } else {
            println!(
                "  {} candidates quarantined: {:?}",
                quarantined.len(),
                quarantined
            );
        }
    }
    if checkpoints > 0 {
        let (it, runs) = last_checkpoint.expect("count implies a checkpoint was seen");
        println!("\ncheckpoints: {checkpoints} written, last at iteration {it} ({runs} runs)");
    }
}

//! Regenerates **Table 2** of the paper: the whole-performance comparison
//! on the Target1 benchmark (Scenario One — same design, different
//! parameter spaces/preferences). Five methods × three objective spaces,
//! reporting hypervolume error, ADRS, and tool runs.
//!
//! Usage: `cargo run -p bench --release --bin table2 [seed]
//!         [--trace <path>] [-q|-v]`
//! Writes `table2.txt` and `table2.json` in the working directory.

use std::time::Instant;

use bench::{render_table, run_method_observed, BinArgs, Budgets, Method, MethodScore, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let seed = args.seed;
    let t0 = Instant::now();
    sinks.message("generating Source1/Target1 (5000 + 5000 flow runs)...");
    let scenario = Scenario::one(seed);
    sinks.message(format!("benchmarks ready in {:.1?}", t0.elapsed()));

    let budgets = Budgets::scenario_one();
    // Every cell is averaged over three seeds to damp selection luck.
    let seeds = [seed, seed.wrapping_add(12), seed.wrapping_add(26)];
    let mut rows: Vec<(ObjectiveSpace, Vec<MethodScore>)> = Vec::new();
    for space in ObjectiveSpace::ALL {
        let mut scores = Vec::new();
        for m in Method::ALL {
            let t = Instant::now();
            let mut hv = 0.0;
            let mut ad = 0.0;
            let mut runs = 0usize;
            for &sd in &seeds {
                let s = run_method_observed(&scenario, space, m, &budgets, sd, &sinks.observer());
                hv += s.hv_error;
                ad += s.adrs;
                runs += s.runs;
            }
            let n = seeds.len() as f64;
            let s = MethodScore {
                hv_error: hv / n,
                adrs: ad / n,
                runs: (runs as f64 / n).round() as usize,
            };
            sinks.message(format!(
                "{space} / {:<10} HV={:.3} ADRS={:.3} runs={} ({:.1?})",
                m.label(),
                s.hv_error,
                s.adrs,
                s.runs,
                t.elapsed()
            ));
            scores.push(s);
        }
        rows.push((space, scores));
    }

    let table = render_table(
        "Table 2: The whole performance comparison on Target1 benchmark.",
        &rows,
    );
    println!("{table}");
    std::fs::write("table2.txt", &table).expect("write table2.txt");
    let json: Vec<_> = rows
        .iter()
        .map(|(space, scores)| {
            serde_json::json!({
                "space": space.label(),
                "methods": Method::ALL.iter().zip(scores).map(|(m, s)| {
                    serde_json::json!({
                        "method": m.label(),
                        "hv_error": s.hv_error,
                        "adrs": s.adrs,
                        "runs": s.runs,
                    })
                }).collect::<Vec<_>>(),
            })
        })
        .collect();
    std::fs::write(
        "table2.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write table2.json");
    sinks.message(format!(
        "total {:.1?}; wrote table2.txt and table2.json",
        t0.elapsed()
    ));
    sinks.flush();
}

//! Ablation A2: the relaxation δ — the paper's "precision controller" —
//! swept over the accuracy-vs-tool-runs trade-off on Scenario Two.
//!
//! Usage: `cargo run -p bench --release --bin ablation_delta [seed]
//!         [--trace <path>] [-q|-v]`

use bench::{BinArgs, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let seed = args.seed;
    let scenario = Scenario::two(seed);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let reference = pareto::hypervolume::reference_point(&table, 1.1).expect("ref");
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");

    println!("A2: delta sweep on {} ({space})", scenario.name());
    println!(
        "{:>8} {:>8} {:>8} {:>6} {:>8} {:>8}",
        "delta", "HV", "ADRS", "runs", "verify", "iters"
    );
    for delta_rel in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut hv = 0.0;
        let mut ad = 0.0;
        let mut runs = 0.0;
        let mut verify = 0.0;
        let mut iters = 0.0;
        let seeds = [seed, seed + 7, seed + 19];
        for &sd in &seeds {
            let config = PpaTunerConfig {
                initial_samples: 36,
                // Generous cap: δ controls where classification stops.
                max_iterations: 60,
                delta_rel,
                seed: sd,
                ..Default::default()
            };
            let mut oracle = VecOracle::new(table.clone());
            let r = PpaTuner::new(config)
                .run_observed(&source, &candidates, &mut oracle, &sinks.observer())
                .expect("tuning succeeds");
            let predicted: Vec<Vec<f64>> =
                r.pareto_indices.iter().map(|&i| table[i].clone()).collect();
            hv += pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference)
                .expect("hv");
            ad += pareto::metrics::adrs(&golden, &predicted).expect("adrs");
            runs += r.runs as f64;
            verify += r.verification_runs as f64;
            iters += r.iterations as f64;
        }
        let n = seeds.len() as f64;
        println!(
            "{:>8.2} {:>8.4} {:>8.4} {:>6.0} {:>8.0} {:>8.0}",
            delta_rel,
            hv / n,
            ad / n,
            runs / n,
            verify / n,
            iters / n
        );
    }
    sinks.flush();
}

//! `perf` — GP hot-path benchmark, producing `BENCH_gp.json`.
//!
//! Times the overhauled Gaussian-process hot paths against frozen copies
//! of the pre-overhaul implementations, at several problem sizes (see
//! [`bench::perfrun`] for the measurement core and the frozen baselines):
//!
//! - **Hyper-parameter search**: `fit_transfer_gp_from_starts` (distance
//!   cache + blocked Cholesky) vs the old clone-per-eval Nelder–Mead
//!   loop that reassembled the kernel point-by-point and factored it
//!   with the old serial Cholesky, from identical restart starts.
//! - **Incremental conditioning**: `TransferGp::condition_on` (rank-k
//!   factor extension) vs a full refit on the grown data set.
//! - **Batch prediction**: `TransferGp::predict_batch` (multi-RHS
//!   triangular solve) vs the scalar `predict` loop.
//! - **Tuner scenario**: one end-to-end `PpaTuner` run, absolute time.
//!
//! Usage: `perf [seed] [--smoke] [--out <path>]`. `--smoke` runs tiny
//! sizes only (the CI configuration); the default exercises a
//! table-2-equivalent size (200 source / 260 target points, 9 dims,
//! 5000 queries). Results are written as machine-readable JSON with the
//! seed and per-size speedup ratios. An existing `history` array in the
//! output file (maintained by `perf_gate`) is carried over unchanged.

use bench::{perfrun, BinArgs};
use serde_json::{json, Value};

fn main() {
    let args = BinArgs::parse(7);
    let mut smoke = false;
    let mut out_path = String::from("BENCH_gp.json");
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                if let Some(p) = argv.next() {
                    out_path = p;
                }
            }
            _ => {}
        }
    }

    let results = perfrun::run_sizes(smoke, args.seed);
    let size_reports: Vec<Value> = results.into_iter().map(|r| r.json).collect();
    // Rewriting the benchmark file must not erase the regression-gate
    // trajectories other bins append to it (`history` from perf_gate,
    // `pool_history` from pool_scale).
    let old: Option<Value> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    let carried = |key: &str| -> Vec<Value> {
        old.as_ref()
            .and_then(|o| o.get(key))
            .and_then(|h| h.as_array().map(<[Value]>::to_vec))
            .unwrap_or_default()
    };
    let report = json!({
        "seed": args.seed,
        "mode": if smoke { "smoke" } else { "full" },
        "sizes": size_reports,
        "history": carried("history"),
        "pool_history": carried("pool_history"),
    });
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{text}");
    eprintln!("perf: wrote {out_path}");
}

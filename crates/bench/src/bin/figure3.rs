//! Regenerates **Figure 3** of the paper: the Pareto fronts in the power
//! vs. delay space on the Target2 benchmark — the golden ("real") front
//! and the front each method learned.
//!
//! Usage: `cargo run -p bench --release --bin figure3 [seed]`
//! Writes `figure3.csv` (series: method, power_mw, delay_ns) and prints
//! an ASCII rendering.

use bench::{Budgets, Method};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let space = ObjectiveSpace::PowerDelay;
    eprintln!("generating Source2/Target2...");
    let scenario = Scenario::two(seed);
    let table = scenario.target_table(space);
    let golden = scenario.target().golden_front(space);
    let budgets = Budgets::scenario_two();

    let mut series: Vec<(String, Vec<Vec<f64>>)> = vec![("golden".into(), golden.clone())];

    for m in Method::ALL {
        let indices: Vec<usize> = match m {
            Method::PpaTuner => {
                let (sx, sy) = scenario.source_xy(space);
                let source = SourceData::new(sx, sy).expect("source ok");
                let config = PpaTunerConfig {
                    initial_samples: budgets.ppatuner_init,
                    max_iterations: budgets.ppatuner_iters,
                    seed,
                    ..Default::default()
                };
                let mut oracle = VecOracle::new(table.clone());
                PpaTuner::new(config)
                    .run(&source, &scenario.target_candidates(), &mut oracle)
                    .expect("ppatuner runs")
                    .pareto_indices
            }
            _ => {
                // Reuse the harness runner for the baselines by running
                // them directly (the indices, not just the score).
                let candidates = scenario.target_candidates();
                let mut oracle = VecOracle::new(table.clone());
                match m {
                    Method::Tcad19 => {
                        baselines::Tcad19::new(baselines::Tcad19Params {
                            budget: budgets.tcad_cap,
                            initial_samples: (budgets.tcad_cap / 8).max(8),
                            seed,
                            ..Default::default()
                        })
                        .tune(&candidates, &mut oracle)
                        .expect("tcad19")
                        .pareto_indices
                    }
                    Method::Mlcad19 => {
                        baselines::Mlcad19::new(baselines::Mlcad19Params {
                            budget: budgets.fixed,
                            initial_samples: (budgets.fixed / 8).max(8),
                            seed,
                            ..Default::default()
                        })
                        .tune(&candidates, &mut oracle)
                        .expect("mlcad19")
                        .pareto_indices
                    }
                    Method::Dac19 => {
                        baselines::Dac19::new(baselines::Dac19Params {
                            budget: budgets.dac_budget,
                            initial_samples: (budgets.dac_budget / 6).max(8),
                            seed,
                            ..Default::default()
                        })
                        .tune(&candidates, &mut oracle)
                        .expect("dac19")
                        .pareto_indices
                    }
                    Method::Aspdac20 => {
                        let (sx, sy) = scenario.source_xy(space);
                        let source = SourceData::new(sx, sy).expect("source ok");
                        baselines::Aspdac20::new(baselines::Aspdac20Params {
                            budget: budgets.fixed,
                            initial_samples: (budgets.fixed / 5).max(8),
                            seed,
                            ..Default::default()
                        })
                        .tune(&source, &candidates, &mut oracle)
                        .expect("aspdac20")
                        .pareto_indices
                    }
                    Method::PpaTuner => unreachable!("handled above"),
                }
            }
        };
        let pts: Vec<Vec<f64>> = indices.iter().map(|&i| table[i].clone()).collect();
        series.push((m.label().to_lowercase().replace('\'', ""), pts));
    }

    // CSV output.
    let mut csv = String::from("series,power_mw,delay_ns\n");
    for (name, pts) in &series {
        for p in pts {
            csv.push_str(&format!("{name},{:.6},{:.6}\n", p[0], p[1]));
        }
    }
    std::fs::write("figure3.csv", &csv).expect("write figure3.csv");
    eprintln!("wrote figure3.csv ({} series)", series.len());

    // ASCII rendering: golden front (G) vs PPATuner front (P).
    println!("Figure 3: Pareto fronts in power vs delay space on Target2 (ASCII).");
    println!("G = golden front, P = PPATuner, . = other methods");
    let all: Vec<&Vec<f64>> = series.iter().flat_map(|(_, pts)| pts.iter()).collect();
    let (p_lo, p_hi) = min_max(all.iter().map(|p| p[0]));
    let (d_lo, d_hi) = min_max(all.iter().map(|p| p[1]));
    const W: usize = 72;
    const H: usize = 24;
    let mut grid = vec![vec![' '; W]; H];
    let plot = |pts: &[Vec<f64>], ch: char, grid: &mut Vec<Vec<char>>| {
        for p in pts {
            let x = ((p[0] - p_lo) / (p_hi - p_lo).max(1e-12) * (W - 1) as f64) as usize;
            let y = ((p[1] - d_lo) / (d_hi - d_lo).max(1e-12) * (H - 1) as f64) as usize;
            let row = H - 1 - y.min(H - 1);
            let col = x.min(W - 1);
            if grid[row][col] == ' ' || ch != '.' {
                grid[row][col] = ch;
            }
        }
    };
    for (name, pts) in &series[1..] {
        let ch = if name.starts_with("ppatuner") {
            'P'
        } else {
            '.'
        };
        plot(pts, ch, &mut grid);
    }
    plot(&series[0].1, 'G', &mut grid);
    println!("delay {d_hi:.3} ns");
    for row in grid {
        println!("|{}", row.into_iter().collect::<String>());
    }
    println!("+{}", "-".repeat(W));
    println!("delay {d_lo:.3} ns / power: {p_lo:.2} .. {p_hi:.2} mW");
}

fn min_max(iter: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in iter {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

//! Chaos smoke: the committed fault plan against the full tuner loop.
//!
//! CI's fast answer to "does the robustness layer actually hold up?":
//! one seeded scenario, one committed [`pdsim::FaultPlan`] with a ≥20 %
//! injected failure rate (crashes, timeouts, NaN and outlier corruption,
//! plus two hard-failing candidates), and four gates:
//!
//! 1. the tuner completes classification without panicking and the
//!    recorded trace passes every invariant (including the
//!    failure-handling laws);
//! 2. transient faults recover — the run retries and keeps going — while
//!    the hard-failing candidates end up quarantined, never in the front;
//! 3. the chaos run's hypervolume error stays within 1.05× of the
//!    fault-free run on the same seed;
//! 4. resuming from a mid-run checkpoint with a **fresh** oracle
//!    reproduces the interrupted run exactly (the resume golden).
//!
//! Usage: `cargo run --release -p bench --bin chaos_smoke -- [plan.json]`
//! (defaults to the committed `crates/bench/plans/chaos_smoke.json`).
//! Exits non-zero listing every violated gate.

use std::cell::RefCell;

use obs::RecordingSink;
use pdsim::{FaultPlan, ObjectiveSpace};
use ppatuner::{
    Checkpoint, CheckpointError, CheckpointStore, MemoryCheckpointStore, PpaTuner, PpaTunerConfig,
    SourceData, TuneResult, VecOracle,
};
use testkit::chaos::FaultyVecOracle;
use testkit::invariants;

/// Keeps every checkpoint ever saved so the smoke can resume from the
/// middle of the run, simulating a crash at that point.
#[derive(Default)]
struct CaptureStore {
    inner: MemoryCheckpointStore,
    all: RefCell<Vec<Checkpoint>>,
}

impl CheckpointStore for CaptureStore {
    fn save(&self, c: &Checkpoint) -> Result<(), CheckpointError> {
        self.all.borrow_mut().push(c.clone());
        self.inner.save(c)
    }

    fn load(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        self.inner.load()
    }
}

fn same_outcome(a: &TuneResult, b: &TuneResult) -> Result<(), String> {
    let fields: [(&str, bool); 8] = [
        ("pareto_indices", a.pareto_indices == b.pareto_indices),
        ("evaluated", a.evaluated == b.evaluated),
        ("runs", a.runs == b.runs),
        (
            "verification_runs",
            a.verification_runs == b.verification_runs,
        ),
        ("iterations", a.iterations == b.iterations),
        ("delta", a.delta == b.delta),
        ("quarantined", a.quarantined == b.quarantined),
        (
            "failure counters",
            (a.eval_failures, a.eval_retries) == (b.eval_failures, b.eval_retries),
        ),
    ];
    let diverged: Vec<&str> = fields
        .iter()
        .filter(|(_, same)| !same)
        .map(|(name, _)| *name)
        .collect();
    if diverged.is_empty() {
        Ok(())
    } else {
        Err(format!("diverged in {}", diverged.join(", ")))
    }
}

fn main() {
    let plan_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/plans/chaos_smoke.json", env!("CARGO_MANIFEST_DIR")));
    let plan_json = std::fs::read_to_string(&plan_path)
        .unwrap_or_else(|e| panic!("cannot read fault plan {plan_path}: {e}"));
    let plan: FaultPlan = serde_json::from_str(&plan_json)
        .unwrap_or_else(|e| panic!("malformed fault plan {plan_path}: {e}"));
    plan.validate().expect("committed plan must be valid");
    assert!(
        plan.failure_rate() >= 0.2,
        "the smoke wants >= 20% injected failures, plan has {}",
        plan.failure_rate()
    );

    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let truth = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 20,
        tau: 3.0,
        // Must exceed the plan's flaky bound so transient faults recover
        // within one selection instead of quarantining half the space.
        max_eval_attempts: plan.flaky_max_failures + 2,
        seed: testkit::test_seed(),
        threads: 1,
        ..Default::default()
    };

    let mut violations: Vec<String> = Vec::new();

    // ------------------------------------------------ fault-free anchor
    let mut clean_oracle = VecOracle::new(truth.clone());
    let clean = PpaTuner::new(config.clone())
        .run(&source, &candidates, &mut clean_oracle)
        .expect("fault-free run succeeds");
    let clean_score = bench::score(&scenario, space, &clean.pareto_indices, clean.runs);

    // ------------------------------------------------------- chaos run
    let sink = RecordingSink::new();
    let store = CaptureStore::default();
    let mut oracle = FaultyVecOracle::new(truth.clone(), plan.clone());
    let chaos = PpaTuner::new(config.clone())
        .run_checkpointed(&source, &candidates, &mut oracle, &sink, &store)
        .expect("chaos run completes despite injected failures");
    let chaos_score = bench::score(&scenario, space, &chaos.pareto_indices, chaos.runs);

    match invariants::check_trace(&sink.events(), Some(&truth)) {
        Ok(report) => println!(
            "trace lawful: {} snapshots, {} selects, {} accepted evals, \
             {} failures, {} quarantines",
            report.snapshots,
            report.selects,
            report.tool_evals,
            report.eval_failures,
            report.quarantines
        ),
        Err(e) => violations.push(format!("invariant violated: {e}")),
    }
    if chaos.eval_failures == 0 {
        violations.push("plan injected no failures at all".into());
    }
    let mut kinds: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for event in &sink.events() {
        if let obs::Event::EvalFailed { kind, .. } = event {
            kinds.insert(kind.clone());
        }
    }
    println!("failure kinds exercised: {kinds:?}");
    for wanted in ["crash", "invalid_qor"] {
        if !kinds.contains(wanted) {
            violations.push(format!(
                "plan never exercised the '{wanted}' failure path; widen its probabilities"
            ));
        }
    }
    if chaos.eval_retries == 0 {
        violations.push("no retry ever recovered a transient fault".into());
    }
    for q in &chaos.quarantined {
        if chaos.pareto_indices.contains(q) {
            violations.push(format!("quarantined candidate {q} reached the front"));
        }
    }
    for hard in &plan.always_fail {
        let touched =
            chaos.quarantined.contains(hard) || chaos.evaluated.iter().all(|(i, _)| i != hard);
        if !touched {
            violations.push(format!(
                "always-failing candidate {hard} produced an accepted evaluation"
            ));
        }
    }
    if chaos.pareto_indices.is_empty() {
        violations.push("chaos run classified nothing as Pareto".into());
    }

    // ---------------------------------------------- hypervolume budget
    let limit = clean_score.hv_error.abs() * 1.05 + 1e-9;
    println!(
        "hv error: clean {:.6}, chaos {:.6} (limit {:.6}); runs clean {} chaos {} \
         (+{} failed attempts, {} quarantined)",
        clean_score.hv_error,
        chaos_score.hv_error,
        limit,
        clean.runs,
        chaos.runs,
        chaos.eval_failures,
        chaos.quarantined.len()
    );
    if chaos_score.hv_error.abs() > limit {
        violations.push(format!(
            "chaos hv error {} exceeds 1.05x the fault-free {}",
            chaos_score.hv_error, clean_score.hv_error
        ));
    }

    // ------------------------------------------------- resume golden
    let checkpoints = store.all.borrow();
    if checkpoints.len() < 2 {
        violations.push(format!(
            "expected several checkpoints, got {}",
            checkpoints.len()
        ));
    } else {
        let mid = checkpoints[checkpoints.len() / 2].clone();
        println!(
            "resuming from checkpoint at iteration {} ({} attempts logged)",
            mid.next_iteration,
            mid.eval_log.len()
        );
        let crash_point = MemoryCheckpointStore::new();
        crash_point.put(mid);
        let mut fresh = FaultyVecOracle::new(truth.clone(), plan.clone());
        match PpaTuner::new(config).resume(
            &source,
            &candidates,
            &mut fresh,
            &obs::NULL_SINK,
            &crash_point,
        ) {
            Ok(resumed) => {
                if let Err(e) = same_outcome(&chaos, &resumed) {
                    violations.push(format!("resume golden mismatch: {e}"));
                } else {
                    println!("resume golden: identical outcome after mid-run restart");
                }
            }
            Err(e) => violations.push(format!("resume failed: {e}")),
        }
    }

    if violations.is_empty() {
        println!("chaos smoke PASSED");
    } else {
        eprintln!("chaos smoke FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

//! Supplementary figure (not in the paper): the tuner's classification
//! trajectory — undecided / Pareto / dropped candidates and tool runs per
//! iteration — on Scenario Two. This visualizes Algorithm 1's engine: the
//! monotone shrinkage of the undecided set.
//!
//! Usage: `cargo run -p bench --release --bin figure_convergence [seed]
//!         [--trace <path>] [-q|-v]`
//! Writes `figure_convergence.csv`; the optional JSONL trace feeds
//! `trace_report`.

use bench::{BinArgs, Sinks};
use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let args = BinArgs::parse(17);
    let sinks = Sinks::from_args(&args);
    let scenario = Scenario::two(args.seed);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");
    let mut oracle = VecOracle::new(scenario.target_table(space));
    let config = PpaTunerConfig {
        initial_samples: 36,
        max_iterations: 60,
        seed: args.seed,
        ..Default::default()
    };
    let result = PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sinks.observer())
        .expect("tuning succeeds");

    let mut csv = String::from("iteration,undecided,pareto,dropped,runs,duration_s,gp_fit_s\n");
    for rec in &result.history {
        csv.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6}\n",
            rec.iteration,
            rec.undecided,
            rec.pareto,
            rec.dropped,
            rec.runs,
            rec.duration_s,
            rec.gp_fit_s
        ));
    }
    std::fs::write("figure_convergence.csv", &csv).expect("write csv");
    sinks.message(format!(
        "wrote figure_convergence.csv: runs={} verification={} |P|={}",
        result.runs,
        result.verification_runs,
        result.pareto_indices.len()
    ));
    sinks.flush();
}

//! Supplementary figure (not in the paper): the tuner's classification
//! trajectory — undecided / Pareto / dropped candidates and tool runs per
//! iteration — on Scenario Two. This visualizes Algorithm 1's engine: the
//! monotone shrinkage of the undecided set.
//!
//! Usage: `cargo run -p bench --release --bin figure_convergence [seed]`
//! Writes `figure_convergence.csv`.

use benchgen::Scenario;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let scenario = Scenario::two(seed);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");
    let mut oracle = VecOracle::new(scenario.target_table(space));
    let config = PpaTunerConfig {
        initial_samples: 36,
        max_iterations: 60,
        seed,
        ..Default::default()
    };
    let result = PpaTuner::new(config)
        .run(&source, &candidates, &mut oracle)
        .expect("tuning succeeds");

    let mut csv = String::from("iteration,undecided,pareto,dropped,runs\n");
    println!("{:>5} {:>10} {:>7} {:>8} {:>5}", "iter", "undecided", "pareto", "dropped", "runs");
    for rec in &result.history {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            rec.iteration, rec.undecided, rec.pareto, rec.dropped, rec.runs
        ));
        if rec.iteration % 5 == 0 {
            println!(
                "{:>5} {:>10} {:>7} {:>8} {:>5}",
                rec.iteration, rec.undecided, rec.pareto, rec.dropped, rec.runs
            );
        }
    }
    std::fs::write("figure_convergence.csv", &csv).expect("write csv");
    println!(
        "final: runs={} verification={} |P|={}",
        result.runs,
        result.verification_runs,
        result.pareto_indices.len()
    );
}

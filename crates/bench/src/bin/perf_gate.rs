//! `perf_gate` — CI perf-regression gate over `BENCH_gp.json`.
//!
//! Runs a fresh `perf` measurement (smoke sizes by default — the CI
//! configuration; `--full` for the paper-scale sizes) and compares its
//! machine-independent speedup ratios and deterministic tool-run counts
//! against the mode-matched entries of the file's `history` array (see
//! [`bench::gate`] for the comparison rules). On a pass the fresh entry
//! is appended to the history and the file rewritten; on a regression
//! the process exits nonzero listing every violated comparison and
//! leaves the file untouched. With no mode-matched history the gate
//! bootstraps: it passes and records the first reference entry.
//!
//! Usage: `perf_gate [seed] [--full] [--bench <path>] [--min-ratio <r>]`

use bench::gate::{self, GateConfig, GateEntry, GateOutcome};
use bench::{perfrun, BinArgs};
use serde_json::Value;

fn main() {
    let args = BinArgs::parse(7);
    let mut smoke = true;
    let mut bench_path = String::from("BENCH_gp.json");
    let mut config = GateConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--full" => smoke = false,
            "--smoke" => smoke = true,
            "--bench" => {
                if let Some(p) = argv.next() {
                    bench_path = p;
                }
            }
            "--min-ratio" => {
                if let Some(r) = argv.next().and_then(|s| s.parse().ok()) {
                    config.min_speedup_ratio = r;
                }
            }
            _ => {}
        }
    }
    let mode = if smoke { "smoke" } else { "full" };

    // Load the committed benchmark file first: a missing or unreadable
    // file should fail before minutes of measurement.
    let text = std::fs::read_to_string(&bench_path).unwrap_or_else(|e| {
        eprintln!("perf_gate: cannot read {bench_path}: {e}");
        std::process::exit(1);
    });
    let mut file: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("perf_gate: {bench_path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let mut history: Vec<GateEntry> = file
        .get("history")
        .and_then(|h| h.as_array())
        .map(|entries| {
            entries
                .iter()
                .filter_map(|v| serde_json::from_value(v).ok())
                .collect()
        })
        .unwrap_or_default();

    eprintln!("perf_gate: measuring ({mode} mode, seed {})", args.seed);
    let results = perfrun::run_sizes(smoke, args.seed);
    let fresh = GateEntry::from_results(mode, args.seed, &results);
    for s in &fresh.sizes {
        eprintln!(
            "perf_gate: {}: search {:.2}x, condition {:.2}x, batch {:.2}x, \
             sweep par {:.2}x / cached {:.2}x, tuner {:.3}s / {} tool runs",
            s.name,
            s.search_speedup,
            s.condition_speedup,
            s.batch_speedup,
            s.predict_par_speedup,
            s.predict_cached_speedup,
            s.tuner_total_s,
            s.tool_runs
        );
    }

    match gate::evaluate(&fresh, &history, &config) {
        Ok(outcome) => {
            match outcome {
                GateOutcome::Bootstrap => eprintln!(
                    "perf_gate: PASS (bootstrap — no {mode} history yet, recording reference)"
                ),
                GateOutcome::Pass { checks } => {
                    eprintln!("perf_gate: PASS ({checks} comparisons held)");
                }
            }
            gate::append_history(&mut history, fresh);
            if let Value::Object(fields) = &mut file {
                let new_history = serde_json::to_value(&history);
                match fields.iter_mut().find(|(k, _)| k.as_str() == "history") {
                    Some((_, slot)) => *slot = new_history,
                    None => fields.push(("history".into(), new_history)),
                }
            }
            let out = serde_json::to_string_pretty(&file).expect("file serializes");
            std::fs::write(&bench_path, out).unwrap_or_else(|e| {
                eprintln!("perf_gate: cannot write {bench_path}: {e}");
                std::process::exit(1);
            });
            eprintln!("perf_gate: appended history entry to {bench_path}");
        }
        Err(violations) => {
            eprintln!("perf_gate: FAIL — {} regression(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}

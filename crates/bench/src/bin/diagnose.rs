//! Diagnostic harness (not a paper artifact): inspects the tuner's
//! trajectory, the learned transfer factor, and GP prediction quality on
//! one scenario.
//!
//! Usage: `cargo run -p bench --release --bin diagnose [target_points]`

use benchgen::Scenario;
use gp::optimize::{fit_transfer_gp, FitBudget};
use gp::TaskData;
use pdsim::ObjectiveSpace;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let which = std::env::args().nth(2).unwrap_or_else(|| "two".into());
    let evals: usize = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let scenario = if which == "one" {
        Scenario::one_with_counts(1, 1000, points).with_source_budget(200)
    } else {
        Scenario::two_with_counts(1, 500, points).with_source_budget(200)
    };
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);

    // --- GP quality probe: fit the transfer GP on a random subset and
    // report holdout error with and without source data.
    let (sx, sy) = scenario.source_xy(space);
    let mut rng = StdRng::seed_from_u64(9);
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.shuffle(&mut rng);
    let (train_idx, test_idx) = idx.split_at((points / 20).max(30));
    for k in 0..space.dim() {
        let source = TaskData::new(sx.clone(), sy.iter().map(|v| v[k]).collect());
        let target = TaskData::new(
            train_idx.iter().map(|&i| candidates[i].clone()).collect(),
            train_idx.iter().map(|&i| table[i][k]).collect(),
        );
        let budget = FitBudget {
            restarts: 2,
            evals_per_restart: evals,
        };
        let with_src =
            fit_transfer_gp(&source, &target, candidates[0].len(), budget, &mut rng).unwrap();
        let no_src = fit_transfer_gp(
            &TaskData::default(),
            &target,
            candidates[0].len(),
            budget,
            &mut rng,
        )
        .unwrap();
        let spread = {
            let vals: Vec<f64> = table.iter().map(|r| r[k]).collect();
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        let rmse = |m: &gp::TransferGp| {
            let mut s = 0.0;
            for &i in test_idx.iter().take(200) {
                let (mu, _) = m.predict(&candidates[i]).unwrap();
                s += (mu - table[i][k]).powi(2);
            }
            (s / test_idx.len().min(200) as f64).sqrt()
        };
        println!(
            "objective {k}: lambda={:+.3} rmse_transfer={:.4} rmse_alone={:.4} (range {:.4})",
            with_src.lambda(),
            rmse(&with_src),
            rmse(&no_src),
            spread
        );
        println!(
            "  lengthscales: {:?}",
            with_src
                .config()
                .lengthscales
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    // --- Tuner trajectory.
    let source = SourceData::new(sx, sy).unwrap();
    let mut oracle = VecOracle::new(table.clone());
    let config = PpaTunerConfig {
        initial_samples: (points / 20).max(8),
        max_iterations: 30,
        refit_every: 25,
        fit_budget: FitBudget {
            restarts: 2,
            evals_per_restart: evals,
        },
        seed: 17,
        ..Default::default()
    };
    let result = PpaTuner::new(config)
        .run(&source, &candidates, &mut oracle)
        .unwrap();
    println!(
        "tuner: runs={} verify={} iterations={} |P|={}",
        result.runs,
        result.verification_runs,
        result.iterations,
        result.pareto_indices.len()
    );
    for rec in result.history.iter().step_by(3) {
        println!(
            "  it {:>3}: undecided={:<5} pareto={:<4} dropped={:<5} runs={}",
            rec.iteration, rec.undecided, rec.pareto, rec.dropped, rec.runs
        );
    }
    let golden = scenario.target().golden_front(space);
    let predicted: Vec<Vec<f64>> = result
        .pareto_indices
        .iter()
        .map(|&i| table[i].clone())
        .collect();
    let reference = pareto::hypervolume::reference_point(&table, 1.1).unwrap();
    println!(
        "HV={:.4} ADRS={:.4} golden |front|={}",
        pareto::hypervolume::hypervolume_error(&golden, &predicted, &reference).unwrap(),
        pareto::metrics::adrs(&golden, &predicted).unwrap(),
        golden.len()
    );
}

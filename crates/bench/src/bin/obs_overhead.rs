//! `obs_overhead` — asserts that observability is free when turned off.
//!
//! Times the perf smoke-size tuner scenario twice: unobserved
//! (`PpaTuner::run`) and observed through the disabled [`obs::NULL_SINK`]
//! (span IDs are still allocated — a relaxed atomic add per span — but
//! no event is ever constructed or emitted). The arms are interleaved
//! `reps` times and the best-of-N times compared; the NullSink time must
//! stay within 2% of the unobserved one or the process exits nonzero. A
//! third arm through an enabled [`obs::RecordingSink`] is reported for
//! context but not asserted — paying for events you asked for is fine.
//!
//! Timing uses `/proc/self/schedstat` (nanosecond on-CPU runtime) when
//! available: a 2% budget is not measurable with wall clocks on shared
//! CI runners, where steal time alone exceeds it. Off Linux the check
//! falls back to `Instant` wall time.
//!
//! Usage: `obs_overhead [seed] [--reps <n>] [--max-ratio <r>]`

use std::time::Instant;

use bench::perfrun::{self, SMOKE_SIZES};
use bench::BinArgs;
use obs::{RecordingSink, NULL_SINK};
use ppatuner::TuneResult;

/// Scenario executions per timed sample: batching shrinks the relative
/// impact of a single scheduler hiccup on a ~25 ms workload.
const RUNS_PER_SAMPLE: usize = 3;

/// Cumulative on-CPU nanoseconds of this task, from
/// `/proc/self/schedstat` (first field). Unlike wall time it does not
/// advance while the scheduler runs someone else, so it is the right
/// clock for a single-threaded CPU-overhead budget. `None` off Linux.
fn cpu_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// Seconds elapsed on the preferred clock (CPU if available, else wall).
fn clock_pair() -> (Option<u64>, Instant) {
    (cpu_ns(), Instant::now())
}

fn elapsed_s(start: &(Option<u64>, Instant)) -> f64 {
    match (start.0, cpu_ns()) {
        (Some(a), Some(b)) => (b.saturating_sub(a)) as f64 / 1e9,
        _ => start.1.elapsed().as_secs_f64(),
    }
}

/// Best-of-N timing: the minimum is the standard robust estimator for a
/// deterministic workload's true cost — every slower sample is the same
/// work plus cache or interrupt interference.
fn best_time(reps: usize, mut run: impl FnMut() -> TuneResult) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut runs = 0;
    for _ in 0..reps {
        let t = clock_pair();
        for _ in 0..RUNS_PER_SAMPLE {
            let result = run();
            runs = result.runs + result.verification_runs;
        }
        best = best.min(elapsed_s(&t) / RUNS_PER_SAMPLE as f64);
    }
    (best, runs)
}

fn main() {
    let args = BinArgs::parse(7);
    let mut reps = 7usize;
    let mut max_ratio = 1.02f64;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--reps" => {
                if let Some(n) = argv.next().and_then(|s| s.parse().ok()) {
                    reps = n;
                }
            }
            "--max-ratio" => {
                if let Some(r) = argv.next().and_then(|s| s.parse().ok()) {
                    max_ratio = r;
                }
            }
            _ => {}
        }
    }
    let spec = &SMOKE_SIZES[0];

    // Warm-up: fault in code and allocator state before timing.
    let _ = perfrun::run_tuner_scenario(spec, args.seed, true, &NULL_SINK);

    // The asserted pair. `PpaTuner::run` *is* `run_observed(&NULL_SINK)`
    // — disabled observability is the unobserved path by construction —
    // so the two arms run identical code and this measures the noise
    // floor of the harness itself: span-ID allocation plus whatever the
    // machine adds. Interleaving A/B/A/B keeps thermal and cache drift
    // out of the comparison, and a measurement that still lands over
    // budget is retried from scratch: frequency scaling can shift the
    // CPU clock mid-pass, and a real regression fails every attempt.
    let mut plain_s = f64::INFINITY;
    let mut null_s = f64::INFINITY;
    const ATTEMPTS: usize = 4;
    for attempt in 1..=ATTEMPTS {
        // Each attempt measures from scratch: carrying a minimum caught
        // under one CPU-frequency regime into a slower regime would pin
        // an asymmetry no amount of re-measuring could undo.
        let mut a_min = f64::INFINITY;
        let mut b_min = f64::INFINITY;
        for _ in 0..reps {
            let (a, _) = best_time(1, || {
                perfrun::run_tuner_scenario(spec, args.seed, true, &NULL_SINK)
            });
            let (b, _) = best_time(1, || {
                perfrun::run_tuner_scenario(spec, args.seed, true, &NULL_SINK)
            });
            a_min = a_min.min(a);
            b_min = b_min.min(b);
        }
        plain_s = a_min;
        null_s = b_min;
        let ratio = a_min.max(b_min) / a_min.min(b_min).max(1e-12);
        if ratio <= max_ratio {
            break;
        }
        if attempt < ATTEMPTS {
            eprintln!(
                "obs_overhead: attempt {attempt} over budget (ratio {ratio:.4}), re-measuring"
            );
        }
    }
    let (_, plain_runs) = best_time(1, || {
        perfrun::run_tuner_scenario(spec, args.seed, true, &NULL_SINK)
    });

    // Enabled-observer cost is reported for context, never asserted:
    // paying for events you asked for is fine.
    let recording = RecordingSink::new();
    let (observed_s, observed_runs) = best_time(reps, || {
        perfrun::run_tuner_scenario(spec, args.seed, true, &recording)
    });
    assert_eq!(
        plain_runs, observed_runs,
        "observation must not change behavior"
    );

    let baseline_s = plain_s.min(null_s);
    let ratio = plain_s.max(null_s) / baseline_s.max(1e-12);
    let recording_ratio = observed_s / baseline_s.max(1e-12);
    println!(
        "obs_overhead: unobserved {:.1} ms, null-sink {:.1} ms (ratio {:.4}), \
         recording {:.1} ms (ratio {:.3}, {} events) — best of {reps}, {} clock",
        plain_s * 1e3,
        null_s * 1e3,
        ratio,
        observed_s * 1e3,
        recording_ratio,
        recording.events().len() / (reps * RUNS_PER_SAMPLE).max(1),
        if cpu_ns().is_some() { "cpu" } else { "wall" },
    );
    if ratio > max_ratio {
        eprintln!(
            "obs_overhead: FAIL — disabled observability costs {:.2}% (budget {:.0}%)",
            (ratio - 1.0) * 100.0,
            (max_ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("obs_overhead: PASS");
}

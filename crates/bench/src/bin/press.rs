use pdsim::*;
fn main() {
    for (name, d) in [
        ("small", Design::mac_small(42)),
        ("large", Design::mac_large(43)),
    ] {
        let p = ToolParams::default();
        let syn = stages::synthesize(&d, &p);
        println!(
            "{name}: cells={} depth={} pressure={:.3} restructured={} sizing={:.3}",
            d.stats().cells,
            d.stats().comb_depth,
            syn.pressure,
            syn.restructured,
            syn.sizing
        );
        for ad in [0.0, 0.06, 0.12] {
            let p = ToolParams {
                max_allowed_delay_ns: ad,
                ..Default::default()
            };
            let syn = stages::synthesize(&d, &p);
            println!(
                "  allowed={ad}: pressure={:.3} restructured={}",
                syn.pressure, syn.restructured
            );
        }
    }
}

//! `pool_scale` — adaptive-pool scaling benchmark: the hierarchical
//! candidate pool plus the subset-of-data predict path must buy a far
//! larger *effective* search resolution than the biggest fixed LHS pool
//! we sweep elsewhere, at comparable per-iteration wall clock and
//! without costing solution quality.
//!
//! Two tuning runs share one analytic oracle (the seeded Scenario Two
//! flow surface, evaluated by decoding each joint-encoded candidate —
//! grown candidates included — through `PdFlow`):
//!
//! - **Fixed reference**: a dense LHS pool (5000 candidates full mode,
//!   the largest size in `BENCH_gp.json`'s sweep; 1000 in smoke), exact
//!   posterior everywhere.
//! - **Adaptive**: a 10×-smaller starting pool over the same box, cell
//!   refinement on, subset-of-data predict above a small threshold.
//!
//! Six gates:
//!
//! 1. **Effective pool**: the adaptive run's peak effective pool
//!    (uniform-grid-equivalent resolution from the cell tree's smallest
//!    leaf) must reach ≥ 10× the fixed reference pool.
//! 2. **Per-iteration wall clock**: the adaptive run's mean iteration
//!    time must stay ≤ 2× the fixed run's.
//! 3. **Equal-budget quality**: the adaptive run's final verified front,
//!    scored against the dense scenario's golden front, must land within
//!    1.05× of the fixed run's hypervolume error and ADRS, at ≤ 1.25×
//!    its tool-run budget.
//! 4. **Lawful trace**: the adaptive run's event stream passes the full
//!    invariant checker (append-only pool growth, leaf accounting,
//!    conservative effective-pool reporting) and actually exercises both
//!    refinement and the subset predict path.
//! 5. **Approximation error**: re-running the adaptive config with the
//!    subset path disabled (exact posterior) must not change front
//!    quality by more than 1.05× in either metric — the end-to-end bound
//!    on what subset-of-data costs (the per-query bounds live in
//!    testkit's `sod_differential` suite).
//! 6. **Determinism**: re-running the adaptive config reproduces its
//!    canonical trace byte for byte.
//!
//! Usage: `cargo run --release -p bench --bin pool_scale -- [--smoke]
//! [--bench <path>]`. On a pass the run appends a [`bench::gate::PoolEntry`]
//! to the `pool_history` array of `BENCH_gp.json` (other keys preserved);
//! on a violation it exits non-zero listing every failed gate and leaves
//! the file untouched.

use bench::gate::{append_pool_history, PoolEntry};
use obs::{Event, RecordingSink};
use pareto::hypervolume::{hypervolume_error, reference_point};
use pareto::metrics::adrs;
use pdsim::ObjectiveSpace;
use ppatuner::{FnOracle, PpaTuner, PpaTunerConfig, SourceData, TuneResult};
use serde_json::Value;
use testkit::trace::canonical_jsonl;

const SPACE: ObjectiveSpace = ObjectiveSpace::PowerDelay;

struct Sizes {
    mode: &'static str,
    /// Fixed-pool reference candidate count.
    fixed_pool: usize,
    /// Adaptive run's starting candidate count.
    adaptive_start: usize,
    /// Iterations for the fixed reference run.
    iterations: usize,
    /// Iterations for the adaptive runs, chosen so both variants land on
    /// comparable *tool-run* budgets (the adaptive run classifies its
    /// smaller starting pool sooner and spends fewer verification
    /// evaluations per iteration; gate 3 still caps its budget at 1.25×
    /// the fixed run's).
    adaptive_iterations: usize,
    /// Gate 1 floor on the adaptive run's peak effective pool.
    effective_floor: f64,
    /// Candidate count of the dense truth grid both fronts are scored
    /// against. Independent of (and much denser than) either run's pool,
    /// so neither run can hit the golden front by construction.
    golden_pool: usize,
}

impl Sizes {
    fn new(smoke: bool) -> Self {
        if smoke {
            Sizes {
                mode: "smoke",
                fixed_pool: 1000,
                adaptive_start: 200,
                iterations: 30,
                adaptive_iterations: 33,
                effective_floor: 10_000.0,
                golden_pool: 10_000,
            }
        } else {
            Sizes {
                mode: "full",
                fixed_pool: 5000,
                adaptive_start: 2500,
                iterations: 40,
                adaptive_iterations: 58,
                effective_floor: 50_000.0,
                golden_pool: 50_000,
            }
        }
    }
}

struct PoolRun {
    result: TuneResult,
    trace: String,
    events: Vec<Event>,
    /// Mean `IterationEnd` wall clock, seconds.
    mean_iter_s: f64,
    /// Peak effective pool reported by `PoolRefine` events (1.0 when the
    /// run never refined — a fixed pool's resolution is its size).
    peak_effective: f64,
    /// Final candidate count (original + grown).
    final_pool: usize,
}

fn scenario_with(targets: usize) -> benchgen::Scenario {
    benchgen::Scenario::two_with_counts(9, 120, targets).with_source_budget(60)
}

fn run_pool(targets: usize, adaptive: bool, subset: bool, iterations: usize, seed: u64) -> PoolRun {
    let scenario = scenario_with(targets);
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(SPACE);
    let source = SourceData::new(sx, sy).expect("scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 12,
        max_iterations: iterations,
        tau: 9.0,
        seed,
        threads: 1,
        adaptive_pool: adaptive,
        pool_refine_scale: 0.5,
        pool_refine_ceiling: 4.0,
        pool_max_refines: 64,
        pool_max_size: candidates.len() + iterations * 64,
        sod_threshold: if subset { 48 } else { usize::MAX },
        sod_subset: 112,
        ..Default::default()
    };
    let joint = scenario.joint().clone();
    let flow = pdsim::PdFlow::new(scenario.target().id().design());
    let mut oracle = FnOracle::new(move |x: &[f64]| {
        let config = joint
            .decode(x)
            .expect("candidates decode in the joint space");
        let params = pdsim::ToolParams::from_config(&joint, &config)
            .expect("decoded configs belong to their space");
        flow.run(&params).project(SPACE)
    });
    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("pool_scale run succeeds");
    let events = sink.events();
    let iter_times: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            Event::IterationEnd { duration_s, .. } => Some(*duration_s),
            _ => None,
        })
        .collect();
    let mean_iter_s = iter_times.iter().sum::<f64>() / iter_times.len().max(1) as f64;
    let peak_effective = events
        .iter()
        .filter_map(|e| match e {
            Event::PoolRefine { effective_pool, .. } => Some(*effective_pool),
            _ => None,
        })
        .fold(1.0f64, f64::max);
    let final_pool = events
        .iter()
        .filter_map(|e| match e {
            Event::PoolRefine { pool_size, .. } => Some(*pool_size),
            _ => None,
        })
        .fold(candidates.len(), usize::max);
    PoolRun {
        trace: canonical_jsonl(&events),
        events,
        mean_iter_s,
        peak_effective,
        final_pool,
        result,
    }
}

/// Scores a run's final verified front against the dense scenario's
/// golden front, taking QoR vectors from the run's recorded `ToolEval`
/// events (which cover the closing verification pass, and grown
/// candidates absent from any pre-tabulated pool).
fn score_front(run: &PoolRun, golden: &[Vec<f64>], reference: &[f64]) -> (f64, f64) {
    let mut qor_of = std::collections::BTreeMap::new();
    for e in &run.events {
        if let Event::ToolEval { candidate, qor, .. } = e {
            qor_of.insert(*candidate, qor.clone());
        }
    }
    let predicted: Vec<Vec<f64>> = run
        .result
        .pareto_indices
        .iter()
        .map(|i| {
            qor_of
                .get(i)
                .cloned()
                .expect("every verified front member has a ToolEval event")
        })
        .collect();
    let hv = hypervolume_error(golden, &predicted, reference)
        .expect("golden front has positive hypervolume");
    let dist = adrs(golden, &predicted).expect("metric inputs are valid");
    (hv, dist)
}

fn main() {
    let mut smoke = false;
    let mut bench_path = String::from("BENCH_gp.json");
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--bench" => {
                if let Some(p) = argv.next() {
                    bench_path = p;
                }
            }
            _ => {}
        }
    }
    let sizes = Sizes::new(smoke);
    let seeds: &[u64] = &[
        testkit::test_seed(),
        testkit::test_seed() ^ 0x9e37,
        testkit::test_seed() ^ 0x2545,
    ];
    let mut violations: Vec<String> = Vec::new();

    // --------------------------------------------------- seed sweep
    // Quality and wall clock are averaged over a small seed sweep: a
    // single ε-PAL run's front wobbles with the initial design, and the
    // 1.05x quality gate is tighter than that single-run noise.
    let fixed: Vec<PoolRun> = seeds
        .iter()
        .map(|&s| run_pool(sizes.fixed_pool, false, false, sizes.iterations, s))
        .collect();
    let adaptive: Vec<PoolRun> = seeds
        .iter()
        .map(|&s| {
            run_pool(
                sizes.adaptive_start,
                true,
                true,
                sizes.adaptive_iterations,
                s,
            )
        })
        .collect();
    let budget = |r: &TuneResult| r.runs + r.verification_runs;
    let total_budget = |runs: &[PoolRun]| runs.iter().map(|r| budget(&r.result)).sum::<usize>();
    let mean_iter =
        |runs: &[PoolRun]| runs.iter().map(|r| r.mean_iter_s).sum::<f64>() / runs.len() as f64;
    let peak_effective = adaptive
        .iter()
        .map(|r| r.peak_effective)
        .fold(0.0, f64::max);
    let final_pool = adaptive.iter().map(|r| r.final_pool).max().unwrap_or(0);
    println!(
        "fixed    pool {:>6}: {} runs over {} seeds, {:.3} ms/iter",
        sizes.fixed_pool,
        total_budget(&fixed),
        seeds.len(),
        mean_iter(&fixed) * 1e3,
    );
    println!(
        "adaptive pool {:>6}: {} runs over {} seeds, {:.3} ms/iter, \
         grew to {} candidates, effective pool {:.0}",
        sizes.adaptive_start,
        total_budget(&adaptive),
        seeds.len(),
        mean_iter(&adaptive) * 1e3,
        final_pool,
        peak_effective,
    );

    // Gate 1: effective pool scale.
    if peak_effective < sizes.effective_floor {
        violations.push(format!(
            "effective pool {peak_effective:.0} is below the {:.0} floor \
             (10x the fixed reference)",
            sizes.effective_floor
        ));
    } else {
        println!(
            "gate 1 OK: effective pool {:.0} >= {:.0} ({}x the fixed {}-candidate pool)",
            peak_effective,
            sizes.effective_floor,
            (peak_effective / sizes.fixed_pool as f64).round(),
            sizes.fixed_pool
        );
    }

    // Gate 2: per-iteration wall clock.
    let iter_ratio = mean_iter(&adaptive) / mean_iter(&fixed).max(1e-9);
    if iter_ratio > 2.0 {
        violations.push(format!(
            "adaptive iteration time {:.3} ms is {iter_ratio:.2}x the fixed run's {:.3} ms \
             (gate: 2x)",
            mean_iter(&adaptive) * 1e3,
            mean_iter(&fixed) * 1e3
        ));
    } else {
        println!("gate 2 OK: adaptive iteration time is {iter_ratio:.2}x the fixed run's (<= 2x)");
    }

    // Gate 3: equal-budget quality against the dense golden front,
    // averaged across the seed sweep.
    let dense = scenario_with(sizes.golden_pool);
    let golden = dense.target().golden_front(SPACE);
    let reference =
        reference_point(&dense.target_table(SPACE), 1.1).expect("non-empty target table");
    let mean_score = |runs: &[PoolRun]| {
        let (mut hv, mut dist) = (0.0, 0.0);
        for r in runs {
            let (h, d) = score_front(r, &golden, &reference);
            hv += h.abs();
            dist += d.abs();
        }
        (hv / runs.len() as f64, dist / runs.len() as f64)
    };
    let (fixed_hv, fixed_adrs) = mean_score(&fixed);
    let (adaptive_hv, adaptive_adrs) = mean_score(&adaptive);
    println!(
        "front (mean of {} seeds): fixed hv {fixed_hv:.6} adrs {fixed_adrs:.6} at {} runs; \
         adaptive hv {adaptive_hv:.6} adrs {adaptive_adrs:.6} at {} runs",
        seeds.len(),
        total_budget(&fixed),
        total_budget(&adaptive)
    );
    if total_budget(&adaptive) * 4 > total_budget(&fixed) * 5 {
        violations.push(format!(
            "adaptive consumed {} tool runs, more than 1.25x the fixed budget of {}",
            total_budget(&adaptive),
            total_budget(&fixed)
        ));
    }
    if adaptive_hv > fixed_hv * 1.05 + 1e-9 {
        violations.push(format!(
            "adaptive mean hv error {adaptive_hv} exceeds 1.05x the fixed front's {fixed_hv}"
        ));
    }
    if adaptive_adrs > fixed_adrs * 1.05 + 1e-9 {
        violations.push(format!(
            "adaptive mean ADRS {adaptive_adrs} exceeds 1.05x the fixed front's {fixed_adrs}"
        ));
    }
    if violations.is_empty() {
        println!("gate 3 OK: adaptive front within 1.05x of the fixed reference at equal budget");
    }

    // Gate 4: lawful traces, with both scaling paths actually exercised.
    // No truth table here: δ-accuracy against a fully tabulated pool is
    // pinned by the golden-trace suite; this bench's pools are mostly
    // unevaluated by design, so only the structural laws apply.
    let mut refines_checked = 0usize;
    for (run, &seed) in adaptive.iter().zip(seeds) {
        match testkit::invariants::check_trace(&run.events, None) {
            Ok(report) => {
                let subset_used = run
                    .events
                    .iter()
                    .any(|e| matches!(e, Event::PredictMode { mode, .. } if mode == "subset"));
                if report.pool_refines == 0 {
                    violations.push(format!("seed {seed:#x}: no PoolRefine events recorded"));
                } else if !subset_used {
                    violations.push(format!(
                        "seed {seed:#x}: subset predict path never activated"
                    ));
                }
                refines_checked += report.pool_refines;
            }
            Err(e) => {
                violations.push(format!("seed {seed:#x}: trace violates invariants: {e}"));
            }
        }
    }
    if violations.is_empty() {
        println!(
            "gate 4 OK: all adaptive traces lawful ({refines_checked} refinements checked, \
             subset path active)"
        );
    }

    // Gate 5: end-to-end approximation error of the subset predict path,
    // also averaged across the sweep.
    let exact: Vec<PoolRun> = seeds
        .iter()
        .map(|&s| {
            run_pool(
                sizes.adaptive_start,
                true,
                false,
                sizes.adaptive_iterations,
                s,
            )
        })
        .collect();
    let (exact_hv, exact_adrs) = mean_score(&exact);
    println!(
        "exact-posterior adaptive: hv {exact_hv:.6} adrs {exact_adrs:.6} at {} runs",
        total_budget(&exact)
    );
    if adaptive_hv > exact_hv * 1.05 + 1e-9 {
        violations.push(format!(
            "subset-path mean hv error {adaptive_hv} exceeds 1.05x the exact-posterior {exact_hv}"
        ));
    } else if adaptive_adrs > exact_adrs * 1.05 + 1e-9 {
        violations.push(format!(
            "subset-path mean ADRS {adaptive_adrs} exceeds 1.05x the exact-posterior {exact_adrs}"
        ));
    } else {
        println!("gate 5 OK: subset predict path within 1.05x of the exact posterior");
    }

    // Gate 6: repeat determinism (first seed).
    let repeat = run_pool(
        sizes.adaptive_start,
        true,
        true,
        sizes.adaptive_iterations,
        seeds[0],
    );
    if repeat.trace != adaptive[0].trace {
        violations.push("repeat adaptive run produced a different canonical trace".into());
    } else {
        println!("gate 6 OK: repeat adaptive run is byte-identical");
    }

    if violations.is_empty() {
        println!("pool_scale PASSED");
        record_history(
            &bench_path,
            &sizes,
            final_pool,
            peak_effective,
            iter_ratio,
            (
                adaptive_hv / fixed_hv.max(1e-12),
                adaptive_adrs / fixed_adrs.max(1e-12),
            ),
        );
    } else {
        eprintln!("pool_scale FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

/// Appends a [`PoolEntry`] to the `pool_history` key of the benchmark
/// file, preserving every other key (`perf` owns `sizes`, `perf_gate`
/// owns `history`). A missing file is tolerated: the sweep then only
/// prints its numbers.
fn record_history(
    bench_path: &str,
    sizes: &Sizes,
    final_pool: usize,
    peak_effective: f64,
    iter_ratio: f64,
    (hv_ratio, adrs_ratio): (f64, f64),
) {
    let Ok(text) = std::fs::read_to_string(bench_path) else {
        eprintln!("pool_scale: no {bench_path}; skipping history append");
        return;
    };
    let mut file: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pool_scale: {bench_path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let mut history: Vec<PoolEntry> = file
        .get("pool_history")
        .and_then(|h| h.as_array())
        .map(|entries| {
            entries
                .iter()
                .filter_map(|v| serde_json::from_value(v).ok())
                .collect()
        })
        .unwrap_or_default();
    append_pool_history(
        &mut history,
        PoolEntry {
            mode: sizes.mode.to_string(),
            seed: testkit::test_seed(),
            fixed_pool: sizes.fixed_pool,
            adaptive_start: sizes.adaptive_start,
            final_pool,
            effective_pool: peak_effective,
            iter_time_ratio: iter_ratio,
            hv_ratio,
            adrs_ratio,
        },
    );
    if let Value::Object(fields) = &mut file {
        let new_history = serde_json::to_value(&history);
        match fields
            .iter_mut()
            .find(|(k, _)| k.as_str() == "pool_history")
        {
            Some((_, slot)) => *slot = new_history,
            None => fields.push(("pool_history".into(), new_history)),
        }
    }
    let out = serde_json::to_string_pretty(&file).expect("file serializes");
    if let Err(e) = std::fs::write(bench_path, out) {
        eprintln!("pool_scale: cannot write {bench_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("pool_scale: appended pool_history entry to {bench_path}");
}

//! Ablation A4: sensitivity of the cross-task factor `λ = 2(1/(1+a))^b − 1`
//! (Eq. 7) to the Gamma-prior hyper-parameters (a, b), and the accuracy
//! of the transfer GP at fixed λ values.
//!
//! Usage: `cargo run -p bench --release --bin ablation_gamma [seed]`

use benchgen::Scenario;
use gp::kernel::{SquaredExponential, TransferKernel};
use gp::{TaskData, TransferGp, TransferGpConfig};
use pdsim::ObjectiveSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);

    // Part 1: the (a, b) → λ map of Eq. (7).
    println!("A4a: cross-task factor lambda = 2(1/(1+a))^b - 1");
    println!("{:>8} {:>8} {:>8}", "a", "b", "lambda");
    for (a, b) in [
        (0.01, 1.0),
        (0.1, 1.0),
        (0.5, 1.0),
        (1.0, 1.0),
        (2.0, 1.0),
        (0.1, 0.5),
        (0.1, 2.0),
        (0.1, 5.0),
    ] {
        let base = SquaredExponential::isotropic(1, 1.0, 0.5).expect("kernel");
        let tk = TransferKernel::from_gamma_prior(base, a, b).expect("prior");
        println!("{a:>8.2} {b:>8.1} {:>8.4}", tk.lambda());
    }

    // Part 2: holdout RMSE of the transfer GP at fixed λ on Scenario Two
    // (power objective), 40 target training points.
    let scenario = Scenario::two(seed);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let dim = candidates[0].len();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.shuffle(&mut rng);
    let (train, test) = idx.split_at(40);

    println!("\nA4b: holdout RMSE (power) vs fixed lambda, scenario-two");
    println!("{:>8} {:>10}", "lambda", "rmse");
    for lambda in [-0.5, 0.0, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let source = TaskData::new(sx.clone(), sy.iter().map(|v| v[0]).collect());
        let target = TaskData::new(
            train.iter().map(|&i| candidates[i].clone()).collect(),
            train.iter().map(|&i| table[i][0]).collect(),
        );
        let cfg = TransferGpConfig {
            lambda,
            ..TransferGpConfig::default_for_dim(dim)
        };
        let model = TransferGp::fit(source, target, cfg).expect("fit");
        let mut sq = 0.0;
        let m = test.len().min(300);
        for &i in test.iter().take(m) {
            let (mu, _) = model.predict(&candidates[i]).expect("predict");
            sq += (mu - table[i][0]).powi(2);
        }
        println!("{lambda:>8.2} {:>10.4}", (sq / m as f64).sqrt());
    }
}

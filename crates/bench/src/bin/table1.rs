//! Regenerates **Table 1** of the paper: the statistics (min/max per
//! benchmark) of the PD-tool parameters.
//!
//! Usage: `cargo run -p bench --release --bin table1`

use benchgen::BenchmarkId;
use doe::ParamKind;

/// The union of parameter names, in the paper's row order.
const ROWS: [&str; 15] = [
    "freq",
    "place_rcfactor",
    "place_uncertainty",
    "flowEffort",
    "timing_effort",
    "clock_power_driven",
    "uniform_density",
    "cong_effort",
    "max_density",
    "max_Length",
    "max_Density",
    "max_transition",
    "max_capacitance",
    "max_fanout",
    "max_AllowedDelay",
];

fn cell(id: BenchmarkId, name: &str) -> (String, String) {
    let space = id.space();
    match space.index_of(name) {
        None => ("-".into(), "-".into()),
        Some(i) => match space.param(i).kind() {
            ParamKind::Float { min, max } => (format!("{min}"), format!("{max}")),
            ParamKind::Int { min, max } => (format!("{min}"), format!("{max}")),
            ParamKind::Enum { choices } => (
                choices.first().cloned().unwrap_or_default(),
                choices.last().cloned().unwrap_or_default(),
            ),
            ParamKind::Bool => ("FALSE".into(), "TRUE".into()),
        },
    }
}

fn main() {
    println!("Table 1: The statistics of parameters of the PD tool on benchmarks.");
    print!("{:<20}", "Parameters");
    for id in BenchmarkId::ALL {
        print!(" | {:^21}", id.name());
    }
    println!();
    print!("{:<20}", "");
    for _ in BenchmarkId::ALL {
        print!(" | {:>10} {:>10}", "Min", "Max");
    }
    println!();
    for name in ROWS {
        print!("{name:<20}");
        for id in BenchmarkId::ALL {
            let (lo, hi) = cell(id, name);
            print!(" | {lo:>10} {hi:>10}");
        }
        println!();
    }
    println!();
    println!(
        "Point counts: Source1={} Target1={} Source2={} Target2={}",
        BenchmarkId::Source1.point_count(),
        BenchmarkId::Target1.point_count(),
        BenchmarkId::Source2.point_count(),
        BenchmarkId::Target2.point_count(),
    );
    println!(
        "Designs: Source1/Target1/Source2 -> {} ({} cells), Target2 -> {} ({} cells)",
        BenchmarkId::Source1.design().name(),
        BenchmarkId::Source1.design().stats().cells,
        BenchmarkId::Target2.design().name(),
        BenchmarkId::Target2.design().stats().cells,
    );
}

//! Shared CLI plumbing for the experiment binaries: seed parsing plus the
//! observability flags every bin understands.
//!
//! Flags (in any order, mixed with the positional seed):
//!
//! - `--trace <path>` — write a JSONL event trace (analyze it with the
//!   `trace_report` bin);
//! - `-q` / `--quiet` — only run-level progress on stderr;
//! - `-v` / `--verbose` — per-fit and per-evaluation progress on stderr.

use obs::{JsonlSink, MultiSink, Observer, StderrSink, Verbosity};

/// Parsed command line of an experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinArgs {
    /// Experiment seed (first positional integer; default per bin).
    pub seed: u64,
    /// `--trace <path>`: where to write the JSONL trace, if anywhere.
    pub trace: Option<String>,
    /// Stderr verbosity (`-q` / default / `-v`).
    pub verbosity: Verbosity,
}

impl BinArgs {
    /// Parses `std::env::args()`, falling back to `default_seed`.
    ///
    /// Unknown flags are ignored so bins can add their own on top.
    pub fn parse(default_seed: u64) -> Self {
        Self::parse_from(std::env::args().skip(1), default_seed)
    }

    fn parse_from(args: impl Iterator<Item = String>, default_seed: u64) -> Self {
        let mut out = BinArgs {
            seed: default_seed,
            trace: None,
            verbosity: Verbosity::Normal,
        };
        let mut args = args.peekable();
        let mut seed_seen = false;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => out.trace = args.next(),
                "-q" | "--quiet" => out.verbosity = Verbosity::Quiet,
                "-v" | "--verbose" => out.verbosity = Verbosity::Verbose,
                other => {
                    if !seed_seen {
                        if let Ok(s) = other.parse() {
                            out.seed = s;
                            seed_seen = true;
                        }
                    }
                }
            }
        }
        out
    }
}

/// The sinks an experiment binary writes to, built from [`BinArgs`].
///
/// Owns the underlying sinks; borrow a combined observer with
/// [`Sinks::observer`] and pass it to `PpaTuner::run_observed` (or emit
/// progress events directly).
pub struct Sinks {
    stderr: StderrSink,
    jsonl: Option<JsonlSink>,
}

impl Sinks {
    /// Opens the trace file (if requested) and configures stderr.
    ///
    /// # Panics
    ///
    /// Panics when the trace file cannot be created — a misspelled path
    /// should fail the experiment up front, not silently drop the trace.
    pub fn from_args(args: &BinArgs) -> Self {
        Sinks {
            stderr: StderrSink::new(args.verbosity),
            jsonl: args.trace.as_ref().map(|p| {
                JsonlSink::create(p).unwrap_or_else(|e| panic!("cannot create trace {p}: {e}"))
            }),
        }
    }

    /// A fan-out observer over stderr + the optional JSONL trace.
    pub fn observer(&self) -> MultiSink<'_> {
        let mut multi = MultiSink::new();
        multi.push(&self.stderr);
        if let Some(j) = &self.jsonl {
            multi.push(j);
        }
        multi
    }

    /// Emits a run-level progress message (replaces bespoke `eprintln!`).
    pub fn message(&self, text: impl Into<String>) {
        self.observer()
            .emit(&obs::Event::Message { text: text.into() });
    }

    /// Flushes the trace file, if one is open.
    pub fn flush(&self) {
        if let Some(j) = &self.jsonl {
            j.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BinArgs {
        BinArgs::parse_from(args.iter().map(|s| s.to_string()), 17)
    }

    #[test]
    fn default_seed_and_flags() {
        let a = parse(&[]);
        assert_eq!(a.seed, 17);
        assert_eq!(a.trace, None);
        assert_eq!(a.verbosity, Verbosity::Normal);
    }

    #[test]
    fn seed_trace_and_verbosity_in_any_order() {
        let a = parse(&["--trace", "t.jsonl", "42", "-v"]);
        assert_eq!(a.seed, 42);
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(a.verbosity, Verbosity::Verbose);
        let b = parse(&["7", "--quiet"]);
        assert_eq!(b.seed, 7);
        assert_eq!(b.verbosity, Verbosity::Quiet);
    }

    #[test]
    fn only_first_positional_is_the_seed() {
        let a = parse(&["5", "9"]);
        assert_eq!(a.seed, 5);
    }
}

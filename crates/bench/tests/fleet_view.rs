//! End-to-end fleet view: record three real (small) tuning runs through
//! `JsonlSink`, ingest the directory the way `trace_report --fleet`
//! does, and check every aggregate section materializes.

use bench::fleet::{parse_jsonl, summarize_run, FleetReport};
use obs::JsonlSink;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

fn record_fleet(dir: &std::path::Path, seeds: &[u64]) {
    let scenario = benchgen::Scenario::two_with_counts(5, 80, 60).with_source_budget(40);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");
    for &seed in seeds {
        let config = PpaTunerConfig {
            initial_samples: 8,
            max_iterations: 4,
            seed,
            ..Default::default()
        };
        let mut oracle = VecOracle::new(scenario.target_table(space));
        let path = dir.join(format!("seed-{seed}.jsonl"));
        let sink = JsonlSink::create(&path).expect("create trace");
        PpaTuner::new(config)
            .run_observed(&source, &candidates, &mut oracle, &sink)
            .expect("tuning run");
        sink.try_flush().expect("trace flushes cleanly");
    }
}

#[test]
fn fleet_of_three_recorded_runs_aggregates() {
    let dir = std::env::temp_dir().join(format!("ppatuner-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp fleet dir");
    record_fleet(&dir, &[1, 2, 3]);

    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read fleet dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 3, "three traces recorded");

    let mut report = FleetReport::default();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read trace");
        let parsed = parse_jsonl(&text, false).expect("recorded trace parses strictly");
        assert_eq!(parsed.skipped, 0);
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        report.runs.push(summarize_run(&name, &parsed.events));
    }
    let text = report.render(5);

    assert!(text.contains("fleet report: 3 runs"), "{text}");
    assert!(text.contains("hypervolume convergence (3 runs)"), "{text}");
    assert!(text.contains("median"), "{text}");
    assert!(text.contains("evaluation health:"), "{text}");
    assert!(
        text.contains("per-phase time (causal spans, all runs):"),
        "{text}"
    );
    for phase in ["gp_fit", "classify", "eval_attempt", "iteration"] {
        assert!(text.contains(phase), "missing phase {phase}: {text}");
    }
    assert!(text.contains("slowest spans (top 5):"), "{text}");
    assert!(text.contains("Cholesky flops"), "{text}");

    // A corrupted copy of a real trace fails strict parsing with the
    // right line number but survives lenient ingestion.
    let mut corrupt = std::fs::read_to_string(&files[0]).expect("read trace");
    corrupt.insert_str(0, "garbage line\n");
    let err = parse_jsonl(&corrupt, false).unwrap_err();
    assert_eq!(err.line, 1);
    let lenient = parse_jsonl(&corrupt, true).expect("lenient parse");
    assert_eq!(lenient.skipped, 1);
    assert!(!lenient.events.is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

//! Criterion micro-benchmarks of the reproduction's building blocks:
//! GP fit/predict scaling, transfer-GP fitting, hypervolume, LHS
//! sampling, one PD-flow run, and one tuner decision pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;

fn gp_benches(c: &mut Criterion) {
    use gp::kernel::SquaredExponential;
    use gp::GpRegressor;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("gp");
    for &n in &[50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..8).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().sin()).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let kernel = SquaredExponential::isotropic(8, 1.0, 0.5).unwrap();
                GpRegressor::fit(x.clone(), y.clone(), kernel, 1e-4).unwrap()
            })
        });
        let kernel = SquaredExponential::isotropic(8, 1.0, 0.5).unwrap();
        let model = GpRegressor::fit(x.clone(), y.clone(), kernel, 1e-4).unwrap();
        let q: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| model.predict(&q).unwrap())
        });
    }
    group.finish();
}

fn transfer_gp_bench(c: &mut Criterion) {
    use gp::{TaskData, TransferGp, TransferGpConfig};
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(2);
    let mk = |n: usize, rng: &mut StdRng| -> TaskData {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..8).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>().cos()).collect();
        TaskData::new(x, y)
    };
    let source = mk(150, &mut rng);
    let target = mk(60, &mut rng);
    c.bench_function("transfer_gp/fit_150s_60t", |b| {
        b.iter(|| {
            TransferGp::fit(
                source.clone(),
                target.clone(),
                TransferGpConfig::default_for_dim(8),
            )
            .unwrap()
        })
    });
}

fn hypervolume_bench(c: &mut Criterion) {
    use pareto::hypervolume::hypervolume;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("hypervolume");
    for &(d, n) in &[(2usize, 100usize), (3, 60)] {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let reference = vec![1.2; d];
        group.bench_with_input(BenchmarkId::new(format!("{d}d"), n), &n, |b, _| {
            b.iter(|| hypervolume(&pts, &reference).unwrap())
        });
    }
    group.finish();
}

fn lhs_bench(c: &mut Criterion) {
    use benchgen::BenchmarkId as Bid;
    use doe::LatinHypercube;
    use rand::SeedableRng;

    let space = Bid::Target1.space();
    c.bench_function("lhs/target1_space_500", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            LatinHypercube::new().sample(&space, 500, &mut rng)
        })
    });
}

fn pdsim_bench(c: &mut Criterion) {
    use pdsim::{Design, PdFlow, ToolParams};

    let flow = PdFlow::new(Design::mac_small(42));
    let params = ToolParams::default();
    c.bench_function("pdsim/flow_run_small_mac", |b| b.iter(|| flow.run(&params)));

    c.bench_function("pdsim/generate_small_mac_netlist", |b| {
        b.iter(|| pdsim::MacConfig::small().generate().cell_count())
    });
}

fn tuner_decision_bench(c: &mut Criterion) {
    use ppatuner::{classify, Status, UncertaintyRegion};
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let regions: Vec<UncertaintyRegion> = (0..500)
        .map(|_| {
            let lo: Vec<f64> = (0..2).map(|_| rng.gen::<f64>()).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen::<f64>() * 0.2).collect();
            let mut u = UncertaintyRegion::unbounded(2);
            u.intersect(&lo, &hi);
            u
        })
        .collect();
    c.bench_function("tuner/classify_500_candidates", |b| {
        b.iter(|| {
            let mut statuses = vec![Status::Undecided; regions.len()];
            classify(&regions, &mut statuses, &[0.01, 0.01])
        })
    });
}

fn tuner_observability_bench(c: &mut Criterion) {
    use benchgen::Scenario;
    use obs::{RecordingSink, NULL_SINK};
    use pdsim::ObjectiveSpace;
    use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, VecOracle};

    let scenario = Scenario::two_with_counts(42, 200, 160);
    let space = ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("source");
    let config = PpaTunerConfig {
        initial_samples: 12,
        max_iterations: 4,
        seed: 9,
        ..Default::default()
    };

    // The null sink must be free: `run` and `run_observed(&NULL_SINK)` are
    // the same code path, and event construction is skipped when the
    // observer is disabled. These two benches should be within noise
    // (<2%); the recording variant shows the cost of actually tracing.
    let mut group = c.benchmark_group("tuner");
    group.bench_function("loop_null_sink", |b| {
        b.iter(|| {
            let mut oracle = VecOracle::new(table.clone());
            PpaTuner::new(config.clone())
                .run_observed(&source, &candidates, &mut oracle, &NULL_SINK)
                .expect("tuning succeeds")
                .runs
        })
    });
    group.bench_function("loop_recording_sink", |b| {
        b.iter(|| {
            let sink = RecordingSink::new();
            let mut oracle = VecOracle::new(table.clone());
            PpaTuner::new(config.clone())
                .run_observed(&source, &candidates, &mut oracle, &sink)
                .expect("tuning succeeds")
                .runs
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    gp_benches,
    transfer_gp_bench,
    hypervolume_bench,
    lhs_bench,
    pdsim_bench,
    tuner_decision_bench,
    tuner_observability_bench
);
criterion_main!(benches);

//! The exact parameter spaces of the paper's Table 1.

use doe::{ParamDef, ParamKind, ParamSpace};

use crate::BenchmarkId;

/// Builds the Table 1 parameter space of one benchmark.
///
/// Parameter names use the paper's spellings (which
/// [`pdsim::ToolParams::from_config`] recognizes); "-" cells of Table 1
/// are simply absent from the space and keep the flow defaults.
///
/// # Panics
///
/// Never panics: all ranges below are statically valid.
pub fn table1_space(id: BenchmarkId) -> ParamSpace {
    let defs = match id {
        BenchmarkId::Source1 => vec![
            ParamDef::float("freq", 950.0, 1050.0),
            ParamDef::float("place_uncertainty", 50.0, 200.0),
            ParamDef::enumeration("flowEffort", &["standard", "extreme"]),
            ParamDef::boolean("uniform_density").into_ok(),
            ParamDef::enumeration("cong_effort", &["auto", "high"]),
            ParamDef::float("max_density", 0.65, 0.90),
            ParamDef::float("max_Length", 160.0, 310.0),
            ParamDef::float("max_Density", 0.65, 0.90),
            ParamDef::float("max_transition", 0.19, 0.34),
            ParamDef::float("max_capacitance", 0.08, 0.13),
            ParamDef::int("max_fanout", 25, 50),
            ParamDef::float("max_AllowedDelay", 0.00, 0.25),
        ],
        BenchmarkId::Target1 => vec![
            ParamDef::float("freq", 1000.0, 1300.0),
            ParamDef::float("place_uncertainty", 20.0, 100.0),
            ParamDef::enumeration("flowEffort", &["standard", "extreme"]),
            ParamDef::boolean("uniform_density").into_ok(),
            ParamDef::enumeration("cong_effort", &["auto", "high"]),
            ParamDef::float("max_density", 0.65, 0.90),
            ParamDef::float("max_Length", 160.0, 300.0),
            ParamDef::float("max_Density", 0.65, 0.90),
            ParamDef::float("max_transition", 0.10, 0.35),
            ParamDef::float("max_capacitance", 0.08, 0.20),
            ParamDef::int("max_fanout", 25, 50),
            ParamDef::float("max_AllowedDelay", 0.00, 0.25),
        ],
        BenchmarkId::Source2 => vec![
            ParamDef::float("place_rcfactor", 1.00, 1.30),
            ParamDef::enumeration("flowEffort", &["standard", "extreme"]),
            ParamDef::enumeration("timing_effort", &["medium", "high"]),
            ParamDef::boolean("clock_power_driven").into_ok(),
            ParamDef::float("max_Length", 250.0, 350.0),
            ParamDef::float("max_Density", 0.50, 1.00),
            ParamDef::float("max_capacitance", 0.07, 0.12),
            ParamDef::int("max_fanout", 25, 40),
            ParamDef::float("max_AllowedDelay", 0.06, 0.12),
        ],
        BenchmarkId::Target2 => vec![
            ParamDef::float("place_rcfactor", 1.00, 1.30),
            ParamDef::enumeration("flowEffort", &["standard", "extreme"]),
            ParamDef::enumeration("timing_effort", &["medium", "high"]),
            ParamDef::boolean("clock_power_driven").into_ok(),
            ParamDef::float("max_Length", 250.0, 350.0),
            ParamDef::float("max_Density", 0.50, 1.00),
            ParamDef::float("max_capacitance", 0.05, 0.15),
            ParamDef::int("max_fanout", 25, 39),
            ParamDef::float("max_AllowedDelay", 0.00, 0.12),
        ],
    };
    let defs: Vec<ParamDef> = defs
        .into_iter()
        .map(|d| d.expect("table 1 ranges are statically valid"))
        .collect();
    ParamSpace::new(defs).expect("table 1 spaces are statically valid")
}

/// Builds a joint encoding space for a (source, target) benchmark pair:
/// per-parameter union ranges so that the same physical value encodes to
/// the same coordinate in both tasks.
///
/// # Panics
///
/// Panics when the two spaces do not share parameter names in order —
/// true for the paper's pairs by construction.
pub fn joint_space(source: &ParamSpace, target: &ParamSpace) -> ParamSpace {
    assert_eq!(
        source.dim(),
        target.dim(),
        "paired benchmarks must share dimensionality"
    );
    let defs: Vec<ParamDef> = source
        .iter()
        .zip(target.iter())
        .map(|(s, t)| {
            assert_eq!(s.name(), t.name(), "paired parameters must align by name");
            merge_defs(s, t)
        })
        .collect();
    ParamSpace::new(defs).expect("merged space is valid")
}

fn merge_defs(s: &ParamDef, t: &ParamDef) -> ParamDef {
    match (s.kind(), t.kind()) {
        (ParamKind::Float { min: a, max: b }, ParamKind::Float { min: c, max: d }) => {
            ParamDef::float(s.name(), a.min(*c), b.max(*d)).expect("union range valid")
        }
        (ParamKind::Int { min: a, max: b }, ParamKind::Int { min: c, max: d }) => {
            ParamDef::int(s.name(), *a.min(c), *b.max(d)).expect("union range valid")
        }
        (ParamKind::Enum { choices: a }, ParamKind::Enum { choices: b }) => {
            assert_eq!(a, b, "paired enums must share choices");
            let refs: Vec<&str> = a.iter().map(String::as_str).collect();
            ParamDef::enumeration(s.name(), &refs).expect("enum valid")
        }
        (ParamKind::Bool, ParamKind::Bool) => ParamDef::boolean(s.name()),
        _ => panic!(
            "paired parameter `{}` has mismatched kinds across benchmarks",
            s.name()
        ),
    }
}

/// Tiny helper so the table above can mix fallible and infallible
/// constructors uniformly.
trait IntoOk: Sized {
    fn into_ok(self) -> Result<Self, doe::DoeError>;
}

impl IntoOk for ParamDef {
    fn into_ok(self) -> Result<Self, doe::DoeError> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_table1() {
        assert_eq!(table1_space(BenchmarkId::Source1).dim(), 12);
        assert_eq!(table1_space(BenchmarkId::Target1).dim(), 12);
        assert_eq!(table1_space(BenchmarkId::Source2).dim(), 9);
        assert_eq!(table1_space(BenchmarkId::Target2).dim(), 9);
    }

    #[test]
    fn scenario_pairs_align_by_name() {
        for (s, t) in [
            (BenchmarkId::Source1, BenchmarkId::Target1),
            (BenchmarkId::Source2, BenchmarkId::Target2),
        ] {
            let ss = table1_space(s);
            let ts = table1_space(t);
            for (a, b) in ss.iter().zip(ts.iter()) {
                assert_eq!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn joint_space_covers_both_ranges() {
        let s = table1_space(BenchmarkId::Source1);
        let t = table1_space(BenchmarkId::Target1);
        let j = joint_space(&s, &t);
        // freq union is [950, 1300].
        let freq = j.param(j.index_of("freq").unwrap());
        match freq.kind() {
            ParamKind::Float { min, max } => {
                assert_eq!(*min, 950.0);
                assert_eq!(*max, 1300.0);
            }
            _ => panic!("freq must stay a float"),
        }
        // place_uncertainty union is [20, 200].
        let pu = j.param(j.index_of("place_uncertainty").unwrap());
        match pu.kind() {
            ParamKind::Float { min, max } => {
                assert_eq!(*min, 20.0);
                assert_eq!(*max, 200.0);
            }
            _ => panic!("place_uncertainty must stay a float"),
        }
    }

    #[test]
    fn joint_encoding_is_physically_consistent() {
        use doe::{Config, ParamValue};
        let s = table1_space(BenchmarkId::Source2);
        let t = table1_space(BenchmarkId::Target2);
        let j = joint_space(&s, &t);
        // The same physical configuration encodes identically regardless
        // of which task it came from, because both use the joint space.
        let c = Config::new(vec![
            ParamValue::Float(1.15),
            ParamValue::Enum(1),
            ParamValue::Enum(0),
            ParamValue::Bool(true),
            ParamValue::Float(300.0),
            ParamValue::Float(0.75),
            ParamValue::Float(0.10),
            ParamValue::Int(30),
            ParamValue::Float(0.08),
        ]);
        let e1 = j.encode(&c).unwrap();
        let e2 = j.encode(&c).unwrap();
        assert_eq!(e1, e2);
        assert!(e1.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn table1_ranges_spot_checks() {
        // A few literal cells from the paper's Table 1.
        let t2 = table1_space(BenchmarkId::Target2);
        match t2.param(t2.index_of("max_capacitance").unwrap()).kind() {
            ParamKind::Float { min, max } => {
                assert_eq!(*min, 0.05);
                assert_eq!(*max, 0.15);
            }
            _ => panic!(),
        }
        match t2.param(t2.index_of("max_fanout").unwrap()).kind() {
            ParamKind::Int { min, max } => {
                assert_eq!(*min, 25);
                assert_eq!(*max, 39);
            }
            _ => panic!(),
        }
        let s1 = table1_space(BenchmarkId::Source1);
        match s1.param(s1.index_of("max_transition").unwrap()).kind() {
            ParamKind::Float { min, max } => {
                assert_eq!(*min, 0.19);
                assert_eq!(*max, 0.34);
            }
            _ => panic!(),
        }
    }
}

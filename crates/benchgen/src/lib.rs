//! Offline benchmark construction for the PPATuner reproduction.
//!
//! The paper evaluates on four offline benchmarks (Table 1 + §4.1):
//! Latin-hypercube-sampled tool-parameter configurations, each run through
//! the PD flow once so that golden QoR values — and hence golden Pareto
//! fronts — are known exactly:
//!
//! | Benchmark | Design          | Parameters | Points |
//! |-----------|-----------------|-----------:|-------:|
//! | Source1   | small MAC (~20k)| 12         | 5000   |
//! | Target1   | small MAC (~20k)| 12         | 5000   |
//! | Source2   | small MAC (~20k)| 9          | 1440   |
//! | Target2   | large MAC (~67k)| 9          | 727    |
//!
//! This crate defines the exact parameter spaces of Table 1
//! ([`BenchmarkId::space`]), generates the point sets through
//! [`pdsim`] ([`Benchmark::generate`]), extracts golden fronts, and pairs
//! benchmarks into the paper's two transfer scenarios ([`Scenario`]) with
//! a **joint encoding**: source and target configurations are embedded in
//! a shared unit cube built from the union of the two spaces' ranges, so
//! the transfer kernel compares physically commensurate coordinates.
//!
//! # Example
//!
//! ```no_run
//! use benchgen::{Scenario};
//! use pdsim::ObjectiveSpace;
//!
//! let scenario = Scenario::one(42); // Source1 → Target1
//! let golden = scenario.target().golden_front(ObjectiveSpace::PowerDelay);
//! assert!(!golden.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod scenario;
mod spaces;

pub use benchmark::{Benchmark, BenchmarkId};
pub use scenario::Scenario;
pub use spaces::{joint_space, table1_space};

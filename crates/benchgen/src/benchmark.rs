//! One offline benchmark: configurations, golden QoR values, golden
//! fronts.

use doe::{Config, LatinHypercube, ParamSpace};
use pdsim::{Design, ObjectiveSpace, PdFlow, Qor, ToolParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::spaces::table1_space;

/// Which of the paper's four benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Small MAC, 12 parameters, 5000 points (scenario-one source).
    Source1,
    /// Small MAC, 12 parameters, 5000 points (scenario-one target).
    Target1,
    /// Small MAC, 9 parameters, 1440 points (scenario-two source).
    Source2,
    /// Large MAC, 9 parameters, 727 points (scenario-two target).
    Target2,
}

impl BenchmarkId {
    /// All four benchmarks in Table 1 order.
    pub const ALL: [BenchmarkId; 4] = [
        BenchmarkId::Source1,
        BenchmarkId::Target1,
        BenchmarkId::Source2,
        BenchmarkId::Target2,
    ];

    /// The paper's name for the benchmark.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Source1 => "Source1",
            BenchmarkId::Target1 => "Target1",
            BenchmarkId::Source2 => "Source2",
            BenchmarkId::Target2 => "Target2",
        }
    }

    /// The Table 1 parameter space.
    pub fn space(self) -> ParamSpace {
        table1_space(self)
    }

    /// The number of offline configuration points (§4.1).
    pub fn point_count(self) -> usize {
        match self {
            BenchmarkId::Source1 | BenchmarkId::Target1 => 5000,
            BenchmarkId::Source2 => 1440,
            BenchmarkId::Target2 => 727,
        }
    }

    /// The design implemented by this benchmark. Source1, Target1, and
    /// Source2 are the *same* ~20k-cell MAC (the paper generates them
    /// from one design with different parameters); Target2 is the ~67k
    /// MAC.
    pub fn design(self) -> Design {
        match self {
            BenchmarkId::Source1 | BenchmarkId::Target1 | BenchmarkId::Source2 => {
                Design::mac_small(42)
            }
            BenchmarkId::Target2 => Design::mac_large(43),
        }
    }

    /// Per-benchmark LHS seed (fixed so the offline tables are stable).
    fn lhs_seed(self) -> u64 {
        match self {
            BenchmarkId::Source1 => 0x51,
            BenchmarkId::Target1 => 0x71,
            BenchmarkId::Source2 => 0x52,
            BenchmarkId::Target2 => 0x72,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One offline benchmark: LHS-sampled configurations with golden QoR
/// values from the PD flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    id: BenchmarkId,
    configs: Vec<Config>,
    qors: Vec<Qor>,
}

impl Benchmark {
    /// Generates the benchmark: Latin-hypercube sampling of the Table 1
    /// space to the §4.1 point count, evaluated through the PD flow.
    ///
    /// Deterministic: the LHS seed is fixed per benchmark and the flow is
    /// deterministic, so repeated generation yields identical tables.
    pub fn generate(id: BenchmarkId) -> Self {
        Self::generate_with_count(id, id.point_count())
    }

    /// Generates a (possibly smaller) benchmark — smaller counts keep
    /// tests and examples fast while exercising identical code paths.
    pub fn generate_with_count(id: BenchmarkId, points: usize) -> Self {
        let space = id.space();
        let mut rng = StdRng::seed_from_u64(id.lhs_seed());
        let configs = LatinHypercube::new().sample_distinct(&space, points, 8, &mut rng);
        let flow = PdFlow::new(id.design());
        let qors = configs
            .iter()
            .map(|c| {
                let params = ToolParams::from_config(&space, c)
                    .expect("sampled configs belong to their space");
                flow.run(&params)
            })
            .collect();
        Benchmark { id, configs, qors }
    }

    /// The benchmark identity.
    pub fn id(&self) -> BenchmarkId {
        self.id
    }

    /// Number of configuration points.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` when the benchmark has no points.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Borrows the configurations.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// Borrows the golden QoR values (parallel to
    /// [`configs`](Benchmark::configs)).
    pub fn qors(&self) -> &[Qor] {
        &self.qors
    }

    /// Encodes every configuration into `space`'s unit cube (use the
    /// [`crate::joint_space`] of a scenario for transfer settings).
    ///
    /// # Panics
    ///
    /// Panics when a configuration does not belong to `space`.
    pub fn encode_in(&self, space: &ParamSpace) -> Vec<Vec<f64>> {
        self.configs
            .iter()
            .map(|c| space.encode(c).expect("benchmark configs fit the space"))
            .collect()
    }

    /// The QoR table projected onto an objective subspace.
    pub fn qor_table(&self, space: ObjectiveSpace) -> Vec<Vec<f64>> {
        self.qors.iter().map(|q| q.project(space)).collect()
    }

    /// The golden Pareto front in an objective subspace (the paper's
    /// "real Pareto set": the best of the offline table).
    pub fn golden_front(&self, space: ObjectiveSpace) -> Vec<Vec<f64>> {
        pareto::front::pareto_front_points(&self.qor_table(space))
    }

    /// Serializes to JSON (for caching expensive tables on disk).
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON produced by [`Benchmark::to_json`].
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_generation_is_deterministic() {
        let a = Benchmark::generate_with_count(BenchmarkId::Source2, 40);
        let b = Benchmark::generate_with_count(BenchmarkId::Source2, 40);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn qors_are_valid_and_varied() {
        let b = Benchmark::generate_with_count(BenchmarkId::Target2, 60);
        assert!(b.qors().iter().all(Qor::is_valid));
        // The parameter space must actually move the QoR metrics.
        for space in ObjectiveSpace::ALL {
            let table = b.qor_table(space);
            for k in 0..space.dim() {
                let lo = table.iter().map(|r| r[k]).fold(f64::INFINITY, f64::min);
                let hi = table.iter().map(|r| r[k]).fold(f64::NEG_INFINITY, f64::max);
                assert!(
                    hi > lo * 1.01,
                    "{space}: objective {k} is flat ({lo}..{hi})"
                );
            }
        }
    }

    #[test]
    fn golden_front_is_nontrivial() {
        let b = Benchmark::generate_with_count(BenchmarkId::Target1, 120);
        let front = b.golden_front(ObjectiveSpace::PowerDelay);
        assert!(front.len() >= 2, "front of {} points", front.len());
        assert!(front.len() < b.len());
    }

    #[test]
    fn encode_in_own_space_is_unit_cube() {
        let b = Benchmark::generate_with_count(BenchmarkId::Source1, 25);
        let enc = b.encode_in(&BenchmarkId::Source1.space());
        assert_eq!(enc.len(), 25);
        assert!(enc
            .iter()
            .all(|p| p.len() == 12 && p.iter().all(|&u| (0.0..=1.0).contains(&u))));
    }

    #[test]
    fn json_roundtrip() {
        let b = Benchmark::generate_with_count(BenchmarkId::Target2, 10);
        let json = b.to_json().unwrap();
        let back = Benchmark::from_json(&json).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn ids_expose_paper_metadata() {
        assert_eq!(BenchmarkId::Source1.point_count(), 5000);
        assert_eq!(BenchmarkId::Target2.point_count(), 727);
        assert_eq!(BenchmarkId::Source2.name(), "Source2");
        assert_eq!(BenchmarkId::Target1.to_string(), "Target1");
        // Source1/Target1/Source2 share one design; Target2 differs.
        assert_eq!(BenchmarkId::Source1.design(), BenchmarkId::Target1.design());
        assert_eq!(BenchmarkId::Source1.design(), BenchmarkId::Source2.design());
        assert_ne!(BenchmarkId::Target2.design(), BenchmarkId::Source2.design());
    }
}

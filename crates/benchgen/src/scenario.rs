//! The paper's two transfer scenarios: a (source, target) benchmark pair
//! with a joint encoding.

use doe::ParamSpace;
use pdsim::ObjectiveSpace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::spaces::joint_space;
use crate::{Benchmark, BenchmarkId};

/// A transfer-tuning scenario: source-task history plus a target-task
/// candidate set, jointly encoded.
///
/// - [`Scenario::one`] — *same design, different parameter preferences*
///   (§4.2.1): Source1 → Target1.
/// - [`Scenario::two`] — *similar designs, small → large* (§4.2.2):
///   Source2 → Target2.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: &'static str,
    source: Benchmark,
    target: Benchmark,
    joint: ParamSpace,
    /// How many source points a tuner may use (the paper fixes 200).
    source_budget: usize,
    seed: u64,
}

impl Scenario {
    /// Scenario One (Source1 → Target1) at full paper scale
    /// (5000 + 5000 points; generation takes a few seconds).
    pub fn one(seed: u64) -> Self {
        Self::one_with_counts(
            seed,
            BenchmarkId::Source1.point_count(),
            BenchmarkId::Target1.point_count(),
        )
    }

    /// Scenario Two (Source2 → Target2) at full paper scale (1440 + 727).
    pub fn two(seed: u64) -> Self {
        Self::two_with_counts(
            seed,
            BenchmarkId::Source2.point_count(),
            BenchmarkId::Target2.point_count(),
        )
    }

    /// Scenario One at reduced scale (for tests/examples).
    pub fn one_with_counts(seed: u64, source_points: usize, target_points: usize) -> Self {
        let source = Benchmark::generate_with_count(BenchmarkId::Source1, source_points);
        let target = Benchmark::generate_with_count(BenchmarkId::Target1, target_points);
        Self::build("scenario-one", source, target, seed)
    }

    /// Scenario Two at reduced scale (for tests/examples).
    pub fn two_with_counts(seed: u64, source_points: usize, target_points: usize) -> Self {
        let source = Benchmark::generate_with_count(BenchmarkId::Source2, source_points);
        let target = Benchmark::generate_with_count(BenchmarkId::Target2, target_points);
        Self::build("scenario-two", source, target, seed)
    }

    fn build(name: &'static str, source: Benchmark, target: Benchmark, seed: u64) -> Self {
        let joint = joint_space(&source.id().space(), &target.id().space());
        Scenario {
            name,
            source,
            target,
            joint,
            source_budget: 200,
            seed,
        }
    }

    /// Overrides how many source observations tuners see (paper: 200).
    pub fn with_source_budget(mut self, n: usize) -> Self {
        self.source_budget = n;
        self
    }

    /// The scenario's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The source benchmark.
    pub fn source(&self) -> &Benchmark {
        &self.source
    }

    /// The target benchmark.
    pub fn target(&self) -> &Benchmark {
        &self.target
    }

    /// The joint encoding space.
    pub fn joint(&self) -> &ParamSpace {
        &self.joint
    }

    /// The target candidates encoded in the joint unit cube.
    pub fn target_candidates(&self) -> Vec<Vec<f64>> {
        self.target.encode_in(&self.joint)
    }

    /// The golden QoR table of the target in an objective subspace
    /// (this backs the tuner's oracle and metric computation).
    pub fn target_table(&self, space: ObjectiveSpace) -> Vec<Vec<f64>> {
        self.target.qor_table(space)
    }

    /// `source_budget` source observations (encoded jointly, with their
    /// QoR vectors in the objective subspace), subsampled with this
    /// scenario's seed — the paper's "200 data points in the source task".
    pub fn source_xy(&self, space: ObjectiveSpace) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let encoded = self.source.encode_in(&self.joint);
        let table = self.source.qor_table(space);
        let mut idx: Vec<usize> = (0..self.source.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5005_e0e0);
        idx.shuffle(&mut rng);
        idx.truncate(self.source_budget.min(encoded.len()));
        (
            idx.iter().map(|&i| encoded[i].clone()).collect(),
            idx.iter().map(|&i| table[i].clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_two() -> Scenario {
        Scenario::two_with_counts(7, 60, 40)
    }

    #[test]
    fn candidates_and_tables_align() {
        let s = small_two();
        let cands = s.target_candidates();
        let table = s.target_table(ObjectiveSpace::PowerDelay);
        assert_eq!(cands.len(), 40);
        assert_eq!(table.len(), 40);
        assert!(cands.iter().all(|c| c.len() == 9));
        assert!(table.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn source_budget_is_respected() {
        let s = small_two().with_source_budget(25);
        let (x, y) = s.source_xy(ObjectiveSpace::AreaPowerDelay);
        assert_eq!(x.len(), 25);
        assert_eq!(y.len(), 25);
        assert!(y.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn source_subsample_is_seeded() {
        let a = small_two().source_xy(ObjectiveSpace::PowerDelay);
        let b = small_two().source_xy(ObjectiveSpace::PowerDelay);
        assert_eq!(a, b);
        let c = Scenario::two_with_counts(8, 60, 40).source_xy(ObjectiveSpace::PowerDelay);
        assert_ne!(a, c);
    }

    #[test]
    fn joint_encoding_has_union_dimension() {
        let s = small_two();
        assert_eq!(s.joint().dim(), 9);
        assert_eq!(s.name(), "scenario-two");
        assert_eq!(s.source().id(), BenchmarkId::Source2);
        assert_eq!(s.target().id(), BenchmarkId::Target2);
    }

    #[test]
    fn scenario_one_builds() {
        let s = Scenario::one_with_counts(1, 30, 30);
        assert_eq!(s.joint().dim(), 12);
        assert_eq!(s.target_candidates().len(), 30);
    }
}

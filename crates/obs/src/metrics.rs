//! Thread-safe metrics: counters, gauges, histograms, and RAII span timers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets per decade (geometric spacing).
const BUCKETS_PER_DECADE: usize = 8;
/// Smallest representable bucket edge; values below land in underflow.
const MIN_EDGE_EXP10: i32 = -9;
/// Largest representable bucket edge; values at or above land in overflow.
const MAX_EDGE_EXP10: i32 = 9;
/// Interior bucket count: `(MAX - MIN) decades × BUCKETS_PER_DECADE`.
const BUCKETS: usize = ((MAX_EDGE_EXP10 - MIN_EDGE_EXP10) as usize) * BUCKETS_PER_DECADE;

/// A fixed-bucket histogram of non-negative values.
///
/// Buckets are geometrically spaced — 8 per decade from `1e-9` to `1e9` —
/// so quantile estimates carry at most ~15% relative error anywhere in that
/// range, which is plenty for timing data. Recording is lock-free.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    /// f64 bit patterns maintained via CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Geometric bucket index of `v`, or `Err(true)` for overflow /
/// `Err(false)` for underflow.
fn bucket_index(v: f64) -> Result<usize, bool> {
    if v.is_nan() || v <= 0.0 {
        return Err(false);
    }
    let log = v.log10() - MIN_EDGE_EXP10 as f64;
    if log < 0.0 {
        return Err(false);
    }
    let idx = (log * BUCKETS_PER_DECADE as f64).floor() as usize;
    if idx >= BUCKETS {
        Err(true)
    } else {
        Ok(idx)
    }
}

/// Lower edge of bucket `idx`.
fn bucket_lower(idx: usize) -> f64 {
    10f64.powf(MIN_EDGE_EXP10 as f64 + idx as f64 / BUCKETS_PER_DECADE as f64)
}

fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

impl Histogram {
    /// Records one observation. Negative or non-finite values count toward
    /// the underflow bucket (they still appear in `count`, not in `sum`).
    pub fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        match bucket_index(v) {
            Ok(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            Err(true) => self.overflow.fetch_add(1, Ordering::Relaxed),
            Err(false) => self.underflow.fetch_add(1, Ordering::Relaxed),
        };
        if v.is_finite() {
            atomic_f64_update(&self.sum_bits, |s| s + v);
            atomic_f64_update(&self.min_bits, |m| m.min(v));
            atomic_f64_update(&self.max_bits, |m| m.max(v));
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Smallest finite observation, or 0 when none was recorded.
    fn finite_min(&self) -> f64 {
        let m = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Largest finite observation, or 0 when none was recorded.
    fn finite_max(&self) -> f64 {
        let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) as the lower
    /// edge of the bucket containing it. Returns `None` when the histogram
    /// is empty or `q` is NaN. The extremes are exact: `q = 0` returns the
    /// recorded minimum, `q = 1` the recorded maximum, and a single-sample
    /// histogram returns that sample for every `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 || total == 1 {
            return Some(self.finite_min());
        }
        if q >= 1.0 {
            return Some(self.finite_max());
        }
        // Rank of the target observation, 1-based.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow.load(Ordering::Relaxed);
        if seen >= rank {
            return Some(self.finite_min().min(bucket_lower(0)));
        }
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_lower(i));
            }
        }
        Some(self.finite_max())
    }

    /// A point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let (min, max) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            )
        };
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min,
            max,
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// Point-in-time histogram statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A named collection of counters, gauges, and histograms.
///
/// All operations take `&self` and are safe to call from many threads;
/// metrics are created lazily on first touch.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Adds `n` to the named counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter_cell(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of the named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_cell(name).load(Ordering::Relaxed)
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge_cell(name).store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value of the named gauge (0.0 if never set).
    pub fn gauge(&self, name: &str) -> f64 {
        f64::from_bits(self.gauge_cell(name).load(Ordering::Relaxed))
    }

    /// The named histogram, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        self.histogram(name).record(v);
    }

    /// Starts a span timer; when the returned guard drops (or
    /// [`Span::finish`] is called), the elapsed seconds are recorded into
    /// the histogram named `name`.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            registry: self,
            name: name.into(),
            start: Instant::now(),
            done: false,
        }
    }

    /// Renders every metric in the Prometheus text exposition format, for
    /// scraping by a future tuning service (or `curl`-level debugging).
    ///
    /// Counters and gauges become single samples; histograms become
    /// summaries (`{quantile="..."}` samples plus `_sum` / `_count`).
    /// Metric names are sanitized to `[a-zA-Z0-9_:]` and emitted in sorted
    /// order, so the output is deterministic for a given metric state.
    pub fn expose_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut s: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if s.starts_with(|c: char| c.is_ascii_digit()) {
                s.insert(0, '_');
            }
            s
        }
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &snap.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, h) in &snap.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }

    /// A serializable snapshot of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A serializable point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// RAII wall-clock timer tied to a [`Registry`] histogram.
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a Registry,
    name: String,
    start: Instant,
    done: bool,
}

impl Span<'_> {
    /// Stops the timer now, records the duration, and returns the elapsed
    /// seconds. Without an explicit call, `Drop` records instead.
    pub fn finish(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        self.registry.observe(&self.name, secs);
        self.done = true;
        secs
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            let secs = self.start.elapsed().as_secs_f64();
            self.registry.observe(&self.name, secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        assert_eq!(r.counter("evals"), 0);
        r.counter_add("evals", 3);
        r.counter_add("evals", 2);
        assert_eq!(r.counter("evals"), 5);
        r.gauge_set("hv", 0.75);
        assert!((r.gauge("hv") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_bracket_truth() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // uniform on (0, 1]
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket edges carry at most one bucket (~33%) of relative error.
        assert!((0.3..=0.5).contains(&p50), "p50 {p50}");
        assert!((0.7..=0.99).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        let s = h.summary();
        assert!((s.mean - 0.5005).abs() < 1e-9);
        assert!((s.min - 0.001).abs() < 1e-12);
        assert!((s.max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-1.0);
        h.record(1e12);
        h.record(f64::NAN);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert!(h.quantile(q).is_none(), "q={q}");
        }
    }

    #[test]
    fn quantile_single_sample_is_exact_for_every_q() {
        let h = Histogram::default();
        h.record(0.037);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.037), "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let h = Histogram::default();
        for v in [0.002, 0.5, 31.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.002));
        assert_eq!(h.quantile(1.0), Some(31.0));
        // Out-of-range q clamps to the exact extremes.
        assert_eq!(h.quantile(-3.0), Some(0.002));
        assert_eq!(h.quantile(2.0), Some(31.0));
    }

    #[test]
    fn quantile_nan_q_is_rejected() {
        let h = Histogram::default();
        h.record(1.0);
        h.record(2.0);
        // Before the guard, a NaN q silently behaved like q≈0.
        assert!(h.quantile(f64::NAN).is_none());
    }

    #[test]
    fn quantile_all_nonfinite_observations_degrade_to_zero() {
        let h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::NAN);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(0.0));
        // A finite negative observation is a real (if odd) minimum.
        h.record(-2.0);
        assert_eq!(h.quantile(0.0), Some(-2.0));
    }

    #[test]
    fn expose_text_is_stable_and_complete() {
        let r = Registry::new();
        r.counter_add("tool evals", 42);
        r.gauge_set("hv", 0.75);
        r.observe("gp_fit_s", 0.125);
        let text = r.expose_text();
        assert_eq!(
            text,
            "# TYPE tool_evals counter\n\
             tool_evals 42\n\
             # TYPE hv gauge\n\
             hv 0.75\n\
             # TYPE gp_fit_s summary\n\
             gp_fit_s{quantile=\"0.5\"} 0.125\n\
             gp_fit_s{quantile=\"0.9\"} 0.125\n\
             gp_fit_s{quantile=\"0.99\"} 0.125\n\
             gp_fit_s_sum 0.125\n\
             gp_fit_s_count 1\n"
        );
        // Idempotent: rendering twice without metric changes is identical.
        assert_eq!(r.expose_text(), text);
    }

    #[test]
    fn span_records_elapsed_seconds() {
        let r = Registry::new();
        {
            let _guard = r.span("fit");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let fit = r.histogram("fit").summary();
        assert_eq!(fit.count, 1);
        assert!(fit.sum >= 0.002, "sum {}", fit.sum);

        let r2 = Registry::new();
        let secs = r2.span("x").finish();
        assert!(secs >= 0.0);
        assert_eq!(r2.histogram("x").count(), 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let r = Registry::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 2.5);
        r.observe("h", 0.1);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

//! Event sinks: where trace events go.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::Event;

/// Receives trace events.
///
/// Instrumented code should gate expensive event construction on
/// [`Observer::enabled`]:
///
/// ```no_run
/// # use obs::{Event, Observer};
/// # fn emit(obs: &dyn Observer) {
/// if obs.enabled() {
///     obs.emit(&Event::Message { text: "expensive to build".into() });
/// }
/// # }
/// ```
pub trait Observer: Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);

    /// Whether this observer wants events at all. The [`NullSink`] returns
    /// `false`, letting hot paths skip event construction entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Discards everything; `enabled()` is `false`. This is the default
/// observer, chosen so that un-instrumented runs pay (almost) nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

/// The shared null sink, usable as a `&'static dyn Observer` default.
pub static NULL_SINK: NullSink = NullSink;

impl Observer for NullSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// How chatty the [`StderrSink`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// Only run-level events (`RunStart`, `RunEnd`, `Message`).
    Quiet,
    /// Plus one line per iteration (`IterationEnd`).
    #[default]
    Normal,
    /// Every event, including per-evaluation and per-fit detail.
    Verbose,
}

/// Human-readable progress lines on stderr.
#[derive(Debug, Default)]
pub struct StderrSink {
    verbosity: Verbosity,
}

impl StderrSink {
    /// A sink printing at the given verbosity.
    pub fn new(verbosity: Verbosity) -> Self {
        StderrSink { verbosity }
    }

    fn render(event: &Event) -> String {
        match event {
            Event::RunStart {
                candidates,
                objectives,
                dim,
                initial_samples,
                max_iterations,
                seed,
            } => format!(
                "run start: {candidates} candidates, {objectives} objectives, dim {dim}, \
                 {initial_samples} initial samples, {max_iterations} max iters, seed {seed}"
            ),
            Event::GpFit {
                iteration,
                objective,
                refit,
                lambda,
                log_marginal,
                jitter,
                duration_s,
                ..
            } => format!(
                "iter {iteration:3}: gp[{objective}] {} lambda {lambda:.3} lml {log_marginal:.2} \
                 jitter {jitter:.1e} ({:.1} ms)",
                if *refit { "refit" } else { "warm " },
                duration_s * 1e3
            ),
            Event::ToolEval {
                iteration,
                candidate,
                qor,
                duration_s,
            } => format!(
                "iter {iteration:3}: eval #{candidate} -> {qor:.4?} ({:.1} ms)",
                duration_s * 1e3
            ),
            Event::Stage {
                candidate,
                stage,
                duration_s,
            } => format!("flow #{candidate}: {stage} ({:.1} ms)", duration_s * 1e3),
            Event::RegionSnapshot {
                iteration,
                statuses,
                diameters,
            } => format!(
                "iter {iteration:3}: snapshot {} candidates, max diameter {:.4}",
                statuses.len(),
                diameters.iter().copied().fold(0.0f64, f64::max)
            ),
            Event::Classify {
                iteration,
                pareto,
                dropped,
                undecided,
                delta,
            } => format!(
                "iter {iteration:3}: classify pareto {pareto} dropped {dropped} \
                 undecided {undecided} (delta {delta:.4?})"
            ),
            Event::Select {
                iteration, chosen, ..
            } => format!("iter {iteration:3}: select {chosen:?}"),
            Event::BatchSelect {
                iteration,
                q,
                chosen,
                ..
            } => format!("iter {iteration:3}: select batch {chosen:?} (q {q})"),
            Event::EvalFailed {
                iteration,
                candidate,
                attempt,
                kind,
                detail,
            } => format!(
                "iter {iteration:3}: eval #{candidate} attempt {attempt} FAILED ({kind}): {detail}"
            ),
            Event::EvalRetry {
                iteration,
                candidate,
                attempt,
                backoff_s,
            } => format!(
                "iter {iteration:3}: eval #{candidate} retry (attempt {attempt}, \
                 backoff {backoff_s:.1} s)"
            ),
            Event::CandidateQuarantined {
                iteration,
                candidate,
                attempts,
            } => format!(
                "iter {iteration:3}: QUARANTINED #{candidate} after {attempts} failed attempts"
            ),
            Event::Checkpoint {
                iteration,
                runs,
                evals_logged,
            } => format!(
                "iter {iteration:3}: checkpoint saved (runs {runs}, {evals_logged} attempts logged)"
            ),
            Event::IterationEnd {
                iteration,
                runs,
                pareto,
                dropped,
                undecided,
                hypervolume,
                duration_s,
                ..
            } => format!(
                "iter {iteration:3}: runs {runs:4}  pareto {pareto:3}  dropped {dropped:3}  \
                 undecided {undecided:3}  hv {hypervolume:.4}  ({duration_s:.3} s)"
            ),
            Event::RunEnd {
                iterations,
                runs,
                verification_runs,
                pareto,
                duration_s,
            } => format!(
                "run end: {iterations} iters, {runs} runs (+{verification_runs} verification), \
                 {pareto} pareto points in {duration_s:.3} s"
            ),
            Event::SpanStart { id, parent, name } => match parent {
                Some(p) => format!("span {id} ({name}) start, parent {p}"),
                None => format!("span {id} ({name}) start"),
            },
            Event::SpanEnd {
                id,
                name,
                duration_s,
            } => format!("span {id} ({name}) end ({:.1} ms)", duration_s * 1e3),
            Event::ResourceSample {
                iteration,
                chol_flops,
                chol_panels,
                tri_solve_rhs,
                fitcache_hits,
                fitcache_misses,
                kernel_assemblies,
                predict_cache_hits,
                predict_cache_misses,
                predict_cache_evictions,
                predict_chunks,
            } => format!(
                "iter {iteration:3}: resources chol {chol_flops} flops / {chol_panels} panels, \
                 trisolve {tri_solve_rhs} rhs, fitcache {fitcache_hits}h/{fitcache_misses}m, \
                 {kernel_assemblies} kernels, predict \
                 {predict_cache_hits}h/{predict_cache_misses}m/{predict_cache_evictions}e \
                 in {predict_chunks} chunks"
            ),
            Event::PoolRefine {
                iteration,
                splits,
                leaves,
                pool_size,
                effective_pool,
            } => format!(
                "iter {iteration:3}: pool refine {splits} splits -> {leaves} leaves, \
                 {pool_size} candidates (effective {effective_pool:.0})"
            ),
            Event::PredictMode {
                iteration,
                train_size,
                subset_size,
                queries,
                mode,
            } => format!(
                "iter {iteration:3}: predict {mode} ({queries} queries, train {train_size}, \
                 subset {subset_size})"
            ),
            Event::DegradedFit {
                iteration,
                objective,
                cause,
                mode,
                consecutive,
            } => format!(
                "iter {iteration:3}: gp[{objective}] DEGRADED ({mode}, streak {consecutive}): \
                 {cause}"
            ),
            Event::RecoveryScan {
                scanned,
                skipped,
                next_iteration,
            } => match next_iteration {
                Some(next) => format!(
                    "recovery: scanned {scanned} checkpoints, skipped {skipped} damaged, \
                     resuming at iter {next}"
                ),
                None => format!(
                    "recovery: scanned {scanned} checkpoints, skipped {skipped} damaged, \
                     nothing recoverable"
                ),
            },
            Event::WatchdogFired {
                iteration,
                candidate,
                attempt,
                deadline_s,
            } => format!(
                "iter {iteration:3}: eval #{candidate} attempt {attempt} WATCHDOG after \
                 {deadline_s:.1} s deadline"
            ),
            Event::Message { text } => text.clone(),
        }
    }
}

impl Observer for StderrSink {
    fn emit(&self, event: &Event) {
        let wanted = match event {
            Event::RunStart { .. } | Event::RunEnd { .. } | Event::Message { .. } => {
                Verbosity::Quiet
            }
            Event::IterationEnd { .. }
            | Event::DegradedFit { .. }
            | Event::RecoveryScan { .. }
            | Event::WatchdogFired { .. } => Verbosity::Normal,
            _ => Verbosity::Verbose,
        };
        if self.verbosity >= wanted {
            eprintln!("[obs] {}", Self::render(event));
        }
    }
}

/// Machine-readable trace: one externally-tagged JSON event per line.
///
/// Lines are buffered through a [`BufWriter`] and flushed on drop. I/O
/// errors never abort the tuning run, but they are not silently dropped
/// either: the first error is retained and surfaced by [`JsonlSink::try_flush`]
/// (and printed to stderr by the trait-level [`Observer::flush`] / `Drop`).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    /// First I/O error seen by any `emit` or flush, until claimed.
    error: Mutex<Option<io::Error>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            error: Mutex::new(None),
        })
    }

    fn record_error(&self, e: io::Error) {
        let mut slot = self.error.lock().expect("trace error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Flushes buffered lines to disk and reports the first I/O error seen
    /// by any earlier [`Observer::emit`] or by this flush. The stored error
    /// is cleared once returned, so callers see each failure exactly once.
    pub fn try_flush(&self) -> io::Result<()> {
        if let Err(e) = self.writer.lock().expect("trace writer poisoned").flush() {
            self.record_error(e);
        }
        match self.error.lock().expect("trace error slot poisoned").take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Observer for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("event serialization cannot fail");
        let mut w = self.writer.lock().expect("trace writer poisoned");
        // Trace output must not abort a tuning run, so failures are
        // recorded and surfaced at the next flush instead of panicking.
        if let Err(e) = writeln!(w, "{line}") {
            drop(w);
            self.record_error(e);
        }
    }

    fn flush(&self) {
        if let Err(e) = self.try_flush() {
            eprintln!("[obs] trace write failed: {e}");
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Observer::flush(self);
    }
}

/// Captures events in memory; for tests and in-process analysis.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// All events captured so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Number of captured events with the given [`Event::kind`].
    pub fn count(&self, kind: &str) -> usize {
        self.events
            .lock()
            .expect("recorder poisoned")
            .iter()
            .filter(|e| e.kind() == kind)
            .count()
    }
}

impl Observer for RecordingSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(event.clone());
    }
}

/// Fans events out to several sinks (e.g. stderr progress + JSONL trace).
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a dyn Observer>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        MultiSink { sinks: Vec::new() }
    }

    /// Adds a sink; disabled sinks are skipped up front.
    pub fn push(&mut self, sink: &'a dyn Observer) {
        if sink.enabled() {
            self.sinks.push(sink);
        }
    }
}

impl Observer for MultiSink<'_> {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        NullSink.emit(&Event::Message { text: "x".into() }); // no-op
    }

    #[test]
    fn recording_sink_counts_kinds() {
        let rec = RecordingSink::new();
        rec.emit(&Event::Message { text: "a".into() });
        rec.emit(&Event::Message { text: "b".into() });
        assert_eq!(rec.count("Message"), 2);
        assert_eq!(rec.count("GpFit"), 0);
        assert_eq!(rec.events().len(), 2);
    }

    #[test]
    fn multi_sink_skips_disabled_and_fans_out() {
        let rec = RecordingSink::new();
        let mut multi = MultiSink::new();
        assert!(!multi.enabled());
        multi.push(&NULL_SINK);
        assert!(!multi.enabled());
        multi.push(&rec);
        assert!(multi.enabled());
        multi.emit(&Event::Message { text: "hi".into() });
        multi.flush();
        assert_eq!(rec.count("Message"), 1);
    }

    #[test]
    fn jsonl_sink_writes_buffered_lines_and_flushes() {
        let path = std::env::temp_dir().join(format!("obs_jsonl_ok_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Event::Message { text: "one".into() });
        sink.emit(&Event::Message { text: "two".into() });
        sink.try_flush().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.lines().all(|l| l.starts_with("{\"Message\":")));
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_create_fails_on_bad_path() {
        assert!(JsonlSink::create("/nonexistent-dir-for-obs-test/x.jsonl").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn jsonl_sink_surfaces_write_errors() {
        // /dev/full accepts opens but fails every write with ENOSPC,
        // which is exactly the "disk filled up mid-run" failure mode.
        if !Path::new("/dev/full").exists() {
            return;
        }
        let sink = JsonlSink::create("/dev/full").unwrap();
        sink.emit(&Event::Message {
            text: "lost".into(),
        });
        let err = sink.try_flush().expect_err("write to /dev/full must fail");
        // ENOSPC; the exact ErrorKind name differs across std versions.
        assert!(err.to_string().to_lowercase().contains("no space"), "{err}");
    }

    #[test]
    fn stderr_sink_renders_every_variant() {
        // Rendering must not panic for any variant.
        let events = [
            Event::RunStart {
                candidates: 1,
                objectives: 2,
                dim: 3,
                initial_samples: 4,
                max_iterations: 5,
                seed: 6,
            },
            Event::GpFit {
                iteration: 0,
                objective: 0,
                refit: true,
                lengthscales: vec![0.1],
                signal_var: 1.0,
                noise_target: 0.01,
                lambda: 0.5,
                restarts: 2,
                evals: 120,
                cached_evals: 120,
                fresh_evals: 1,
                log_marginal: -3.4,
                jitter: 0.0,
                duration_s: 0.01,
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "iteration".into(),
            },
            Event::SpanEnd {
                id: 2,
                name: "iteration".into(),
                duration_s: 0.5,
            },
            Event::ResourceSample {
                iteration: 0,
                chol_flops: 1,
                chol_panels: 1,
                tri_solve_rhs: 1,
                fitcache_hits: 1,
                fitcache_misses: 1,
                kernel_assemblies: 1,
                predict_cache_hits: 1,
                predict_cache_misses: 1,
                predict_cache_evictions: 1,
                predict_chunks: 1,
            },
            Event::Message { text: "m".into() },
        ];
        for e in &events {
            assert!(!StderrSink::render(e).is_empty());
        }
    }
}

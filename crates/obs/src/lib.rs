//! Lightweight observability for the PPATuner reproduction.
//!
//! The workspace deliberately keeps dependencies minimal (the registry is
//! often offline), so this crate implements its own small telemetry stack
//! instead of pulling in the `tracing` ecosystem. Three layers:
//!
//! 1. **Metrics** ([`Registry`], [`Span`]): thread-safe counters, gauges,
//!    and fixed-bucket histograms with p50/p90/p99 estimates, plus RAII
//!    span timers that record wall-clock durations into histograms.
//! 2. **Events** ([`Event`]): a typed model of what the tuner does —
//!    GP fits (kernel hyperparameters, transfer correlation `λ`, Cholesky
//!    jitter retries), tool evaluations, δ-dominance classification counts,
//!    candidate selection, and per-iteration summaries with incremental
//!    hypervolume.
//! 3. **Sinks** ([`Observer`] implementations): a JSONL file sink for
//!    machine-readable traces, a human-readable stderr sink with verbosity
//!    levels, an in-memory recording sink for tests, and a null sink whose
//!    `enabled() == false` lets instrumented code skip event construction
//!    entirely (zero overhead by default).
//! 4. **Causal spans** ([`Tracer`], [`OpenSpan`], [`Clock`]): sequential
//!    span IDs forming a run → iteration → phase tree, emitted as
//!    [`Event::SpanStart`] / [`Event::SpanEnd`] pairs with a monotonic
//!    clock abstraction so golden traces stay deterministic.
//!
//! ```no_run
//! use obs::{Event, JsonlSink, Observer};
//!
//! let sink = JsonlSink::create("trace.jsonl").unwrap();
//! sink.emit(&Event::RunStart { candidates: 100, objectives: 2, dim: 4,
//!                              initial_samples: 10, max_iterations: 40, seed: 7 });
//! sink.flush();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;
mod tracer;

pub use event::Event;
pub use metrics::{Histogram, HistogramSummary, Registry, RegistrySnapshot, Span};
pub use sink::{
    JsonlSink, MultiSink, NullSink, Observer, RecordingSink, StderrSink, Verbosity, NULL_SINK,
};
pub use tracer::{Clock, OpenSpan, TickClock, Tracer, WallClock};

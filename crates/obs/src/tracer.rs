//! Causal span tracing: sequential span IDs, a monotonic clock
//! abstraction, and helpers that build [`Event::SpanStart`] /
//! [`Event::SpanEnd`] pairs.
//!
//! The tracer deliberately separates *ID allocation* from *event
//! emission*: IDs are allocated unconditionally along the run structure
//! (a relaxed atomic increment, cheap enough for disabled observers),
//! while events are only constructed when an observer wants them. That
//! split is what keeps checkpoint/resume traces seamless — a resumed run
//! re-allocates the same IDs while replaying its log silently, so the
//! live portion's span IDs continue exactly where the interrupted trace
//! stopped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::Event;

/// A monotonic time source for span durations.
///
/// Golden traces stay deterministic because span *structure* (IDs,
/// parents, names, ordering) never depends on the clock — only the
/// volatile `duration_s` payload does, and trace canonicalization zeroes
/// it. Tests that want reproducible durations too can inject a
/// [`TickClock`].
pub trait Clock: Send + Sync {
    /// Monotonic seconds since an arbitrary fixed origin.
    fn now_s(&self) -> f64;
}

/// The real monotonic clock ([`Instant`]-based).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A deterministic clock that advances by a fixed step on every reading.
/// Useful in tests that assert on span durations.
#[derive(Debug)]
pub struct TickClock {
    step_s: f64,
    ticks: AtomicU64,
}

impl TickClock {
    /// A clock advancing `step_s` seconds per [`Clock::now_s`] call.
    pub fn new(step_s: f64) -> Self {
        TickClock {
            step_s,
            ticks: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_s(&self) -> f64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) as f64 * self.step_s
    }
}

/// An allocated, not-yet-closed span.
#[derive(Debug, Clone)]
pub struct OpenSpan {
    /// Unique sequential ID within the owning [`Tracer`] (1-based).
    pub id: u64,
    /// Parent span ID, `None` for the root.
    pub parent: Option<u64>,
    /// Span name as it appears in both events.
    pub name: &'static str,
    start_s: f64,
}

impl OpenSpan {
    /// The [`Event::SpanStart`] announcing this span.
    pub fn start_event(&self) -> Event {
        Event::SpanStart {
            id: self.id,
            parent: self.parent,
            name: self.name.to_owned(),
        }
    }
}

/// Allocates span IDs and timestamps span lifetimes.
///
/// IDs start at 1 and increase by exactly 1 per [`Tracer::open`] call, so
/// a deterministic run produces a deterministic span tree.
pub struct Tracer {
    next: AtomicU64,
    clock: Box<dyn Clock>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer on the real monotonic clock.
    pub fn new() -> Self {
        Tracer::with_clock(Box::new(WallClock::default()))
    }

    /// A tracer on an injected clock (e.g. [`TickClock`] in tests).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Tracer {
            next: AtomicU64::new(1),
            clock,
        }
    }

    /// Allocates the next span under `parent` and stamps its start time.
    /// Allocation alone emits nothing — pair with
    /// [`OpenSpan::start_event`] / [`Tracer::end_event`] when an observer
    /// is enabled.
    pub fn open(&self, name: &'static str, parent: Option<&OpenSpan>) -> OpenSpan {
        OpenSpan {
            id: self.next.fetch_add(1, Ordering::Relaxed),
            parent: parent.map(|p| p.id),
            name,
            start_s: self.clock.now_s(),
        }
    }

    /// The [`Event::SpanEnd`] closing `span`, with its measured duration.
    pub fn end_event(&self, span: &OpenSpan) -> Event {
        Event::SpanEnd {
            id: span.id,
            name: span.name.to_owned(),
            duration_s: (self.clock.now_s() - span.start_s).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_from_one() {
        let t = Tracer::new();
        let run = t.open("run", None);
        let iter = t.open("iteration", Some(&run));
        let fit = t.open("gp_fit", Some(&iter));
        assert_eq!((run.id, iter.id, fit.id), (1, 2, 3));
        assert_eq!(run.parent, None);
        assert_eq!(iter.parent, Some(1));
        assert_eq!(fit.parent, Some(2));
    }

    #[test]
    fn events_carry_matching_ids_and_names() {
        let t = Tracer::new();
        let run = t.open("run", None);
        assert_eq!(
            run.start_event(),
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into()
            }
        );
        match t.end_event(&run) {
            Event::SpanEnd {
                id,
                name,
                duration_s,
            } => {
                assert_eq!(id, 1);
                assert_eq!(name, "run");
                assert!(duration_s >= 0.0);
            }
            other => panic!("expected SpanEnd, got {other:?}"),
        }
    }

    #[test]
    fn tick_clock_makes_durations_deterministic() {
        let t = Tracer::with_clock(Box::new(TickClock::new(0.5)));
        let a = t.open("run", None); // reads tick 0 -> 0.0
        let b = t.open("iteration", Some(&a)); // reads tick 1 -> 0.5
        match t.end_event(&b) {
            // End reads tick 2 -> 1.0; duration = 1.0 - 0.5.
            Event::SpanEnd { duration_s, .. } => assert!((duration_s - 0.5).abs() < 1e-12),
            other => panic!("expected SpanEnd, got {other:?}"),
        }
        match t.end_event(&a) {
            // End reads tick 3 -> 1.5; duration = 1.5 - 0.0.
            Event::SpanEnd { duration_s, .. } => assert!((duration_s - 1.5).abs() < 1e-12),
            other => panic!("expected SpanEnd, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::default();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a);
    }
}

//! Typed trace events emitted by the tuner and its collaborators.

use serde::{Deserialize, Serialize};

/// One structured trace event.
///
/// Events serialize to externally-tagged JSON (`{"GpFit": {...}}`), one
/// object per line in a JSONL trace. Every payload is self-describing so a
/// trace can be analyzed without the emitting binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A tuning run began.
    RunStart {
        /// Number of candidate configurations in the search space.
        candidates: usize,
        /// Number of PPA objectives being minimized.
        objectives: usize,
        /// Dimensionality of the configuration space.
        dim: usize,
        /// Size of the maximin initial design.
        initial_samples: usize,
        /// Iteration budget of the refinement loop.
        max_iterations: usize,
        /// RNG seed (reproduces the run exactly).
        seed: u64,
    },

    /// A transfer-GP surrogate was (re)fitted for one objective.
    GpFit {
        /// Refinement iteration (0 = the fit right after the initial design).
        iteration: usize,
        /// Objective index this surrogate models.
        objective: usize,
        /// Whether hyperparameters were re-optimized (`true`) or the model
        /// was warm-refitted with cached hyperparameters (`false`).
        refit: bool,
        /// Fitted ARD lengthscales of the SE kernel.
        lengthscales: Vec<f64>,
        /// Fitted signal variance.
        signal_var: f64,
        /// Observation noise on the target task.
        noise_target: f64,
        /// Transfer correlation factor `λ = 2(1/(1+a))^b − 1`; 0 when no
        /// source data is available.
        lambda: f64,
        /// Multi-start restarts consumed by the hyperparameter search.
        restarts: usize,
        /// Objective evaluations consumed across all restarts.
        evals: usize,
        /// Objective evaluations served from the precomputed distance
        /// cache (no data clone, no raw-point kernel rebuild).
        #[serde(default)]
        cached_evals: usize,
        /// Full model constructions from raw data (the final build after
        /// the search, or 0 for warm incremental refreshes).
        #[serde(default)]
        fresh_evals: usize,
        /// Final log marginal likelihood of the fitted model.
        log_marginal: f64,
        /// Jitter added to the kernel diagonal before Cholesky succeeded
        /// (0 when the factorization succeeded unmodified).
        jitter: f64,
        /// Wall-clock seconds spent fitting.
        duration_s: f64,
    },

    /// The (simulated) physical-design tool evaluated one configuration.
    ToolEval {
        /// Refinement iteration (0 covers the initial design).
        iteration: usize,
        /// Candidate index that was evaluated.
        candidate: usize,
        /// Measured QoR vector (one value per objective).
        qor: Vec<f64>,
        /// Wall-clock seconds spent in the evaluation.
        duration_s: f64,
    },

    /// One stage of the physical-design flow finished (placement, CTS,
    /// routing, STA, ...). Emitted by flow drivers that time stages.
    Stage {
        /// Candidate index the flow is running for.
        candidate: usize,
        /// Stage name (`"synth"`, `"place"`, `"cts"`, `"route"`, `"sta"`).
        stage: String,
        /// Wall-clock seconds spent in the stage.
        duration_s: f64,
    },

    /// Per-candidate uncertainty-region state right after a classification
    /// pass. The payload is O(candidates), so the tuner emits it only
    /// towards enabled observers; it is what lets offline invariant
    /// checkers (see `testkit`) verify the region laws of Eqs. 10–13
    /// (regions never grow, drops never resurrect, selection is
    /// max-diameter) without re-running the tuner.
    RegionSnapshot {
        /// Refinement iteration.
        iteration: usize,
        /// One character per candidate: `u` undecided, `p` Pareto,
        /// `d` dropped.
        statuses: String,
        /// Euclidean diameter of every candidate's uncertainty region
        /// (0 once evaluated, infinite while unbounded).
        diameters: Vec<f64>,
    },

    /// δ-dominance classification of the candidate set completed.
    Classify {
        /// Refinement iteration.
        iteration: usize,
        /// Candidates currently classified as Pareto-optimal.
        pareto: usize,
        /// Candidates δ-dominated (dropped from further consideration).
        dropped: usize,
        /// Candidates still undecided (uncertainty regions overlap).
        undecided: usize,
        /// Absolute per-objective δ thresholds used this iteration.
        delta: Vec<f64>,
    },

    /// Candidates were selected for evaluation this iteration.
    Select {
        /// Refinement iteration.
        iteration: usize,
        /// Chosen candidate indices, in selection order.
        chosen: Vec<usize>,
        /// Uncertainty-region diameter of each chosen candidate at
        /// selection time (the selection criterion).
        diameters: Vec<f64>,
    },

    /// A diverse top-q batch was selected for concurrent evaluation
    /// (emitted instead of [`Event::Select`] when the configured batch
    /// size exceeds 1; single-candidate waves keep the classic event so
    /// q = 1 traces are byte-identical to historical ones).
    BatchSelect {
        /// Refinement iteration.
        iteration: usize,
        /// The wave's budget: accepted evaluations the iteration still
        /// wants when this batch was formed (the batch never exceeds it).
        q: usize,
        /// Chosen candidate indices, in greedy pick order.
        chosen: Vec<usize>,
        /// Uncertainty-region diameter of each pick at selection time.
        diameters: Vec<f64>,
        /// Diversity-penalized greedy score `diam·(1 − γ·red)` of each
        /// pick. Non-increasing along the batch; the first pick is
        /// unpenalized, so `scores[0] == diameters[0]`.
        scores: Vec<f64>,
    },

    /// One tool evaluation attempt failed (crash, timeout, or rejected
    /// QoR). The attempt still counts as a tool run; `ToolEval` is
    /// reserved for accepted observations, so in a trace every oracle
    /// call appears as exactly one `ToolEval` or one `EvalFailed`.
    EvalFailed {
        /// Refinement iteration (0 covers the initial design).
        iteration: usize,
        /// Candidate index whose evaluation failed.
        candidate: usize,
        /// Attempt number for this candidate, 1-based.
        attempt: usize,
        /// Failure class (`"crash"`, `"timeout"`, `"invalid_qor"`,
        /// `"out_of_range"`).
        kind: String,
        /// Human-readable failure detail.
        detail: String,
    },

    /// A failed evaluation is being retried after a deterministic backoff.
    EvalRetry {
        /// Refinement iteration.
        iteration: usize,
        /// Candidate index being retried.
        candidate: usize,
        /// The upcoming attempt number, 1-based.
        attempt: usize,
        /// Scheduled backoff before this attempt, in seconds (capped
        /// exponential; advisory — table-backed oracles do not sleep).
        backoff_s: f64,
    },

    /// A candidate exhausted its evaluation failure budget and was
    /// removed from further selection (terminal).
    CandidateQuarantined {
        /// Refinement iteration.
        iteration: usize,
        /// The quarantined candidate.
        candidate: usize,
        /// Total attempts spent before giving up.
        attempts: usize,
    },

    /// The tuner persisted a resumable checkpoint of the full loop state.
    Checkpoint {
        /// Iteration the checkpoint covers (resume continues after it).
        iteration: usize,
        /// Tool runs recorded in the checkpoint's evaluation log.
        runs: usize,
        /// Evaluation-outcome records (successes and failures) logged.
        evals_logged: usize,
    },

    /// One refinement iteration finished.
    IterationEnd {
        /// Refinement iteration.
        iteration: usize,
        /// Cumulative tool evaluations so far.
        runs: usize,
        /// Pareto / dropped / undecided counts after this iteration.
        pareto: usize,
        /// Candidates δ-dominated so far.
        dropped: usize,
        /// Candidates still undecided.
        undecided: usize,
        /// Hypervolume of the evaluated set's current Pareto front, measured
        /// against the observed nadir (monotone as the front improves).
        hypervolume: f64,
        /// Wall-clock seconds for the whole iteration.
        duration_s: f64,
        /// Wall-clock seconds of that spent fitting GPs.
        gp_fit_s: f64,
        /// Wall-clock seconds of that spent predicting uncertainty boxes.
        #[serde(default)]
        predict_s: f64,
    },

    /// The tuning run finished (after the verification pass).
    RunEnd {
        /// Iterations actually executed.
        iterations: usize,
        /// Tool evaluations consumed by the refinement loop.
        runs: usize,
        /// Extra evaluations spent verifying the predicted front.
        verification_runs: usize,
        /// Size of the reported Pareto set.
        pareto: usize,
        /// Total wall-clock seconds.
        duration_s: f64,
    },

    /// A causal span opened. Spans form a tree (`run` → `iteration` →
    /// `gp_fit` / `classify` / `select` / `batch_eval` / `eval_attempt` /
    /// `checkpoint`; at batch sizes above 1 the `eval_attempt` spans of a
    /// wave nest under a `batch_eval` span) whose IDs are sequential per
    /// run, so a trace's span structure is deterministic even though
    /// durations are wall-clock.
    SpanStart {
        /// Span ID, unique and strictly increasing within a run (1-based;
        /// the run span is always ID 1).
        id: u64,
        /// Parent span ID; `None` only for the root `run` span.
        parent: Option<u64>,
        /// Span name (`"run"`, `"iteration"`, `"gp_fit"`, `"classify"`,
        /// `"select"`, `"batch_eval"`, `"eval_attempt"`, `"checkpoint"`).
        name: String,
    },

    /// A causal span closed. Carries the name again so slow-span reports
    /// need no join against the matching [`Event::SpanStart`].
    SpanEnd {
        /// Span ID matching the earlier `SpanStart`.
        id: u64,
        /// Span name, identical to the `SpanStart` name.
        name: String,
        /// Wall-clock seconds between start and end (volatile; zeroed in
        /// golden traces).
        duration_s: f64,
    },

    /// Per-iteration deltas of the hot-path resource counters maintained
    /// by `linalg` and `gp`. Counters are process-global, so the deltas
    /// are exact for a single-run process and approximate when several
    /// runs share the process (volatile in golden traces).
    ResourceSample {
        /// Refinement iteration the deltas cover.
        iteration: usize,
        /// Cholesky floating-point operations (≈ n³/3 per factorization).
        chol_flops: u64,
        /// Blocked-Cholesky panel factorizations.
        chol_panels: u64,
        /// Right-hand sides pushed through triangular solves.
        tri_solve_rhs: u64,
        /// Hyperparameter-search objective evaluations served from the
        /// FitCache's precomputed distance cache.
        fitcache_hits: u64,
        /// Full model constructions from raw data (cache misses).
        fitcache_misses: u64,
        /// Dense joint-kernel matrix assemblies.
        kernel_assemblies: u64,
        /// Candidate predictions served from a PredictCache entry
        /// (tail-extended solve instead of a from-scratch column).
        /// Absent in pre-cache traces, which parse as zero.
        #[serde(default)]
        predict_cache_hits: u64,
        /// From-scratch candidate predictions during cached sweeps.
        #[serde(default)]
        predict_cache_misses: u64,
        /// PredictCache entries dropped (stale epoch after a refit, or
        /// candidate classified/pruned since its last sweep).
        #[serde(default)]
        predict_cache_evictions: u64,
        /// Chunks dispatched by the data-parallel predict sweep.
        #[serde(default)]
        predict_chunks: u64,
    },

    /// The adaptive candidate pool refined itself: cells whose ε-PAL
    /// uncertainty-region diameter exceeded their Lipschitz-style bound
    /// were bisected, each split appending one new representative
    /// candidate. Emitted once per iteration that performs at least one
    /// split (fixed-pool runs emit none, keeping their traces
    /// byte-identical to historical ones). Invariant checkers use it to
    /// track the lawful growth of per-candidate event payloads.
    PoolRefine {
        /// Refinement iteration the splits happened in.
        iteration: usize,
        /// Leaf cells bisected this iteration (= candidates appended).
        splits: usize,
        /// Leaf count of the cell tree after the splits.
        leaves: usize,
        /// Total candidates in the pool after the splits.
        pool_size: usize,
        /// Effective resolution of the tree: the size of the uniform
        /// grid whose cells match the smallest leaf's volume
        /// (`1 / min leaf volume` in the unit-box metric).
        effective_pool: f64,
    },

    /// Which posterior path served this iteration's uncertainty-box
    /// predictions: the exact Cholesky posterior or the subset-of-data
    /// approximation. Emitted only when a subset-of-data threshold is
    /// configured, so legacy traces are unchanged.
    PredictMode {
        /// Refinement iteration the predictions belong to.
        iteration: usize,
        /// Joint (source + target) training-set size behind the
        /// surrogates at predict time.
        train_size: usize,
        /// Anchor count of the subset-of-data predictor (0 on the exact
        /// path).
        subset_size: usize,
        /// Query points predicted this iteration.
        queries: usize,
        /// `"exact"` or `"subset"`.
        mode: String,
    },

    /// A surrogate calibration failed numerically and the run supervisor
    /// fell back to the last-good model instead of aborting. Emitted only
    /// when a fallback actually happens, so fault-free traces are
    /// byte-identical to historical ones (a degraded objective emits this
    /// *instead of* its [`Event::GpFit`]).
    DegradedFit {
        /// Refinement iteration the calibration belonged to.
        iteration: usize,
        /// Objective whose surrogate degraded.
        objective: usize,
        /// The numerical failure that triggered the fallback (jitter
        /// ladder exhausted, NaN in the hyper-parameter search, ...).
        cause: String,
        /// Recovery mode: `"refit-reused-hypers"` (data-only refit with
        /// the last-good hyper-parameters) or `"frozen"` (the previous
        /// model serves one more iteration unchanged).
        mode: String,
        /// Consecutive degraded iterations including this one (resets on
        /// a fully clean calibration; the configured budget turns
        /// persistence into a typed error).
        consecutive: usize,
    },

    /// Checkpoint recovery scanned back past torn/corrupt entries of a
    /// rotating checkpoint chain to the newest valid one. Emitted only
    /// when at least one entry had to be skipped — a clean resume leaves
    /// its trace unchanged.
    RecoveryScan {
        /// Chain entries examined, newest first.
        scanned: usize,
        /// Entries skipped as torn, unparseable, or digest-mismatched.
        skipped: usize,
        /// `next_iteration` of the checkpoint recovery landed on (`None`
        /// when every entry was skipped and resume started fresh).
        next_iteration: Option<usize>,
    },

    /// The wave watchdog converted a hung evaluation into a deterministic
    /// timeout feeding the ordinary retry/quarantine machinery. Always
    /// followed by the matching [`Event::EvalFailed`] of kind
    /// `"timeout"` for the same attempt.
    WatchdogFired {
        /// Refinement iteration (0 covers the initial design).
        iteration: usize,
        /// Candidate whose evaluation hung.
        candidate: usize,
        /// Attempt number for this candidate, 1-based.
        attempt: usize,
        /// The enforced per-attempt deadline in seconds (the configured
        /// value, not measured wall-clock, so traces stay deterministic).
        deadline_s: f64,
    },

    /// A free-form diagnostic message.
    Message {
        /// Human-readable text.
        text: String,
    },
}

impl Event {
    /// The variant name, as it appears as the JSON tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "RunStart",
            Event::GpFit { .. } => "GpFit",
            Event::ToolEval { .. } => "ToolEval",
            Event::Stage { .. } => "Stage",
            Event::RegionSnapshot { .. } => "RegionSnapshot",
            Event::Classify { .. } => "Classify",
            Event::Select { .. } => "Select",
            Event::BatchSelect { .. } => "BatchSelect",
            Event::EvalFailed { .. } => "EvalFailed",
            Event::EvalRetry { .. } => "EvalRetry",
            Event::CandidateQuarantined { .. } => "CandidateQuarantined",
            Event::Checkpoint { .. } => "Checkpoint",
            Event::IterationEnd { .. } => "IterationEnd",
            Event::RunEnd { .. } => "RunEnd",
            Event::SpanStart { .. } => "SpanStart",
            Event::SpanEnd { .. } => "SpanEnd",
            Event::ResourceSample { .. } => "ResourceSample",
            Event::PoolRefine { .. } => "PoolRefine",
            Event::PredictMode { .. } => "PredictMode",
            Event::DegradedFit { .. } => "DegradedFit",
            Event::RecoveryScan { .. } => "RecoveryScan",
            Event::WatchdogFired { .. } => "WatchdogFired",
            Event::Message { .. } => "Message",
        }
    }

    /// The iteration this event belongs to, when it has one.
    pub fn iteration(&self) -> Option<usize> {
        match self {
            Event::GpFit { iteration, .. }
            | Event::ToolEval { iteration, .. }
            | Event::RegionSnapshot { iteration, .. }
            | Event::Classify { iteration, .. }
            | Event::Select { iteration, .. }
            | Event::BatchSelect { iteration, .. }
            | Event::EvalFailed { iteration, .. }
            | Event::EvalRetry { iteration, .. }
            | Event::CandidateQuarantined { iteration, .. }
            | Event::Checkpoint { iteration, .. }
            | Event::IterationEnd { iteration, .. }
            | Event::ResourceSample { iteration, .. }
            | Event::PoolRefine { iteration, .. }
            | Event::PredictMode { iteration, .. }
            | Event::DegradedFit { iteration, .. }
            | Event::WatchdogFired { iteration, .. } => Some(*iteration),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_json_tag() {
        let e = Event::Classify {
            iteration: 3,
            pareto: 5,
            dropped: 10,
            undecided: 2,
            delta: vec![0.01, 0.02],
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.starts_with("{\"Classify\":"), "{json}");
        assert_eq!(e.kind(), "Classify");
        assert_eq!(e.iteration(), Some(3));
    }

    #[test]
    fn failure_events_round_trip_and_carry_iterations() {
        let events = [
            Event::EvalFailed {
                iteration: 2,
                candidate: 7,
                attempt: 1,
                kind: "crash".into(),
                detail: "injected".into(),
            },
            Event::EvalRetry {
                iteration: 2,
                candidate: 7,
                attempt: 2,
                backoff_s: 2.0,
            },
            Event::CandidateQuarantined {
                iteration: 2,
                candidate: 7,
                attempts: 3,
            },
            Event::Checkpoint {
                iteration: 2,
                runs: 14,
                evals_logged: 14,
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            assert!(json.starts_with(&format!("{{\"{}\":", e.kind())), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e);
            assert_eq!(e.iteration(), Some(2));
        }
    }

    #[test]
    fn span_and_resource_events_round_trip() {
        let events = [
            Event::SpanStart {
                id: 1,
                parent: None,
                name: "run".into(),
            },
            Event::SpanStart {
                id: 2,
                parent: Some(1),
                name: "iteration".into(),
            },
            Event::SpanEnd {
                id: 2,
                name: "iteration".into(),
                duration_s: 0.125,
            },
            Event::ResourceSample {
                iteration: 4,
                chol_flops: 1_000,
                chol_panels: 3,
                tri_solve_rhs: 17,
                fitcache_hits: 120,
                fitcache_misses: 2,
                kernel_assemblies: 5,
                predict_cache_hits: 40,
                predict_cache_misses: 8,
                predict_cache_evictions: 3,
                predict_chunks: 12,
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            assert!(json.starts_with(&format!("{{\"{}\":", e.kind())), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e);
        }
        assert_eq!(events[0].iteration(), None);
        assert_eq!(events[3].iteration(), Some(4));
        // The root span's `parent: null` must survive the round trip.
        let root = serde_json::to_string(&events[0]).unwrap();
        assert!(root.contains("\"parent\":null"), "{root}");
    }

    #[test]
    fn pre_cache_resource_samples_parse_with_zero_predict_counters() {
        // Traces written before the predict cache existed lack the four
        // predict counters; `#[serde(default)]` must zero-fill them so
        // old traces keep replaying.
        let old = concat!(
            r#"{"ResourceSample":{"iteration":9,"chol_flops":10,"#,
            r#""chol_panels":1,"tri_solve_rhs":2,"fitcache_hits":3,"#,
            r#""fitcache_misses":4,"kernel_assemblies":5}}"#,
        );
        let back: Event = serde_json::from_str(old).unwrap();
        assert_eq!(
            back,
            Event::ResourceSample {
                iteration: 9,
                chol_flops: 10,
                chol_panels: 1,
                tri_solve_rhs: 2,
                fitcache_hits: 3,
                fitcache_misses: 4,
                kernel_assemblies: 5,
                predict_cache_hits: 0,
                predict_cache_misses: 0,
                predict_cache_evictions: 0,
                predict_chunks: 0,
            }
        );
    }

    #[test]
    fn pool_events_round_trip_and_carry_iterations() {
        let events = [
            Event::PoolRefine {
                iteration: 5,
                splits: 3,
                leaves: 67,
                pool_size: 131,
                effective_pool: 16384.0,
            },
            Event::PredictMode {
                iteration: 5,
                train_size: 412,
                subset_size: 256,
                queries: 97,
                mode: "subset".into(),
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            assert!(json.starts_with(&format!("{{\"{}\":", e.kind())), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e);
            assert_eq!(e.iteration(), Some(5));
        }
    }

    #[test]
    fn resilience_events_round_trip_and_carry_iterations() {
        let events = [
            Event::DegradedFit {
                iteration: 5,
                objective: 1,
                cause: "factorization failed: matrix is not positive definite".into(),
                mode: "refit-reused-hypers".into(),
                consecutive: 2,
            },
            Event::WatchdogFired {
                iteration: 5,
                candidate: 42,
                attempt: 1,
                deadline_s: 0.25,
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            assert!(json.starts_with(&format!("{{\"{}\":", e.kind())), "{json}");
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e);
            assert_eq!(e.iteration(), Some(5));
        }

        // RecoveryScan happens before any iteration exists, so it carries
        // the recovered checkpoint's position instead of an iteration tag.
        let scan = Event::RecoveryScan {
            scanned: 3,
            skipped: 2,
            next_iteration: Some(7),
        };
        assert_eq!(scan.kind(), "RecoveryScan");
        assert_eq!(scan.iteration(), None);
        let json = serde_json::to_string(&scan).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scan);
    }

    #[test]
    fn round_trips_through_json() {
        let e = Event::Select {
            iteration: 1,
            chosen: vec![4, 9],
            diameters: vec![0.5, 0.25],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn batch_select_round_trips_and_carries_iteration() {
        let e = Event::BatchSelect {
            iteration: 7,
            q: 4,
            chosen: vec![12, 3, 40],
            diameters: vec![0.9, 0.4, 0.6],
            scores: vec![0.9, 0.35, 0.3],
        };
        assert_eq!(e.kind(), "BatchSelect");
        assert_eq!(e.iteration(), Some(7));
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"BatchSelect\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}

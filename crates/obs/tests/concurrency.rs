//! The registry is shared across worker threads in a tuning service, so
//! counters, gauges, and histograms must stay consistent under contention.

use std::sync::Arc;
use std::thread;

use obs::Registry;

const THREADS: usize = 8;
const OPS: usize = 2_000;

#[test]
fn counters_sum_exactly_across_threads() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&registry);
            thread::spawn(move || {
                for _ in 0..OPS {
                    r.counter_add("tool.runs", 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(registry.counter("tool.runs"), (THREADS * OPS) as u64);
}

#[test]
fn gauges_keep_a_value_some_thread_wrote() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            thread::spawn(move || {
                for i in 0..OPS {
                    r.gauge_set("undecided", (t * OPS + i) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let v = registry.gauge("undecided");
    // Last-writer-wins: the surviving value must be one that was written.
    assert!(v.fract() == 0.0 && (0.0..(THREADS * OPS) as f64).contains(&v));
}

#[test]
fn histograms_count_every_concurrent_observation() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            thread::spawn(move || {
                for i in 1..=OPS {
                    r.observe("fit.seconds", (t + 1) as f64 * i as f64 * 1e-6);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let s = registry.snapshot().histograms["fit.seconds"].clone();
    assert_eq!(s.count, (THREADS * OPS) as u64);
    assert!(s.min >= 1e-6 && s.max <= THREADS as f64 * OPS as f64 * 1e-6);
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
}

//! Every [`Event`] variant must survive the JSONL sink: what `trace_report`
//! parses back has to equal what the tuner emitted.

use obs::{Event, JsonlSink, Observer};

fn one_of_each() -> Vec<Event> {
    vec![
        Event::RunStart {
            candidates: 727,
            objectives: 2,
            dim: 9,
            initial_samples: 36,
            max_iterations: 60,
            seed: 17,
        },
        Event::GpFit {
            iteration: 3,
            objective: 1,
            refit: true,
            lengthscales: vec![0.4, 1.5, 0.9],
            signal_var: 1.25,
            noise_target: 1e-4,
            lambda: 0.83,
            restarts: 3,
            evals: 412,
            cached_evals: 412,
            fresh_evals: 1,
            log_marginal: -58.31,
            jitter: 1e-8,
            duration_s: 0.072,
        },
        Event::ToolEval {
            iteration: 3,
            candidate: 215,
            qor: vec![1.82, 0.47],
            duration_s: 0.0031,
        },
        Event::Stage {
            candidate: 215,
            stage: "route".to_string(),
            duration_s: 0.0009,
        },
        Event::Classify {
            iteration: 3,
            pareto: 4,
            dropped: 690,
            undecided: 33,
            delta: vec![0.012, 0.02],
        },
        Event::Select {
            iteration: 3,
            chosen: vec![215, 12],
            diameters: vec![0.31, 0.22],
        },
        Event::IterationEnd {
            iteration: 3,
            runs: 41,
            pareto: 4,
            dropped: 690,
            undecided: 33,
            hypervolume: 1.8116,
            duration_s: 0.151,
            gp_fit_s: 0.144,
            predict_s: 0.004,
        },
        Event::RunEnd {
            iterations: 19,
            runs: 54,
            verification_runs: 1,
            pareto: 5,
            duration_s: 2.85,
        },
        Event::Message {
            text: "wrote table2.txt".to_string(),
        },
    ]
}

#[test]
fn every_variant_round_trips_through_json() {
    for event in one_of_each() {
        let line = serde_json::to_string(&event).expect("serialize");
        let back: Event = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, event, "variant {} changed in transit", event.kind());
    }
}

#[test]
fn jsonl_sink_writes_one_parseable_line_per_event() {
    let path = std::env::temp_dir().join(format!("obs-roundtrip-{}.jsonl", std::process::id()));
    let events = one_of_each();
    {
        let sink = JsonlSink::create(&path).expect("create sink");
        for e in &events {
            sink.emit(e);
        }
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();
    let parsed: Vec<Event> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("parseable line"))
        .collect();
    assert_eq!(parsed, events);
}

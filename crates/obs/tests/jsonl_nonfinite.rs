//! The JSONL sink must survive non-finite metric values: a NaN or ±inf
//! QoR must neither panic the writer nor corrupt the lines around it,
//! and the written trace must parse back line by line.
//!
//! JSON has no non-finite literals, so such values are written as `null`
//! and read back as NaN (the sign/infinity distinction is lost, matching
//! real serde_json). The surrounding finite values must survive exactly.

use obs::{Event, JsonlSink, Observer};

fn scratch_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("obs-nonfinite-{}-{name}.jsonl", std::process::id()))
}

fn qor_event(iteration: usize, qor: Vec<f64>) -> Event {
    Event::ToolEval {
        iteration,
        candidate: iteration,
        qor,
        duration_s: 0.25,
    }
}

#[test]
fn nonfinite_qor_values_round_trip_through_jsonl() {
    let path = scratch_path("roundtrip");
    let written = [
        qor_event(0, vec![1.5, 2.5]),
        qor_event(1, vec![f64::NAN, 3.0]),
        qor_event(2, vec![f64::INFINITY, f64::NEG_INFINITY]),
        qor_event(3, vec![4.0, 5.0]),
    ];
    {
        let sink = JsonlSink::create(&path).expect("create trace file");
        for e in &written {
            sink.emit(e);
        }
        sink.flush();
    }

    let text = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), written.len(), "one line per event: {text:?}");

    let events: Vec<Event> = lines
        .iter()
        .map(|line| serde_json::from_str(line).expect("every line parses as an Event"))
        .collect();

    // Finite events survive exactly (Event derives PartialEq, and these
    // contain no NaN).
    assert_eq!(events[0], written[0]);
    assert_eq!(
        events[3], written[3],
        "line after the non-finite ones is intact"
    );

    // Non-finite values come back as NaN; their finite neighbors in the
    // same vector are untouched. NaN != NaN, so compare field by field.
    match &events[1] {
        Event::ToolEval { iteration, qor, .. } => {
            assert_eq!(*iteration, 1);
            assert!(qor[0].is_nan(), "NaN must read back as NaN: {qor:?}");
            assert_eq!(qor[1], 3.0);
        }
        other => panic!("wrong variant: {other:?}"),
    }
    match &events[2] {
        Event::ToolEval { qor, .. } => {
            assert!(
                qor[0].is_nan() && qor[1].is_nan(),
                "±inf reads back as NaN: {qor:?}"
            );
        }
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn nonfinite_values_do_not_leak_invalid_json() {
    // The raw text must stay valid JSON per line — no bare `NaN`/`inf`
    // tokens, which would poison downstream line-oriented consumers.
    let path = scratch_path("tokens");
    {
        let sink = JsonlSink::create(&path).expect("create trace file");
        sink.emit(&qor_event(
            0,
            vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
        ));
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).expect("trace readable");
    std::fs::remove_file(&path).ok();
    for token in ["NaN", "nan", "inf", "Infinity"] {
        assert!(!text.contains(token), "raw token {token:?} leaked: {text}");
    }
    let value: serde_json::Value = serde_json::from_str(text.trim()).expect("line is valid JSON");
    assert!(
        format!("{value:?}").contains("Null"),
        "non-finite encodes as null"
    );
}

//! Multi-objective (Pareto) utilities for the PPATuner reproduction.
//!
//! Everything in this crate uses the **minimization** convention: a QoR
//! point dominates another when it is no worse in every objective and
//! strictly better in at least one. The crate provides:
//!
//! - [`dominance`]: dominance tests, including the δ-relaxed variants the
//!   tuner's decision rules need (Eqs. 11–12 of the paper);
//! - [`front`]: non-dominated filtering, fast non-dominated sorting and
//!   crowding distance (used by baseline implementations);
//! - [`hypervolume`]: exact hypervolume in 2-D (sweep), 3-D (slicing) and
//!   n-D (WFG-style recursion), plus the hypervolume *error* of Eq. (2);
//! - [`metrics`]: the ADRS indicator of Eq. (3).
//!
//! # Example
//!
//! ```
//! use pareto::{front::pareto_front, hypervolume::hypervolume, metrics::adrs};
//!
//! let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0], vec![3.0, 3.0]];
//! let front_idx = pareto_front(&pts);
//! assert_eq!(front_idx, vec![0, 1, 2]); // (3,3) is dominated by (2,2)
//!
//! let reference = vec![5.0, 5.0];
//! let hv = hypervolume(&pts, &reference).unwrap();
//! assert!(hv > 0.0);
//!
//! let approx = vec![vec![1.0, 4.0], vec![4.0, 1.0]];
//! let golden: Vec<Vec<f64>> = front_idx.iter().map(|&i| pts[i].clone()).collect();
//! let d = adrs(&golden, &approx).unwrap();
//! assert!(d >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dominance;
mod error;
pub mod front;
pub mod hypervolume;
pub mod metrics;

pub use error::ParetoError;

/// Convenience alias for results returned by this crate.
pub type Result<T, E = ParetoError> = std::result::Result<T, E>;

//! Quality indicators for approximated Pareto sets.

use crate::{ParetoError, Result};

/// Average Distance from Reference Set (ADRS), Eq. (3) of the paper.
///
/// For every golden point `a`, find the approximation point `p̂` with the
/// smallest worst-case *relative* coordinate deviation
/// `δ(a, p̂) = max_j |a_j − p̂_j| / |a_j|`, then average over the golden set:
///
/// `ADRS(A, P̂) = (1/|A|) Σ_{a∈A} min_{p̂∈P̂} δ(a, p̂)`.
///
/// Zero means the approximation covers the golden front exactly; the value
/// is unit-free because deviations are normalized by the golden
/// coordinates.
///
/// # Errors
///
/// - [`ParetoError::EmptySet`] when either set is empty;
/// - [`ParetoError::DimensionMismatch`] when point dimensions disagree;
/// - [`ParetoError::NanCoordinate`] when a coordinate is NaN;
/// - [`ParetoError::ZeroReferenceCoordinate`] when a golden coordinate is
///   zero (the relative deviation would divide by zero).
pub fn adrs(golden: &[Vec<f64>], approx: &[Vec<f64>]) -> Result<f64> {
    if golden.is_empty() {
        return Err(ParetoError::EmptySet { what: "golden set" });
    }
    if approx.is_empty() {
        return Err(ParetoError::EmptySet {
            what: "approximation set",
        });
    }
    let d = golden[0].len();
    for (i, p) in golden.iter().chain(approx.iter()).enumerate() {
        if p.len() != d {
            return Err(ParetoError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        if p.iter().any(|x| x.is_nan()) {
            return Err(ParetoError::NanCoordinate { index: i });
        }
    }
    let mut total = 0.0;
    for (i, a) in golden.iter().enumerate() {
        if a.contains(&0.0) {
            return Err(ParetoError::ZeroReferenceCoordinate { index: i });
        }
        let mut best = f64::INFINITY;
        for p in approx {
            let dev = a
                .iter()
                .zip(p)
                .map(|(&aj, &pj)| ((aj - pj) / aj).abs())
                .fold(0.0f64, f64::max);
            best = best.min(dev);
        }
        total += best;
    }
    Ok(total / golden.len() as f64)
}

/// Additive ε-indicator: the smallest ε such that shifting every point of
/// `approx` down by ε (componentwise) makes it weakly dominate every
/// golden point — i.e. `max_{a∈A} min_{p̂∈P̂} max_j (p̂_j − a_j)`.
///
/// Complements ADRS: it is an absolute (not relative) worst-case gap, the
/// standard indicator of ε-dominance-based methods like the tuner's
/// δ-classification.
///
/// # Errors
///
/// Same conditions as [`adrs`] minus the zero-coordinate rule.
pub fn epsilon_indicator(golden: &[Vec<f64>], approx: &[Vec<f64>]) -> Result<f64> {
    if golden.is_empty() {
        return Err(ParetoError::EmptySet { what: "golden set" });
    }
    if approx.is_empty() {
        return Err(ParetoError::EmptySet {
            what: "approximation set",
        });
    }
    let d = golden[0].len();
    for (i, p) in golden.iter().chain(approx.iter()).enumerate() {
        if p.len() != d {
            return Err(ParetoError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        if p.iter().any(|x| x.is_nan()) {
            return Err(ParetoError::NanCoordinate { index: i });
        }
    }
    let mut worst = f64::NEG_INFINITY;
    for a in golden {
        let mut best = f64::INFINITY;
        for p in approx {
            let gap = p
                .iter()
                .zip(a)
                .map(|(&pj, &aj)| pj - aj)
                .fold(f64::NEG_INFINITY, f64::max);
            best = best.min(gap);
        }
        worst = worst.max(best);
    }
    Ok(worst)
}

/// Generational distance: average Euclidean distance from each
/// approximation point to its nearest golden point. A supplementary
/// indicator (not in the paper) useful for diagnosing *where* an
/// approximation is off: high GD with low ADRS means redundant stragglers.
///
/// # Errors
///
/// Same conditions as [`adrs`] minus the zero-coordinate rule.
pub fn generational_distance(golden: &[Vec<f64>], approx: &[Vec<f64>]) -> Result<f64> {
    if golden.is_empty() {
        return Err(ParetoError::EmptySet { what: "golden set" });
    }
    if approx.is_empty() {
        return Err(ParetoError::EmptySet {
            what: "approximation set",
        });
    }
    let d = golden[0].len();
    for (i, p) in golden.iter().chain(approx.iter()).enumerate() {
        if p.len() != d {
            return Err(ParetoError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        if p.iter().any(|x| x.is_nan()) {
            return Err(ParetoError::NanCoordinate { index: i });
        }
    }
    let mut total = 0.0;
    for p in approx {
        let mut best = f64::INFINITY;
        for a in golden {
            let dist: f64 = p
                .iter()
                .zip(a)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            best = best.min(dist);
        }
        total += best;
    }
    Ok(total / approx.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adrs_zero_when_covered() {
        let golden = vec![vec![1.0, 4.0], vec![2.0, 2.0]];
        let approx = golden.clone();
        assert!(adrs(&golden, &approx).unwrap().abs() < 1e-15);
    }

    #[test]
    fn adrs_zero_when_superset() {
        let golden = vec![vec![1.0, 4.0]];
        let approx = vec![vec![9.0, 9.0], vec![1.0, 4.0]];
        assert!(adrs(&golden, &approx).unwrap().abs() < 1e-15);
    }

    #[test]
    fn adrs_matches_hand_computation() {
        // golden (2,2); approx (2.2, 2.0): deviation max(0.1, 0) = 0.1.
        let golden = vec![vec![2.0, 2.0]];
        let approx = vec![vec![2.2, 2.0]];
        let v = adrs(&golden, &approx).unwrap();
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn adrs_takes_min_over_approx() {
        let golden = vec![vec![2.0, 2.0]];
        let approx = vec![vec![4.0, 4.0], vec![2.2, 2.0]];
        let v = adrs(&golden, &approx).unwrap();
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn adrs_averages_over_golden() {
        // Two golden points: one covered (0), one off by 0.2 → mean 0.1.
        let golden = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let approx = vec![vec![1.0, 1.0], vec![2.4, 2.0]];
        let v = adrs(&golden, &approx).unwrap();
        assert!((v - 0.1).abs() < 1e-12);
    }

    #[test]
    fn adrs_rejects_bad_inputs() {
        assert!(adrs(&[], &[vec![1.0]]).is_err());
        assert!(adrs(&[vec![1.0]], &[]).is_err());
        assert!(matches!(
            adrs(&[vec![1.0, 2.0]], &[vec![1.0]]).unwrap_err(),
            ParetoError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            adrs(&[vec![0.0, 1.0]], &[vec![1.0, 1.0]]).unwrap_err(),
            ParetoError::ZeroReferenceCoordinate { .. }
        ));
        assert!(matches!(
            adrs(&[vec![f64::NAN, 1.0]], &[vec![1.0, 1.0]]).unwrap_err(),
            ParetoError::NanCoordinate { .. }
        ));
    }

    #[test]
    fn epsilon_zero_when_covered() {
        let golden = vec![vec![1.0, 4.0], vec![2.0, 2.0]];
        assert!(epsilon_indicator(&golden, &golden).unwrap().abs() < 1e-15);
    }

    #[test]
    fn epsilon_matches_hand_computation() {
        // approx (2.3, 2.1) vs golden (2, 2): ε = max(0.3, 0.1) = 0.3.
        let golden = vec![vec![2.0, 2.0]];
        let approx = vec![vec![2.3, 2.1]];
        assert!((epsilon_indicator(&golden, &approx).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn epsilon_negative_when_approx_dominates() {
        let golden = vec![vec![2.0, 2.0]];
        let approx = vec![vec![1.5, 1.5]];
        assert!((epsilon_indicator(&golden, &approx).unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn epsilon_takes_worst_golden_point() {
        let golden = vec![vec![1.0, 1.0], vec![5.0, 0.5]];
        let approx = vec![vec![1.0, 1.0]];
        // Covering (1,1) exactly but missing (5, 0.5) by 0.5 in objective 1.
        assert!((epsilon_indicator(&golden, &approx).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn epsilon_rejects_empty() {
        assert!(epsilon_indicator(&[], &[vec![1.0]]).is_err());
        assert!(epsilon_indicator(&[vec![1.0]], &[]).is_err());
    }

    #[test]
    fn gd_zero_when_on_front() {
        let golden = vec![vec![1.0, 4.0], vec![2.0, 2.0]];
        let approx = vec![vec![2.0, 2.0]];
        assert!(generational_distance(&golden, &approx).unwrap().abs() < 1e-15);
    }

    #[test]
    fn gd_measures_euclidean_gap() {
        let golden = vec![vec![0.0, 0.0]];
        let approx = vec![vec![3.0, 4.0]];
        let v = generational_distance(&golden, &approx).unwrap();
        assert!((v - 5.0).abs() < 1e-12);
    }
}

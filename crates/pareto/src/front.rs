//! Pareto-front extraction and non-dominated sorting.

use crate::dominance::{compare, dominates, Dominance};

/// Indices of the non-dominated points of `points` (minimization), in
/// ascending index order.
///
/// Duplicate optimal points are all kept (they dominate nothing and are
/// dominated by nothing). Points with NaN coordinates never enter the
/// front of a set that contains a finite point dominating them — but since
/// NaN compares incomparable, callers should filter NaN beforehand if they
/// want them excluded.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            match compare(q, p) {
                Dominance::Dominates => continue 'outer,
                // Of equal points keep only the first occurrence.
                Dominance::Equal if j < i => continue 'outer,
                _ => {}
            }
        }
        keep.push(i);
    }
    keep
}

/// The non-dominated points themselves (owned copies), deduplicated.
pub fn pareto_front_points(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    pareto_front(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Fast non-dominated sort (the NSGA-II ranking): partitions `points` into
/// fronts `F0, F1, ...` where `F0` is the Pareto front, `F1` the front of
/// the remainder, and so on. Returns the fronts as index lists.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i]: how many points dominate i.
    // dominates_list[i]: indices that i dominates.
    let mut dominated_by = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            match compare(&points[i], &points[j]) {
                Dominance::Dominates => {
                    dominates_list[i].push(j);
                    dominated_by[j] += 1;
                }
                Dominance::DominatedBy => {
                    dominates_list[j].push(i);
                    dominated_by[i] += 1;
                }
                _ => {}
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// NSGA-II crowding distance of each point *within one front*.
///
/// Boundary points of each objective get `f64::INFINITY`. Used by the
/// baseline implementations for diversity-aware selection.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let m = points[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    #[allow(clippy::needless_range_loop)] // `obj` is a column index, not a row.
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][obj]
                .partial_cmp(&points[b][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = points[order[0]][obj];
        let hi = points[order[n - 1]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for k in 1..(n - 1) {
            let gap = points[order[k + 1]][obj] - points[order[k - 1]][obj];
            dist[order[k]] += gap / range;
        }
    }
    dist
}

/// Incrementally maintained Pareto archive (minimization).
///
/// Inserting a point drops any archive member it dominates and rejects the
/// point when the archive already dominates it — the standard structure for
/// keeping "best set seen so far" during an optimization run.
///
/// # Example
///
/// ```
/// use pareto::front::ParetoArchive;
///
/// let mut ar = ParetoArchive::new();
/// assert!(ar.insert(vec![2.0, 2.0]));
/// assert!(ar.insert(vec![1.0, 3.0]));
/// assert!(!ar.insert(vec![3.0, 3.0])); // dominated by (2,2)
/// assert!(ar.insert(vec![1.0, 1.0]));  // dominates everything
/// assert_eq!(ar.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoArchive {
    points: Vec<Vec<f64>>,
}

impl ParetoArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        ParetoArchive { points: Vec::new() }
    }

    /// Attempts to insert `point`; returns `true` when it enters the
    /// archive (i.e. it is not dominated by nor equal to a member).
    pub fn insert(&mut self, point: Vec<f64>) -> bool {
        for p in &self.points {
            match compare(p, &point) {
                Dominance::Dominates | Dominance::Equal => return false,
                _ => {}
            }
        }
        self.points.retain(|p| !dominates(&point, p));
        self.points.push(point);
        true
    }

    /// Number of archived (mutually non-dominated) points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the archive holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrows the archived points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Consumes the archive and returns its points.
    pub fn into_points(self) -> Vec<Vec<f64>> {
        self.points
    }
}

impl Extend<Vec<f64>> for ParetoArchive {
    fn extend<T: IntoIterator<Item = Vec<f64>>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl FromIterator<Vec<f64>> for ParetoArchive {
    fn from_iter<T: IntoIterator<Item = Vec<f64>>>(iter: T) -> Self {
        let mut ar = ParetoArchive::new();
        ar.extend(iter);
        ar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_filters_dominated() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by (2,2)
            vec![5.0, 5.0], // dominated by all front members
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
        assert_eq!(pareto_front_points(&pts).len(), 3);
    }

    #[test]
    fn front_of_single_point() {
        assert_eq!(pareto_front(&[vec![1.0, 1.0]]), vec![0]);
    }

    #[test]
    fn front_deduplicates_equal_points() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn front_empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn nds_ranks_layers() {
        let pts = vec![
            vec![1.0, 1.0], // F0
            vec![2.0, 2.0], // F1
            vec![3.0, 3.0], // F2
            vec![0.5, 4.0], // F0 (incomparable with (1,1))
        ];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 3]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn nds_union_is_everything() {
        let pts: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let fronts = non_dominated_sort(&pts);
        let mut all: Vec<usize> = fronts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nds_empty() {
        assert!(non_dominated_sort(&[]).is_empty());
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let d = crowding_distance(&pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        assert_eq!(crowding_distance(&[vec![1.0, 1.0]]), vec![f64::INFINITY]);
        assert_eq!(
            crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]]),
            vec![f64::INFINITY, f64::INFINITY]
        );
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_degenerate_objective_range() {
        // All equal in objective 0: the range-0 objective contributes
        // nothing, but boundary markers still apply.
        let pts = vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]];
        let d = crowding_distance(&pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn archive_maintains_front() {
        let mut ar = ParetoArchive::new();
        assert!(ar.is_empty());
        assert!(ar.insert(vec![3.0, 3.0]));
        assert!(ar.insert(vec![1.0, 4.0]));
        assert!(ar.insert(vec![4.0, 1.0]));
        assert_eq!(ar.len(), 3);
        // Dominates (3,3): archive shrinks to 3 again after insert.
        assert!(ar.insert(vec![2.0, 2.0]));
        assert_eq!(ar.len(), 3);
        assert!(!ar.points().iter().any(|p| p == &vec![3.0, 3.0]));
        // Duplicate of an existing member is rejected.
        assert!(!ar.insert(vec![2.0, 2.0]));
    }

    #[test]
    fn archive_from_iterator_equals_front() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0],
        ];
        let ar: ParetoArchive = pts.clone().into_iter().collect();
        let mut archived = ar.into_points();
        archived.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        let mut front = pareto_front_points(&pts);
        front.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert_eq!(archived, front);
    }
}

//! Pareto dominance tests (minimization convention).

use std::cmp::Ordering;

/// Outcome of comparing two points under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The first point dominates the second.
    Dominates,
    /// The second point dominates the first.
    DominatedBy,
    /// The points are identical in every objective.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// Compares two equal-length objective vectors under minimization.
///
/// `a` dominates `b` iff `a[i] <= b[i]` for all `i` and `a[j] < b[j]` for
/// some `j`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn compare(a: &[f64], b: &[f64]) -> Dominance {
    assert_eq!(a.len(), b.len(), "dominance compare: length mismatch");
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        match x.partial_cmp(&y) {
            Some(Ordering::Less) => a_better = true,
            Some(Ordering::Greater) => b_better = true,
            Some(Ordering::Equal) => {}
            // NaN is incomparable with everything: treat as mutual
            // non-dominance, which keeps NaN points out of fronts safely.
            None => return Dominance::Incomparable,
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        (false, false) => Dominance::Equal,
        (true, true) => Dominance::Incomparable,
    }
}

/// `true` iff `a` dominates `b` (strictly better in at least one
/// objective, no worse in any).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    compare(a, b) == Dominance::Dominates
}

/// `true` iff `a` weakly dominates `b` (`a[i] <= b[i]` for all `i`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    matches!(compare(a, b), Dominance::Dominates | Dominance::Equal)
}

/// δ-relaxed weak dominance: `true` iff `a[i] <= b[i] + delta[i]` for all
/// `i`. This is the comparison underlying the tuner's dropping rule
/// (Eq. 11) and Pareto-classification rule (Eq. 12): dominance up to a
/// user-chosen per-objective slack.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn delta_dominates(a: &[f64], b: &[f64], delta: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "delta_dominates: length mismatch");
    assert_eq!(
        a.len(),
        delta.len(),
        "delta_dominates: delta length mismatch"
    );
    a.iter().zip(b).zip(delta).all(|((&x, &y), &d)| x <= y + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        assert_eq!(compare(&[1.0, 2.0], &[2.0, 3.0]), Dominance::Dominates);
        assert_eq!(compare(&[2.0, 3.0], &[1.0, 2.0]), Dominance::DominatedBy);
    }

    #[test]
    fn equal_points() {
        assert_eq!(compare(&[1.0, 2.0], &[1.0, 2.0]), Dominance::Equal);
        assert!(!dominates(&[1.0], &[1.0]));
        assert!(weakly_dominates(&[1.0], &[1.0]));
    }

    #[test]
    fn incomparable_points() {
        assert_eq!(compare(&[1.0, 3.0], &[3.0, 1.0]), Dominance::Incomparable);
        assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0]));
    }

    #[test]
    fn partial_improvement_dominates() {
        // Equal in one coordinate, better in the other.
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(weakly_dominates(&[1.0, 2.0], &[1.0, 3.0]));
    }

    #[test]
    fn nan_is_incomparable() {
        assert_eq!(
            compare(&[f64::NAN, 1.0], &[0.0, 2.0]),
            Dominance::Incomparable
        );
    }

    #[test]
    fn delta_relaxation() {
        // a is 0.5 worse in objective 0; δ = 1.0 forgives that.
        assert!(delta_dominates(&[2.5, 1.0], &[2.0, 1.0], &[1.0, 1.0]));
        assert!(!delta_dominates(&[2.5, 1.0], &[2.0, 1.0], &[0.1, 0.1]));
        // δ = 0 reduces to weak dominance.
        assert!(delta_dominates(&[1.0, 1.0], &[1.0, 1.0], &[0.0, 0.0]));
        assert!(!delta_dominates(&[1.1, 1.0], &[1.0, 1.0], &[0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn compare_panics_on_length() {
        compare(&[1.0], &[1.0, 2.0]);
    }
}

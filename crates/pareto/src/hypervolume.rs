//! Exact hypervolume computation and the hypervolume error of Eq. (2).
//!
//! The hypervolume (or S-metric) of a point set `S` with respect to a
//! reference point `r` is the Lebesgue measure of the region dominated by
//! `S` and dominating `r` — under the minimization convention, the volume
//! of `⋃_{p∈S} [p, r]`. A larger hypervolume means a better front.
//!
//! 2-D uses an `O(n log n)` sweep; higher dimensions use the WFG
//! (Walking-Fish-Group) inclusion–exclusion recursion, exact for the front
//! sizes that occur in tool-parameter tuning (tens of points).

use crate::front::pareto_front_points;
use crate::{ParetoError, Result};

/// Exact hypervolume of `points` with respect to `reference`
/// (minimization). Dominated and duplicate points are filtered internally,
/// so any finite point set is accepted.
///
/// Points that do **not** dominate the reference (i.e. have a coordinate
/// `>= reference`) contribute nothing but are tolerated: they are clipped
/// away by the internal front filter when dominated, and contribute their
/// (possibly zero) clipped box otherwise. A point with a coordinate *above*
/// the reference in every objective simply adds zero volume.
///
/// # Errors
///
/// - [`ParetoError::EmptySet`] when `points` is empty;
/// - [`ParetoError::DimensionMismatch`] when dimensions disagree;
/// - [`ParetoError::NanCoordinate`] when a coordinate is NaN.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> Result<f64> {
    validate(points, reference)?;
    // Clip every point to the reference box so partially-outside points
    // contribute exactly their inside part.
    let clipped: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            p.iter()
                .zip(reference)
                .map(|(&x, &r)| x.min(r))
                .collect::<Vec<f64>>()
        })
        .collect();
    let front = pareto_front_points(&clipped);
    if reference.len() == 2 {
        Ok(hv2(&front, reference))
    } else {
        Ok(wfg(&front, reference))
    }
}

/// The hypervolume *error* of an approximation front `approx` relative to
/// a golden front `golden` (Eq. 2 of the paper):
/// `e = (H(P) − H(P̂)) / H(P)`.
///
/// Both fronts are measured against the same `reference` point. The error
/// is 0 for a perfect approximation and approaches 1 for a useless one; it
/// can be negative only if `approx` contains points that dominate the
/// golden front (which cannot happen when the golden front is the true
/// Pareto front of a superset).
///
/// # Errors
///
/// Propagates [`hypervolume`] errors from either set, and returns
/// [`ParetoError::EmptySet`] when the golden front has zero hypervolume.
pub fn hypervolume_error(
    golden: &[Vec<f64>],
    approx: &[Vec<f64>],
    reference: &[f64],
) -> Result<f64> {
    let h_golden = hypervolume(golden, reference)?;
    if h_golden <= 0.0 {
        return Err(ParetoError::EmptySet {
            what: "golden front with positive hypervolume",
        });
    }
    let h_approx = hypervolume(approx, reference)?;
    Ok((h_golden - h_approx) / h_golden)
}

/// A canonical reference point for a candidate QoR set: the componentwise
/// maximum scaled by `margin` (e.g. `1.1` leaves 10 % headroom so extreme
/// points still contribute volume).
///
/// # Errors
///
/// - [`ParetoError::EmptySet`] when `points` is empty;
/// - [`ParetoError::NanCoordinate`] when a coordinate is NaN.
pub fn reference_point(points: &[Vec<f64>], margin: f64) -> Result<Vec<f64>> {
    if points.is_empty() {
        return Err(ParetoError::EmptySet { what: "points" });
    }
    let d = points[0].len();
    let mut r = vec![f64::NEG_INFINITY; d];
    for (i, p) in points.iter().enumerate() {
        if p.len() != d {
            return Err(ParetoError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        for (rj, &x) in r.iter_mut().zip(p) {
            if x.is_nan() {
                return Err(ParetoError::NanCoordinate { index: i });
            }
            *rj = rj.max(x);
        }
    }
    for rj in &mut r {
        // Scale away from the ideal point; handles negative coordinates too.
        *rj = if *rj >= 0.0 {
            *rj * margin
        } else {
            *rj / margin
        };
        if *rj == 0.0 {
            *rj = f64::EPSILON;
        }
    }
    Ok(r)
}

fn validate(points: &[Vec<f64>], reference: &[f64]) -> Result<()> {
    if points.is_empty() {
        return Err(ParetoError::EmptySet { what: "points" });
    }
    let d = reference.len();
    for (i, p) in points.iter().enumerate() {
        if p.len() != d {
            return Err(ParetoError::DimensionMismatch {
                expected: d,
                got: p.len(),
            });
        }
        if p.iter().any(|x| x.is_nan()) {
            return Err(ParetoError::NanCoordinate { index: i });
        }
    }
    Ok(())
}

/// 2-D sweep: sort the front by the first objective ascending (second is
/// then descending for a true front) and accumulate rectangles.
fn hv2(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<&Vec<f64>> = front.iter().collect();
    pts.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in pts {
        let w = reference[0] - p[0];
        let h = prev_y - p[1];
        if w > 0.0 && h > 0.0 {
            hv += w * h;
            prev_y = p[1];
        }
    }
    hv
}

/// WFG inclusion–exclusion recursion for arbitrary dimension.
fn wfg(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut total = 0.0;
    for (i, p) in front.iter().enumerate() {
        total += exclusive_hv(p, &front[i + 1..], reference);
    }
    total
}

/// Volume dominated by `p` alone, minus the part also dominated by `rest`.
fn exclusive_hv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    let incl: f64 = p
        .iter()
        .zip(reference)
        .map(|(&x, &r)| (r - x).max(0.0))
        .product();
    if incl == 0.0 || rest.is_empty() {
        return incl;
    }
    // Limit set: each q is raised to be no better than p componentwise.
    let limited: Vec<Vec<f64>> = rest
        .iter()
        .map(|q| {
            q.iter()
                .zip(p)
                .map(|(&qx, &px)| qx.max(px))
                .collect::<Vec<f64>>()
        })
        .collect();
    let limited_front = pareto_front_points(&limited);
    incl - wfg(&limited_front, reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0]).unwrap();
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjoint_contributions() {
        // (1,3) and (3,1) vs ref (4,4): union area = 3*1 + 1*3 + ... draw it:
        // box1 = [1,4]x[3,4] area 3; box2 = [3,4]x[1,4] area 3; overlap [3,4]x[3,4] = 1.
        let hv = hypervolume(&[vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]).unwrap();
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]).unwrap();
        let with_dominated = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]).unwrap();
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_contributes_zero() {
        let hv = hypervolume(&[vec![5.0, 5.0], vec![1.0, 1.0]], &[3.0, 3.0]).unwrap();
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_unit_cubes() {
        // One point at origin vs ref (1,1,1): volume 1.
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[1.0, 1.0, 1.0]).unwrap();
        assert!((hv - 1.0).abs() < 1e-12);
        // Two incomparable points, hand-computed union.
        // p=(0,0,.5) box vol .5 ; q=(0,.5,0) box vol .5 ; overlap (0,.5,.5)->(1,1,1)=.25
        let hv = hypervolume(
            &[vec![0.0, 0.0, 0.5], vec![0.0, 0.5, 0.0]],
            &[1.0, 1.0, 1.0],
        )
        .unwrap();
        assert!((hv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wfg_matches_2d_sweep() {
        // Same 2-D front evaluated through the generic recursion by faking
        // a third constant objective.
        let front2 = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0]];
        let hv2 = hypervolume(&front2, &[5.0, 5.0]).unwrap();
        let front3: Vec<Vec<f64>> = front2.iter().map(|p| vec![p[0], p[1], 0.0]).collect();
        let hv3 = hypervolume(&front3, &[5.0, 5.0, 1.0]).unwrap();
        assert!((hv2 - hv3).abs() < 1e-10, "hv2={hv2} hv3={hv3}");
    }

    #[test]
    fn error_zero_for_identical_fronts() {
        let front = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0]];
        let e = hypervolume_error(&front, &front, &[5.0, 5.0]).unwrap();
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn error_grows_for_worse_fronts() {
        let golden = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![4.0, 1.0]];
        let partial = vec![vec![1.0, 4.0]];
        let e = hypervolume_error(&golden, &partial, &[5.0, 5.0]).unwrap();
        assert!(e > 0.0 && e < 1.0);
        let worse = vec![vec![4.5, 4.5]];
        let e2 = hypervolume_error(&golden, &worse, &[5.0, 5.0]).unwrap();
        assert!(e2 > e);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            hypervolume(&[], &[1.0, 1.0]).unwrap_err(),
            ParetoError::EmptySet { .. }
        ));
        assert!(matches!(
            hypervolume(&[vec![1.0]], &[1.0, 1.0]).unwrap_err(),
            ParetoError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            hypervolume(&[vec![f64::NAN, 1.0]], &[1.0, 1.0]).unwrap_err(),
            ParetoError::NanCoordinate { .. }
        ));
    }

    #[test]
    fn reference_point_scales_max() {
        let r = reference_point(&[vec![1.0, 10.0], vec![2.0, 5.0]], 1.1).unwrap();
        assert!((r[0] - 2.2).abs() < 1e-12);
        assert!((r[1] - 11.0).abs() < 1e-12);
    }

    #[test]
    fn reference_point_negative_coordinates() {
        let r = reference_point(&[vec![-4.0, -2.0]], 1.1).unwrap();
        // Scaled toward zero so the point still dominates it... for
        // negative values the reference must be *greater* (less negative).
        assert!(r[0] > -4.0);
        assert!(r[1] > -2.0);
    }

    #[test]
    fn reference_point_rejects_empty() {
        assert!(reference_point(&[], 1.1).is_err());
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced by the multi-objective utilities.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParetoError {
    /// Point sets must share one dimension; the offending point differs.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Observed dimension.
        got: usize,
    },
    /// An empty set was supplied where at least one point is required.
    EmptySet {
        /// Name of the empty argument.
        what: &'static str,
    },
    /// A point lies outside the dominated region of the reference point,
    /// so its hypervolume contribution would be negative.
    ReferenceNotDominated {
        /// Index of the offending point.
        index: usize,
    },
    /// A coordinate was NaN.
    NanCoordinate {
        /// Index of the offending point.
        index: usize,
    },
    /// ADRS is undefined when a golden reference coordinate is zero
    /// (the indicator divides by it).
    ZeroReferenceCoordinate {
        /// Index of the offending golden point.
        index: usize,
    },
}

impl fmt::Display for ParetoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParetoError::DimensionMismatch { expected, got } => {
                write!(f, "point has dimension {got}, expected {expected}")
            }
            ParetoError::EmptySet { what } => write!(f, "{what} must not be empty"),
            ParetoError::ReferenceNotDominated { index } => {
                write!(f, "point {index} is not dominated by the reference point")
            }
            ParetoError::NanCoordinate { index } => {
                write!(f, "point {index} has a NaN coordinate")
            }
            ParetoError::ZeroReferenceCoordinate { index } => {
                write!(
                    f,
                    "golden point {index} has a zero coordinate, adrs undefined"
                )
            }
        }
    }
}

impl Error for ParetoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ParetoError::EmptySet { what: "front" }
            .to_string()
            .contains("front"));
        assert!(ParetoError::DimensionMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
    }
}

//! Property-based tests for the multi-objective utilities.

use pareto::dominance::{compare, dominates, Dominance};
use pareto::front::{crowding_distance, non_dominated_sort, pareto_front, ParetoArchive};
use pareto::hypervolume::{hypervolume, hypervolume_error, reference_point};
use pareto::metrics::adrs;
use proptest::prelude::*;

fn points_strategy(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.1f64..10.0, d), 1..=n)
}

proptest! {
    #[test]
    fn dominance_is_antisymmetric(a in prop::collection::vec(0.0f64..10.0, 3),
                                  b in prop::collection::vec(0.0f64..10.0, 3)) {
        let ab = compare(&a, &b);
        let ba = compare(&b, &a);
        match ab {
            Dominance::Dominates => prop_assert_eq!(ba, Dominance::DominatedBy),
            Dominance::DominatedBy => prop_assert_eq!(ba, Dominance::Dominates),
            Dominance::Equal => prop_assert_eq!(ba, Dominance::Equal),
            Dominance::Incomparable => prop_assert_eq!(ba, Dominance::Incomparable),
        }
    }

    #[test]
    fn front_members_are_mutually_incomparable(pts in points_strategy(20, 2)) {
        let idx = pareto_front(&pts);
        for (k, &i) in idx.iter().enumerate() {
            for &j in &idx[k + 1..] {
                prop_assert!(!dominates(&pts[i], &pts[j]));
                prop_assert!(!dominates(&pts[j], &pts[i]));
            }
        }
    }

    #[test]
    fn every_non_front_point_is_dominated(pts in points_strategy(20, 3)) {
        let idx = pareto_front(&pts);
        for i in 0..pts.len() {
            if idx.contains(&i) {
                continue;
            }
            let covered = idx.iter().any(|&j| dominates(&pts[j], &pts[i]))
                || idx.iter().any(|&j| j < i && pts[j] == pts[i]);
            prop_assert!(covered, "point {i} neither dominated nor duplicate");
        }
    }

    #[test]
    fn nds_first_front_is_pareto_front(pts in points_strategy(15, 2)) {
        let fronts = non_dominated_sort(&pts);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        prop_assert_eq!(f0, pareto_front(&pts));
    }

    #[test]
    fn hypervolume_is_monotone_in_set_inclusion(pts in points_strategy(12, 2)) {
        let r = reference_point(&pts, 1.2).unwrap();
        let partial = &pts[..pts.len().max(1)].to_vec(); // full set
        let hv_full = hypervolume(partial, &r).unwrap();
        let hv_sub = hypervolume(&pts[..1.max(pts.len() / 2)], &r).unwrap();
        prop_assert!(hv_sub <= hv_full + 1e-9, "sub {hv_sub} > full {hv_full}");
    }

    #[test]
    fn hypervolume_nonnegative_and_bounded(pts in points_strategy(10, 3)) {
        let r = reference_point(&pts, 1.5).unwrap();
        let hv = hypervolume(&pts, &r).unwrap();
        prop_assert!(hv >= 0.0);
        // Bounded by the total reference box from the ideal corner.
        let ideal: Vec<f64> = (0..3)
            .map(|j| pts.iter().map(|p| p[j]).fold(f64::INFINITY, f64::min))
            .collect();
        let bound: f64 = ideal.iter().zip(&r).map(|(&i, &rr)| (rr - i).max(0.0)).product();
        prop_assert!(hv <= bound + 1e-9);
    }

    #[test]
    fn hv_error_of_self_is_zero(pts in points_strategy(10, 2)) {
        let r = reference_point(&pts, 1.2).unwrap();
        if hypervolume(&pts, &r).unwrap() > 0.0 {
            let e = hypervolume_error(&pts, &pts, &r).unwrap();
            prop_assert!(e.abs() < 1e-9);
        }
    }

    #[test]
    fn adrs_nonnegative_and_zero_on_superset(pts in points_strategy(8, 2)) {
        let golden = pareto_front(&pts)
            .into_iter()
            .map(|i| pts[i].clone())
            .collect::<Vec<_>>();
        let v = adrs(&golden, &pts).unwrap();
        prop_assert!(v.abs() < 1e-12);
        let single = vec![pts[0].clone()];
        let v2 = adrs(&golden, &single).unwrap();
        prop_assert!(v2 >= -1e-12);
    }

    #[test]
    fn archive_equals_batch_front(pts in points_strategy(20, 2)) {
        let mut ar = ParetoArchive::new();
        for p in &pts {
            ar.insert(p.clone());
        }
        let mut incremental = ar.into_points();
        let mut batch: Vec<Vec<f64>> = pareto_front(&pts).into_iter().map(|i| pts[i].clone()).collect();
        let key = |p: &Vec<f64>| (p[0].to_bits(), p[1].to_bits());
        incremental.sort_by_key(key);
        batch.sort_by_key(key);
        prop_assert_eq!(incremental, batch);
    }

    #[test]
    fn crowding_lengths_match(pts in points_strategy(12, 2)) {
        prop_assert_eq!(crowding_distance(&pts).len(), pts.len());
    }
}

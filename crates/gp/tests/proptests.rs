//! Property-based tests of the GP and transfer-GP invariants.

use gp::kernel::{Kernel, Matern52, SquaredExponential, Task, TransferKernel};
use gp::standardize::Standardizer;
use gp::{GpRegressor, TaskData, TransferGp, TransferGpConfig, PREDICT_BLOCK};
use proptest::prelude::*;

fn points(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernels_are_symmetric_and_bounded(a in points(1, 3), b in points(1, 3),
                                          sv in 0.1f64..5.0, ls in 0.05f64..2.0) {
        let se = SquaredExponential::isotropic(3, sv, ls).unwrap();
        let m = Matern52::new(sv, vec![ls; 3]).unwrap();
        for k in [&se as &dyn Kernel, &m as &dyn Kernel] {
            let kab = k.eval(&a[0], &b[0]);
            let kba = k.eval(&b[0], &a[0]);
            prop_assert!((kab - kba).abs() < 1e-12);
            // |k(a,b)| <= k(x,x) = signal variance (Cauchy–Schwarz).
            prop_assert!(kab.abs() <= sv + 1e-12);
            prop_assert!((k.eval(&a[0], &a[0]) - sv).abs() < 1e-9);
        }
    }

    #[test]
    fn gp_posterior_variance_never_exceeds_prior(x in points(12, 2), q in points(5, 2)) {
        let y: Vec<f64> = x.iter().map(|p| p[0] - p[1]).collect();
        let kernel = SquaredExponential::isotropic(2, 1.3, 0.4).unwrap();
        let gp = GpRegressor::fit(x, y.clone(), kernel, 1e-4).unwrap();
        let prior_var = 1.3 * Standardizer::fit(&y).scale().powi(2);
        for p in &q {
            let (_, v) = gp.predict(p).unwrap();
            prop_assert!(v <= prior_var * 1.001, "posterior {v} > prior {prior_var}");
        }
    }

    #[test]
    fn gp_mean_interpolates_with_tiny_noise(x in points(10, 2)) {
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin() + p[1]).collect();
        let kernel = SquaredExponential::isotropic(2, 1.0, 0.5).unwrap();
        let gp = GpRegressor::fit(x.clone(), y.clone(), kernel, 1e-9).unwrap();
        for (p, &t) in x.iter().zip(&y) {
            let (m, _) = gp.predict(p).unwrap();
            prop_assert!((m - t).abs() < 1e-2, "mean {m} vs {t}");
        }
    }

    #[test]
    fn transfer_gp_variance_shrinks_with_source(xt in points(4, 2), xs in points(20, 2),
                                                 q in points(6, 2)) {
        // Same hyper-parameters: adding correlated source data can only
        // reduce the latent posterior variance.
        let f = |p: &[f64]| p[0] + 0.5 * p[1];
        let cfg = TransferGpConfig {
            lengthscales: vec![0.4; 2],
            signal_var: 1.0,
            lambda: 0.9,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        let target = TaskData::new(xt.clone(), xt.iter().map(|p| f(p)).collect());
        let source = TaskData::new(xs.clone(), xs.iter().map(|p| f(p)).collect());
        let with = TransferGp::fit(source, target.clone(), cfg.clone()).unwrap();
        let without = TransferGp::fit(TaskData::default(), target, cfg).unwrap();
        for p in &q {
            let (_, v_with) = with.predict_latent(p).unwrap();
            let (_, v_without) = without.predict_latent(p).unwrap();
            prop_assert!(
                v_with <= v_without * 1.05 + 1e-9,
                "source must not inflate variance: {v_with} vs {v_without}"
            );
        }
    }

    #[test]
    fn predict_noise_exceeds_latent(xt in points(6, 2), q in points(4, 2)) {
        let cfg = TransferGpConfig {
            noise_target: 0.05,
            ..TransferGpConfig::default_for_dim(2)
        };
        let target = TaskData::new(xt.clone(), xt.iter().map(|p| p[0]).collect());
        let model = TransferGp::fit(TaskData::default(), target, cfg).unwrap();
        for p in &q {
            let (m1, v_obs) = model.predict(p).unwrap();
            let (m2, v_lat) = model.predict_latent(p).unwrap();
            prop_assert_eq!(m1, m2);
            prop_assert!(v_obs >= v_lat, "observation variance must include noise");
        }
    }

    #[test]
    fn transfer_kernel_factor_in_range(a in 0.001f64..50.0, b in 0.01f64..10.0) {
        let base = SquaredExponential::isotropic(1, 1.0, 0.5).unwrap();
        let tk = TransferKernel::from_gamma_prior(base, a, b).unwrap();
        prop_assert!(tk.lambda() > -1.0 && tk.lambda() <= 1.0);
        // Cross-task covariance magnitude never exceeds within-task.
        let x = [0.3];
        let y = [0.7];
        let within = tk.eval_task(&x, Task::Source, &y, Task::Source);
        let across = tk.eval_task(&x, Task::Source, &y, Task::Target);
        prop_assert!(across.abs() <= within.abs() + 1e-12);
    }

    #[test]
    fn parallel_predict_is_chunk_and_worker_invariant(
        xt in points(6, 2), xs in points(8, 2), q in points(13, 2),
        block in 1usize..20, workers in 1usize..9) {
        // 13 queries with block drawn from 1..20 covers block = 1,
        // non-divisor blocks, and block > pool; every (block, workers)
        // combination must return the serial sweep's exact bits.
        let f = |p: &[f64]| p[0] + 0.5 * p[1];
        let cfg = TransferGpConfig {
            lengthscales: vec![0.4; 2],
            signal_var: 1.0,
            lambda: 0.8,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        let target = TaskData::new(xt.clone(), xt.iter().map(|p| f(p)).collect());
        let source = TaskData::new(xs.clone(), xs.iter().map(|p| f(p)).collect());
        let model = TransferGp::fit(source, target, cfg).unwrap();
        let base = model.predict_latent_batch_with_block(&q, PREDICT_BLOCK).unwrap();
        let par = model.predict_latent_batch_par(&q, block, workers).unwrap();
        prop_assert_eq!(base.len(), par.len());
        for ((bm, bv), (pm, pv)) in base.iter().zip(&par) {
            prop_assert!(bm.to_bits() == pm.to_bits() && bv.to_bits() == pv.to_bits(),
                "block={} workers={}: ({}, {}) vs ({}, {})", block, workers, bm, bv, pm, pv);
        }
    }

    #[test]
    fn standardizer_roundtrips(y in prop::collection::vec(-100.0f64..100.0, 2..30)) {
        let s = Standardizer::fit(&y);
        for &v in &y {
            prop_assert!((s.inverse(s.transform(v)) - v).abs() < 1e-9);
        }
        prop_assert!(s.scale() > 0.0);
    }
}

//! Unit tests pinning the transfer kernel's cross-task factor
//! `λ = 2(1/(1+a))^b − 1` (Eq. 7) at analytically known `(a, b)` values
//! and in its `a → 0⁺` / `b → ∞` limits, so a silent sign or exponent
//! slip in the closed form cannot survive.

use gp::kernel::{Kernel, SquaredExponential, Task, TransferKernel};

fn lambda_of(a: f64, b: f64) -> f64 {
    let base = SquaredExponential::isotropic(1, 1.0, 0.5).expect("base kernel");
    TransferKernel::from_gamma_prior(base, a, b)
        .expect("valid gamma prior")
        .lambda()
}

#[test]
fn lambda_at_analytically_known_points() {
    // a = 1, b = 1: 2·(1/2)¹ − 1 = 0 — source and target uncorrelated.
    assert!(lambda_of(1.0, 1.0).abs() < 1e-15);
    // a = 1, b = 2: 2·(1/2)² − 1 = −1/2.
    assert!((lambda_of(1.0, 2.0) + 0.5).abs() < 1e-15);
    // a = 3, b = 1: 2·(1/4)¹ − 1 = −1/2.
    assert!((lambda_of(3.0, 1.0) + 0.5).abs() < 1e-15);
    // a = 1, b = 1/2: 2·2^{−1/2} − 1 = √2 − 1.
    assert!((lambda_of(1.0, 0.5) - (std::f64::consts::SQRT_2 - 1.0)).abs() < 1e-15);
    // a = e − 1, b = 1: 2·e⁻¹ − 1.
    let expect = 2.0 / std::f64::consts::E - 1.0;
    assert!((lambda_of(std::f64::consts::E - 1.0, 1.0) - expect).abs() < 1e-15);
    // a = 1/3, b = 3: 2·(3/4)³ − 1 = 27/32 − 1 = −5/32.
    assert!((lambda_of(1.0 / 3.0, 3.0) + 5.0 / 32.0).abs() < 1e-15);
}

#[test]
fn lambda_limit_a_to_zero_is_full_transfer() {
    // a → 0⁺ (zero expected dissimilarity): (1/(1+a))^b → 1, so λ → 1
    // for any fixed b — identical tasks, full correlation.
    for &b in &[0.5, 1.0, 2.0, 7.0] {
        assert!((lambda_of(1e-14, b) - 1.0).abs() < 1e-12, "b = {b}");
    }
    // The approach is monotone from below.
    let seq: Vec<f64> = [1e-1, 1e-2, 1e-4, 1e-8]
        .iter()
        .map(|&a| lambda_of(a, 2.0))
        .collect();
    for w in seq.windows(2) {
        assert!(w[0] < w[1], "λ must increase as a shrinks: {seq:?}");
    }
    assert!(seq.iter().all(|&l| l < 1.0));
}

#[test]
fn lambda_limit_b_to_infinity_is_full_anticorrelation() {
    // b → ∞ with a > 0: (1/(1+a))^b → 0, so λ → −1 from above — the
    // paper's maximally dissimilar regime. In exact arithmetic λ > −1
    // for finite b; in f64 the 2(1+a)^{−b} term underflows below one
    // ulp of −1, so only closure of the (−1, 1] domain is observable.
    for &a in &[0.1, 1.0, 4.0] {
        assert!((lambda_of(a, 1e4) + 1.0).abs() < 1e-12, "a = {a}");
        let seq: Vec<f64> = [1.0, 4.0, 16.0, 64.0]
            .iter()
            .map(|&b| lambda_of(a, b))
            .collect();
        for w in seq.windows(2) {
            assert!(
                w[0] > w[1] || (w[0] == -1.0 && w[1] == -1.0),
                "λ must decrease as b grows: {seq:?}"
            );
        }
        assert!(seq.iter().all(|&l| l >= -1.0));
    }
}

#[test]
fn lambda_is_strictly_decreasing_in_dissimilarity_scale() {
    // Larger a means more expected dissimilarity, hence weaker transfer.
    for &b in &[0.3, 1.0, 2.5] {
        let seq: Vec<f64> = [0.01, 0.1, 1.0, 10.0]
            .iter()
            .map(|&a| lambda_of(a, b))
            .collect();
        for w in seq.windows(2) {
            assert!(w[0] > w[1], "λ must decrease as a grows (b = {b}): {seq:?}");
        }
    }
}

#[test]
fn cross_task_covariance_scales_by_lambda_exactly() {
    let base = SquaredExponential::isotropic(2, 1.3, 0.4).expect("base kernel");
    let tk = TransferKernel::from_gamma_prior(base.clone(), 0.25, 1.5).expect("kernel");
    let (x, y) = ([0.2, 0.7], [0.6, 0.1]);
    let within = tk.eval_task(&x, Task::Source, &y, Task::Source);
    let across = tk.eval_task(&x, Task::Source, &y, Task::Target);
    assert_eq!(
        within,
        base.eval(&x, &y),
        "same-task covariance is the base kernel"
    );
    assert!((across - tk.lambda() * within).abs() < 1e-15);
    // Symmetric in the task labels.
    assert_eq!(across, tk.eval_task(&x, Task::Target, &y, Task::Source));
}

#[test]
fn degenerate_gamma_priors_are_rejected() {
    let base = || SquaredExponential::isotropic(1, 1.0, 0.5).expect("base kernel");
    for (a, b) in [
        (0.0, 1.0),
        (-0.5, 1.0),
        (1.0, 0.0),
        (1.0, -2.0),
        (f64::NAN, 1.0),
        (1.0, f64::INFINITY),
    ] {
        assert!(
            TransferKernel::from_gamma_prior(base(), a, b).is_err(),
            "(a, b) = ({a}, {b}) must be rejected"
        );
    }
}

use linalg::{Cholesky, Matrix};

use crate::kernel::Kernel;
use crate::standardize::Standardizer;
use crate::{GpError, Result};

/// Exact Gaussian-process regressor (Eq. 1 of the paper).
///
/// Fitting factors the kernel matrix `K + σ²I` once (with escalating
/// jitter if needed); prediction then costs one kernel row plus two
/// triangular solves per query. Outputs are standardized internally, so
/// callers work in natural units.
///
/// # Example
///
/// ```
/// use gp::{GpRegressor, kernel::SquaredExponential};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
/// let gp = GpRegressor::fit(x, y, SquaredExponential::isotropic(1, 1.0, 0.3)?, 1e-6)?;
/// let (mean, _var) = gp.predict(&[0.5])?;
/// assert!((mean - 0.25).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
pub struct GpRegressor<K> {
    kernel: K,
    noise_var: f64,
    x_train: Vec<Vec<f64>>,
    /// `(K + σ²I)⁻¹ z` in standardized output space.
    alpha: Vec<f64>,
    chol: Cholesky,
    standardizer: Standardizer,
    z_train: Vec<f64>,
}

impl<K: Kernel> GpRegressor<K> {
    /// Fits the regressor to `(x, y)`.
    ///
    /// # Errors
    ///
    /// - [`GpError::InvalidTrainingData`] when `x` is empty, lengths
    ///   disagree, or a value is non-finite;
    /// - [`GpError::InvalidHyperparameter`] when `noise_var < 0`;
    /// - [`GpError::DimensionMismatch`] when a row of `x` does not match
    ///   the kernel dimension;
    /// - [`GpError::Factorization`] when the kernel matrix cannot be
    ///   factored even with jitter.
    pub fn fit(x: Vec<Vec<f64>>, y: Vec<f64>, kernel: K, noise_var: f64) -> Result<Self> {
        if x.is_empty() {
            return Err(GpError::InvalidTrainingData {
                reason: "need at least one training point",
            });
        }
        if x.len() != y.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        if !(noise_var.is_finite() && noise_var >= 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "noise_var",
                value: noise_var,
            });
        }
        for row in &x {
            if row.len() != kernel.dim() {
                return Err(GpError::DimensionMismatch {
                    expected: kernel.dim(),
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::InvalidTrainingData {
                    reason: "training inputs must be finite",
                });
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData {
                reason: "training outputs must be finite",
            });
        }

        let standardizer = Standardizer::fit(&y);
        let z_train = standardizer.transform_vec(&y);

        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| kernel.eval(&x[i], &x[j]));
        k.add_diag(noise_var);
        let (chol, _jitter) = Cholesky::new_with_jitter(&k, 1e-10, 12)?;
        let alpha = chol.solve_vec(&z_train)?;

        Ok(GpRegressor {
            kernel,
            noise_var,
            x_train: x,
            alpha,
            chol,
            standardizer,
            z_train,
        })
    }

    /// Number of training points.
    pub fn train_len(&self) -> usize {
        self.x_train.len()
    }

    /// Borrows the kernel.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The observation noise variance (standardized space).
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Predictive mean and variance at a query point, in natural units.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] when the query dimension
    /// does not match the kernel.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        if x.len() != self.kernel.dim() {
            return Err(GpError::DimensionMismatch {
                expected: self.kernel.dim(),
                got: x.len(),
            });
        }
        let k_star: Vec<f64> = self
            .x_train
            .iter()
            .map(|xi| self.kernel.eval(xi, x))
            .collect();
        let mean_z = linalg::vecops::dot(&k_star, &self.alpha);
        // var = k(x,x) − ‖L⁻¹ k*‖².
        let v = self.chol.solve_lower_only(&k_star)?;
        let var_z = (self.kernel.diag(x) - linalg::vecops::dot(&v, &v)).max(0.0);
        Ok((
            self.standardizer.inverse(mean_z),
            self.standardizer.inverse_var(var_z),
        ))
    }

    /// Predicts a batch of points (convenience wrapper over
    /// [`GpRegressor::predict`]).
    ///
    /// # Errors
    ///
    /// Fails on the first dimension mismatch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Exact log marginal likelihood of the (standardized) training data:
    /// `−½ zᵀα − ½ log|K+σ²I| − (n/2) log 2π`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.x_train.len() as f64;
        let fit = -0.5 * linalg::vecops::dot(&self.z_train, &self.alpha);
        let complexity = -0.5 * self.chol.log_det();
        fit + complexity - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }
}

impl<K: Kernel + std::fmt::Debug> std::fmt::Debug for GpRegressor<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpRegressor")
            .field("kernel", &self.kernel)
            .field("noise_var", &self.noise_var)
            .field("n_train", &self.x_train.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let x = grid(10);
        let y: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).cos()).collect();
        let gp = GpRegressor::fit(
            x.clone(),
            y.clone(),
            SquaredExponential::isotropic(1, 1.0, 0.3).unwrap(),
            1e-8,
        )
        .unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = gp.predict(xi).unwrap();
            assert!((m - yi).abs() < 1e-3, "mean {m} vs {yi}");
            assert!(v < 1e-2);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = vec![1.0, 1.1];
        let gp = GpRegressor::fit(
            x,
            y,
            SquaredExponential::isotropic(1, 1.0, 0.2).unwrap(),
            1e-6,
        )
        .unwrap();
        let (_, v_near) = gp.predict(&[0.05]).unwrap();
        let (_, v_far) = gp.predict(&[0.9]).unwrap();
        assert!(v_far > v_near);
    }

    #[test]
    fn reverts_to_prior_far_from_data() {
        let x = vec![vec![0.0]];
        let y = vec![42.0];
        let gp = GpRegressor::fit(
            x,
            y,
            SquaredExponential::isotropic(1, 1.0, 0.05).unwrap(),
            1e-6,
        )
        .unwrap();
        let (m, v) = gp.predict(&[1.0]).unwrap();
        // Prior mean is the standardizer's mean (42); prior var ≈ σ²·scale².
        assert!((m - 42.0).abs() < 1e-6);
        assert!(v > 0.5);
    }

    #[test]
    fn fit_rejects_bad_inputs() {
        let k = SquaredExponential::isotropic(1, 1.0, 0.3).unwrap();
        assert!(GpRegressor::fit(vec![], vec![], k.clone(), 1e-6).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0]], vec![1.0, 2.0], k.clone(), 1e-6).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0]], vec![1.0], k.clone(), -1.0).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0, 1.0]], vec![1.0], k.clone(), 1e-6).is_err());
        assert!(GpRegressor::fit(vec![vec![f64::NAN]], vec![1.0], k.clone(), 1e-6).is_err());
        assert!(GpRegressor::fit(vec![vec![0.0]], vec![f64::INFINITY], k, 1e-6).is_err());
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let gp = GpRegressor::fit(
            vec![vec![0.0]],
            vec![1.0],
            SquaredExponential::isotropic(1, 1.0, 0.3).unwrap(),
            1e-6,
        )
        .unwrap();
        assert!(matches!(
            gp.predict(&[0.0, 1.0]).unwrap_err(),
            GpError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn log_marginal_likelihood_prefers_correct_lengthscale() {
        // Data drawn from a smooth function: a sensible lengthscale should
        // beat a wildly small one.
        let x = grid(20);
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin()).collect();
        let good = GpRegressor::fit(
            x.clone(),
            y.clone(),
            SquaredExponential::isotropic(1, 1.0, 0.3).unwrap(),
            1e-4,
        )
        .unwrap();
        let bad = GpRegressor::fit(
            x,
            y,
            SquaredExponential::isotropic(1, 1.0, 0.001).unwrap(),
            1e-4,
        )
        .unwrap();
        assert!(good.log_marginal_likelihood() > bad.log_marginal_likelihood());
    }

    #[test]
    fn batch_prediction_matches_pointwise() {
        let x = grid(8);
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let gp = GpRegressor::fit(
            x.clone(),
            y,
            SquaredExponential::isotropic(1, 1.0, 0.5).unwrap(),
            1e-6,
        )
        .unwrap();
        let queries = vec![vec![0.25], vec![0.75]];
        let batch = gp.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batch) {
            let single = gp.predict(q).unwrap();
            assert_eq!(*b, single);
        }
    }

    #[test]
    fn works_in_natural_units() {
        // Outputs in the thousands: standardization must keep the fit
        // stable and predictions in natural units.
        let x = grid(12);
        let y: Vec<f64> = x.iter().map(|p| 5000.0 + 800.0 * p[0]).collect();
        let gp = GpRegressor::fit(
            x,
            y,
            SquaredExponential::isotropic(1, 1.0, 0.4).unwrap(),
            1e-6,
        )
        .unwrap();
        let (m, _) = gp.predict(&[0.5]).unwrap();
        assert!((m - 5400.0).abs() < 30.0, "mean {m}");
    }
}

use std::error::Error;
use std::fmt;

use linalg::LinalgError;

/// Errors produced by GP construction, fitting, and prediction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training inputs are empty or inconsistent.
    InvalidTrainingData {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A hyper-parameter is out of its admissible range.
    InvalidHyperparameter {
        /// Name of the offending hyper-parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A query point has the wrong dimension.
    DimensionMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Observed dimension.
        got: usize,
    },
    /// The kernel matrix could not be factored even with jitter.
    Factorization(LinalgError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
            GpError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyper-parameter {name} = {value}")
            }
            GpError::DimensionMismatch { expected, got } => {
                write!(f, "query has dimension {got}, model expects {expected}")
            }
            GpError::Factorization(e) => write!(f, "kernel matrix factorization failed: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Factorization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Factorization(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = GpError::InvalidHyperparameter {
            name: "lengthscale",
            value: -1.0,
        };
        assert!(e.to_string().contains("lengthscale"));
        let e = GpError::from(LinalgError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }
}

use std::error::Error;
use std::fmt;

use linalg::LinalgError;

/// Errors produced by GP construction, fitting, and prediction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training inputs are empty or inconsistent.
    InvalidTrainingData {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A hyper-parameter is out of its admissible range.
    InvalidHyperparameter {
        /// Name of the offending hyper-parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A query point has the wrong dimension.
    DimensionMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Observed dimension.
        got: usize,
    },
    /// The kernel matrix could not be factored even with jitter.
    Factorization(LinalgError),
}

impl GpError {
    /// Whether a degraded-mode supervisor may sensibly fall back to a
    /// last-good model after this error.
    ///
    /// Recoverable failures are *data- or conditioning-driven*: the jitter
    /// ladder was exhausted ([`GpError::Factorization`]) or the
    /// hyper-parameter search produced a non-finite value
    /// ([`GpError::InvalidHyperparameter`] with a NaN/inf value). Both can
    /// vanish on the next iteration once more observations arrive, so
    /// serving stale predictions meanwhile is sound. Structural errors —
    /// malformed training data, dimension mismatches, a *finite*
    /// out-of-range hyper-parameter supplied by the caller — are caller
    /// bugs that retrying with an older model cannot fix.
    pub fn is_recoverable(&self) -> bool {
        match self {
            GpError::Factorization(_) => true,
            GpError::InvalidHyperparameter { value, .. } => !value.is_finite(),
            _ => false,
        }
    }
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
            GpError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyper-parameter {name} = {value}")
            }
            GpError::DimensionMismatch { expected, got } => {
                write!(f, "query has dimension {got}, model expects {expected}")
            }
            GpError::Factorization(e) => write!(f, "kernel matrix factorization failed: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Factorization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Factorization(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = GpError::InvalidHyperparameter {
            name: "lengthscale",
            value: -1.0,
        };
        assert!(e.to_string().contains("lengthscale"));
        let e = GpError::from(LinalgError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }

    #[test]
    fn recoverability_splits_numerical_from_structural() {
        assert!(GpError::from(LinalgError::Singular { pivot: 0 }).is_recoverable());
        assert!(GpError::InvalidHyperparameter {
            name: "lengthscale",
            value: f64::NAN,
        }
        .is_recoverable());
        // A finite out-of-range hyper-parameter is a caller bug, not a
        // transient conditioning problem.
        assert!(!GpError::InvalidHyperparameter {
            name: "lengthscale",
            value: -1.0,
        }
        .is_recoverable());
        assert!(!GpError::InvalidTrainingData { reason: "empty" }.is_recoverable());
        assert!(!GpError::DimensionMismatch {
            expected: 2,
            got: 3
        }
        .is_recoverable());
    }
}

//! Covariance functions: stationary base kernels and the transfer kernel
//! of PPATuner §3.1.

use crate::{GpError, Result};

/// A positive-semidefinite covariance function over `R^d`.
///
/// Implementors must be symmetric (`eval(a, b) == eval(b, a)`) and produce
/// PSD Gram matrices; the GP adds observation noise / jitter on top.
pub trait Kernel: Send + Sync {
    /// Covariance between two points.
    ///
    /// # Panics
    ///
    /// May panic if the points do not have the kernel's dimension.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance at a point, `k(x, x)`.
    fn diag(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }

    /// Input dimension the kernel expects.
    fn dim(&self) -> usize;
}

/// Squared-exponential (RBF) kernel with ARD lengthscales:
/// `k(a, b) = σ² · exp(−½ Σ_j ((a_j − b_j)/ℓ_j)²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredExponential {
    signal_var: f64,
    lengthscales: Vec<f64>,
}

impl SquaredExponential {
    /// Creates an ARD kernel with per-dimension lengthscales.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] when `signal_var <= 0`,
    /// any lengthscale is `<= 0`, or `lengthscales` is empty.
    pub fn new(signal_var: f64, lengthscales: Vec<f64>) -> Result<Self> {
        if !(signal_var.is_finite() && signal_var > 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "signal_var",
                value: signal_var,
            });
        }
        if lengthscales.is_empty() {
            return Err(GpError::InvalidTrainingData {
                reason: "kernel needs at least one lengthscale",
            });
        }
        for &l in &lengthscales {
            if !(l.is_finite() && l > 0.0) {
                return Err(GpError::InvalidHyperparameter {
                    name: "lengthscale",
                    value: l,
                });
            }
        }
        Ok(SquaredExponential {
            signal_var,
            lengthscales,
        })
    }

    /// Creates an isotropic kernel (one shared lengthscale in `dim`
    /// dimensions).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SquaredExponential::new`].
    pub fn isotropic(dim: usize, signal_var: f64, lengthscale: f64) -> Result<Self> {
        SquaredExponential::new(signal_var, vec![lengthscale; dim.max(1)])
    }

    /// The signal variance σ².
    pub fn signal_var(&self) -> f64 {
        self.signal_var
    }

    /// The ARD lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.lengthscales.len());
        debug_assert_eq!(b.len(), self.lengthscales.len());
        let mut s = 0.0;
        for ((&x, &y), &l) in a.iter().zip(b).zip(&self.lengthscales) {
            let d = (x - y) / l;
            s += d * d;
        }
        self.signal_var * (-0.5 * s).exp()
    }

    fn dim(&self) -> usize {
        self.lengthscales.len()
    }
}

/// Matérn 5/2 kernel with ARD lengthscales — rougher sample paths than the
/// squared exponential, often a better prior for tool-response surfaces
/// with kinks (effort-level switches).
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52 {
    signal_var: f64,
    lengthscales: Vec<f64>,
}

impl Matern52 {
    /// Creates an ARD Matérn 5/2 kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SquaredExponential::new`].
    pub fn new(signal_var: f64, lengthscales: Vec<f64>) -> Result<Self> {
        // Validation is identical to the SE kernel's.
        let se = SquaredExponential::new(signal_var, lengthscales)?;
        Ok(Matern52 {
            signal_var: se.signal_var,
            lengthscales: se.lengthscales,
        })
    }

    /// The signal variance σ².
    pub fn signal_var(&self) -> f64 {
        self.signal_var
    }

    /// The ARD lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for ((&x, &y), &l) in a.iter().zip(b).zip(&self.lengthscales) {
            let d = (x - y) / l;
            s += d * d;
        }
        let r = (5.0 * s).sqrt();
        self.signal_var * (1.0 + r + r * r / 3.0) * (-r).exp()
    }

    fn dim(&self) -> usize {
        self.lengthscales.len()
    }
}

/// Which task a training/query point belongs to in a transfer setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// The source (historical) task.
    Source,
    /// The target (current) task.
    Target,
}

/// The transfer kernel of PPATuner (Eqs. 5–7).
///
/// The kernel `K(x, x') = k(x, x')·(2e^{−ηφ} − 1)` couples two tasks with a
/// dissimilarity parameter φ (`η = 1` across tasks, `0` within). With a
/// `Gamma(b, a)` prior on φ, integrating φ out gives the closed form
///
/// `K̃(x, x') = k(x, x') · λ` across tasks, `k(x, x')` within,
///
/// where `λ = 2(1/(1+a))^b − 1 ∈ (−1, 1]`. λ near 1 transfers source
/// knowledge almost directly; λ near 0 transfers nothing; λ < 0 exploits
/// anti-correlated tasks.
///
/// # Example
///
/// ```
/// use gp::kernel::{SquaredExponential, TransferKernel, Task, Kernel};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let base = SquaredExponential::isotropic(2, 1.0, 0.5)?;
/// let tk = TransferKernel::from_gamma_prior(base, 0.2, 1.0)?;
/// let x = [0.3, 0.4];
/// let within = tk.eval_task(&x, Task::Source, &x, Task::Source);
/// let across = tk.eval_task(&x, Task::Source, &x, Task::Target);
/// assert!(across < within); // cross-task correlation is attenuated
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransferKernel<K> {
    base: K,
    lambda: f64,
}

impl<K: Kernel> TransferKernel<K> {
    /// Builds the kernel from a Gamma(b, a) prior over the dissimilarity
    /// φ, i.e. with cross-task factor `λ = 2(1/(1+a))^b − 1` (Eq. 7).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] when `a <= 0` or
    /// `b <= 0`.
    pub fn from_gamma_prior(base: K, a: f64, b: f64) -> Result<Self> {
        if !(a.is_finite() && a > 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "a",
                value: a,
            });
        }
        if !(b.is_finite() && b > 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "b",
                value: b,
            });
        }
        let lambda = 2.0 * (1.0 / (1.0 + a)).powf(b) - 1.0;
        Ok(TransferKernel { base, lambda })
    }

    /// Builds the kernel with an explicit cross-task factor
    /// `λ ∈ (−1, 1]` (useful when λ is itself trained).
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] when λ is outside
    /// `(−1, 1]`.
    pub fn with_lambda(base: K, lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > -1.0 && lambda <= 1.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(TransferKernel { base, lambda })
    }

    /// The cross-task correlation factor λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Borrows the base kernel.
    pub fn base(&self) -> &K {
        &self.base
    }

    /// Covariance between two points with task labels (Eq. 7).
    pub fn eval_task(&self, a: &[f64], ta: Task, b: &[f64], tb: Task) -> f64 {
        let k = self.base.eval(a, b);
        if ta == tb {
            k
        } else {
            k * self.lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_kernel_basic_properties() {
        let k = SquaredExponential::isotropic(2, 2.0, 0.5).unwrap();
        let a = [0.1, 0.2];
        let b = [0.4, 0.9];
        assert!((k.eval(&a, &a) - 2.0).abs() < 1e-12);
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
        assert!(k.eval(&a, &b) < k.eval(&a, &a));
        assert_eq!(k.dim(), 2);
    }

    #[test]
    fn se_decays_with_distance() {
        let k = SquaredExponential::isotropic(1, 1.0, 0.3).unwrap();
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[0.9]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = SquaredExponential::new(1.0, vec![0.1, 10.0]).unwrap();
        // Displacement along the short-lengthscale axis decays faster.
        let along_0 = k.eval(&[0.0, 0.0], &[0.5, 0.0]);
        let along_1 = k.eval(&[0.0, 0.0], &[0.0, 0.5]);
        assert!(along_0 < along_1);
    }

    #[test]
    fn kernel_validation() {
        assert!(SquaredExponential::new(0.0, vec![1.0]).is_err());
        assert!(SquaredExponential::new(1.0, vec![-1.0]).is_err());
        assert!(SquaredExponential::new(1.0, vec![]).is_err());
        assert!(Matern52::new(1.0, vec![f64::NAN]).is_err());
    }

    #[test]
    fn matern_rougher_than_se_nearby() {
        let se = SquaredExponential::isotropic(1, 1.0, 0.5).unwrap();
        let m = Matern52::new(1.0, vec![0.5]).unwrap();
        // Both are 1 at zero distance.
        assert!((m.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        // Matérn decays faster at small distances (less smooth).
        let d = 0.05;
        assert!(m.eval(&[0.0], &[d]) < se.eval(&[0.0], &[d]));
    }

    #[test]
    fn transfer_lambda_from_gamma_prior() {
        // a → 0⁺ (prior mass at φ = 0): tasks identical, λ → 1.
        let base = SquaredExponential::isotropic(1, 1.0, 1.0).unwrap();
        let tk = TransferKernel::from_gamma_prior(base.clone(), 1e-9, 1.0).unwrap();
        assert!((tk.lambda() - 1.0).abs() < 1e-6);
        // Large a·b (very dissimilar): λ → −1.
        let tk = TransferKernel::from_gamma_prior(base.clone(), 100.0, 5.0).unwrap();
        assert!(tk.lambda() < -0.99);
        // Eq. 7 closed form at a = 1, b = 1: λ = 2·(1/2) − 1 = 0.
        let tk = TransferKernel::from_gamma_prior(base, 1.0, 1.0).unwrap();
        assert!(tk.lambda().abs() < 1e-12);
    }

    #[test]
    fn transfer_kernel_attenuates_cross_task() {
        let base = SquaredExponential::isotropic(2, 1.5, 0.7).unwrap();
        let tk = TransferKernel::with_lambda(base, 0.6).unwrap();
        let x = [0.2, 0.8];
        let y = [0.3, 0.5];
        let within = tk.eval_task(&x, Task::Source, &y, Task::Source);
        let across = tk.eval_task(&x, Task::Source, &y, Task::Target);
        assert!((across - 0.6 * within).abs() < 1e-12);
        // Within-target equals within-source (same base kernel).
        assert_eq!(tk.eval_task(&x, Task::Target, &y, Task::Target), within);
    }

    #[test]
    fn transfer_kernel_validation() {
        let base = SquaredExponential::isotropic(1, 1.0, 1.0).unwrap();
        assert!(TransferKernel::from_gamma_prior(base.clone(), -1.0, 1.0).is_err());
        assert!(TransferKernel::from_gamma_prior(base.clone(), 1.0, 0.0).is_err());
        assert!(TransferKernel::with_lambda(base.clone(), -1.0).is_err());
        assert!(TransferKernel::with_lambda(base.clone(), 1.5).is_err());
        assert!(TransferKernel::with_lambda(base, 1.0).is_ok());
    }
}

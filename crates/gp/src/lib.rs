//! Gaussian-process regression and the transfer GP of PPATuner.
//!
//! This crate implements, from scratch on top of [`linalg`]:
//!
//! - [`kernel`]: stationary kernels (squared-exponential with ARD,
//!   Matérn 5/2) and the paper's **transfer kernel** (Eqs. 5–7): the
//!   cross-task correlation factor `λ = 2(1/(1+a))^b − 1` obtained by
//!   integrating a `Gamma(b, a)` prior over the task-dissimilarity
//!   parameter φ of `k(x,x')·(2e^{−ηφ} − 1)`;
//! - [`GpRegressor`]: exact GP regression (Eq. 1) with jittered Cholesky
//!   factorization, predictive mean/variance, and the exact log marginal
//!   likelihood;
//! - [`TransferGp`]: the two-task GP of §3.1 (Eq. 8), with per-task noise
//!   `β_s`, `β_t` and per-task output standardization so tasks of
//!   different output scale (e.g. a 3× larger design) remain comparable;
//! - [`optimize`]: a Nelder–Mead simplex minimizer and multi-start
//!   hyper-parameter fitting by maximizing the marginal likelihood.
//!
//! # Example
//!
//! ```
//! use gp::{GpRegressor, kernel::SquaredExponential};
//!
//! # fn main() -> Result<(), gp::GpError> {
//! let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin()).collect();
//! let kernel = SquaredExponential::isotropic(1, 1.0, 0.2)?;
//! let gp = GpRegressor::fit(x, y, kernel, 1e-6)?;
//! let (mean, var) = gp.predict(&[0.5])?;
//! assert!((mean - (3.0f64).sin()).abs() < 0.05);
//! assert!(var >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod counters;
mod error;
mod gp;
pub mod kernel;
pub mod optimize;
mod predict_cache;
pub mod standardize;
mod transfer;

pub use counters::GpCounters;
pub use error::GpError;
pub use gp::GpRegressor;
pub use predict_cache::PredictCache;
pub use transfer::{SubsetPredictor, TaskData, TransferGp, TransferGpConfig, PREDICT_BLOCK};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = GpError> = std::result::Result<T, E>;

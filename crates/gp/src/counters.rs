//! Process-global resource counters for the GP fitting hot paths.
//!
//! Same design as [`linalg::counters`]: one relaxed atomic add per call
//! at call-granularity aggregation points, snapshotted and differenced by
//! consumers (see `obs::Event::ResourceSample`). Deltas are exact for a
//! single-run process and approximate when several runs share it.

use std::sync::atomic::{AtomicU64, Ordering};

pub use linalg::LinalgCounters;

/// Hyperparameter-search objective evaluations served from a
/// [`crate::cache::FitCache`]'s precomputed distance tensor (no data
/// clone, no raw-point kernel rebuild).
pub static FITCACHE_HITS: AtomicU64 = AtomicU64::new(0);

/// Full transfer-GP model constructions from raw data — the path a cache
/// hit avoids (the final build after a search, warm refits, and any
/// legacy clone-per-eval evaluation).
pub static FITCACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Dense joint-kernel matrix assemblies (cache-based or from raw points).
pub static KERNEL_ASSEMBLIES: AtomicU64 = AtomicU64::new(0);

/// Candidate predictions served from a [`crate::PredictCache`] entry
/// (tail-extended solve instead of a from-scratch column).
pub static PREDICT_CACHE_HITS: AtomicU64 = AtomicU64::new(0);

/// Candidate predictions computed from scratch during a cached sweep
/// (first sight of the candidate, or after an invalidating refit).
pub static PREDICT_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cache entries dropped — stale epoch (refit/standardization change) or
/// candidate no longer undecided (classified/pruned since last sweep).
pub static PREDICT_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Chunks dispatched by the data-parallel predict sweep (serial sweeps
/// count their chunks too, so the counter tracks total chunking work).
pub static PREDICT_CHUNKS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn add_fitcache_hits(n: u64) {
    FITCACHE_HITS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_fitcache_misses(n: u64) {
    FITCACHE_MISSES.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_kernel_assemblies(n: u64) {
    KERNEL_ASSEMBLIES.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_predict_cache_hits(n: u64) {
    PREDICT_CACHE_HITS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_predict_cache_misses(n: u64) {
    PREDICT_CACHE_MISSES.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_predict_cache_evictions(n: u64) {
    PREDICT_CACHE_EVICTIONS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_predict_chunks(n: u64) {
    PREDICT_CHUNKS.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of the GP **and** linalg counters, so one
/// snapshot captures the whole surrogate-fitting resource picture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpCounters {
    /// FitCache-served objective evaluations.
    pub fitcache_hits: u64,
    /// Fresh model constructions from raw data.
    pub fitcache_misses: u64,
    /// Dense joint-kernel assemblies.
    pub kernel_assemblies: u64,
    /// PredictCache-served candidate predictions.
    pub predict_cache_hits: u64,
    /// From-scratch candidate predictions during cached sweeps.
    pub predict_cache_misses: u64,
    /// PredictCache entries dropped (stale epoch or pruned candidate).
    pub predict_cache_evictions: u64,
    /// Chunks dispatched by the predict sweep.
    pub predict_chunks: u64,
    /// The underlying linear-algebra counters.
    pub linalg: LinalgCounters,
}

impl GpCounters {
    /// Reads the current counter values.
    pub fn snapshot() -> Self {
        GpCounters {
            fitcache_hits: FITCACHE_HITS.load(Ordering::Relaxed),
            fitcache_misses: FITCACHE_MISSES.load(Ordering::Relaxed),
            kernel_assemblies: KERNEL_ASSEMBLIES.load(Ordering::Relaxed),
            predict_cache_hits: PREDICT_CACHE_HITS.load(Ordering::Relaxed),
            predict_cache_misses: PREDICT_CACHE_MISSES.load(Ordering::Relaxed),
            predict_cache_evictions: PREDICT_CACHE_EVICTIONS.load(Ordering::Relaxed),
            predict_chunks: PREDICT_CHUNKS.load(Ordering::Relaxed),
            linalg: LinalgCounters::snapshot(),
        }
    }

    /// Counter increments since `earlier` (saturating).
    pub fn since(&self, earlier: &GpCounters) -> GpCounters {
        GpCounters {
            fitcache_hits: self.fitcache_hits.saturating_sub(earlier.fitcache_hits),
            fitcache_misses: self.fitcache_misses.saturating_sub(earlier.fitcache_misses),
            kernel_assemblies: self
                .kernel_assemblies
                .saturating_sub(earlier.kernel_assemblies),
            predict_cache_hits: self
                .predict_cache_hits
                .saturating_sub(earlier.predict_cache_hits),
            predict_cache_misses: self
                .predict_cache_misses
                .saturating_sub(earlier.predict_cache_misses),
            predict_cache_evictions: self
                .predict_cache_evictions
                .saturating_sub(earlier.predict_cache_evictions),
            predict_chunks: self.predict_chunks.saturating_sub(earlier.predict_chunks),
            linalg: self.linalg.since(&earlier.linalg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskData, TransferGp, TransferGpConfig};

    #[test]
    fn fit_and_cache_paths_advance_counters() {
        let tx: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ty: Vec<f64> = tx.iter().map(|p| (3.0 * p[0]).sin()).collect();
        let target = TaskData::new(tx, ty);
        let source = TaskData::default();
        let cfg = TransferGpConfig::default_for_dim(1);

        let before = GpCounters::snapshot();
        let _model = TransferGp::fit(source.clone(), target.clone(), cfg.clone()).unwrap();
        let cache = crate::cache::FitCache::new(&source, &target, 1).unwrap();
        assert!(cache.objective(&cfg).is_finite());
        let delta = GpCounters::snapshot().since(&before);
        // Lower bounds only: other tests in this binary share the globals.
        assert!(delta.fitcache_misses >= 1, "{delta:?}");
        assert!(delta.fitcache_hits >= 1, "{delta:?}");
        assert!(delta.kernel_assemblies >= 2, "{delta:?}");
        assert!(delta.linalg.chol_flops >= 1, "{delta:?}");
    }
}

//! Distance-cached hyper-parameter search support.
//!
//! The Nelder–Mead MAP objective evaluates the transfer-GP conditional
//! likelihood hundreds of times per fit, and every candidate θ shares the
//! same training inputs: only the lengthscales re-weight the pairwise
//! distances, and only the scalar factors (signal variance, λ, noises)
//! scale the result. [`FitCache`] exploits that by precomputing the
//! per-dimension pairwise squared-difference tensor over the joint
//! source+target point set **once per fit call**, together with the
//! θ-independent standardized outputs, and then re-assembling the
//! (N+M)² kernel from the cache per candidate: a dot product and one
//! `exp` per upper-triangle entry, mirrored by symmetry, with no data
//! cloning, no re-validation, and no per-point kernel dispatch.

use linalg::{Cholesky, Matrix};

use crate::standardize::Standardizer;
use crate::transfer::{TaskData, TransferGpConfig};
use crate::{GpError, Result};

/// Precomputed, θ-independent state of one transfer-GP fitting problem.
///
/// Borrows the task data for the lifetime of the search — no clones per
/// objective evaluation. Construction performs the same validation as
/// [`crate::TransferGp::fit`], so a successful `FitCache::new` guarantees
/// every later [`FitCache::objective`] failure is numerical (a
/// non-positive-definite kernel), matching the search's treatment of
/// failed candidates as infinitely bad.
#[derive(Debug)]
pub struct FitCache<'a> {
    source: &'a TaskData,
    target: &'a TaskData,
    dim: usize,
    /// Source observation count; joint points `[0, n)` are source-task.
    n: usize,
    /// Total joint point count (source + target).
    p: usize,
    /// Pair-major squared differences: for upper-triangle pair index `q`
    /// (row-major over `i ≤ j`), `d2[q·dim .. (q+1)·dim]` holds
    /// `(x_i[t] − x_j[t])²` per input dimension `t`.
    d2: Vec<f64>,
    /// Standardized joint outputs (θ-independent).
    z_joint: Vec<f64>,
}

impl<'a> FitCache<'a> {
    /// Builds the cache: validates the data once and precomputes the
    /// pairwise squared-difference tensor over the joint point set.
    ///
    /// # Errors
    ///
    /// The data-validation errors of [`crate::TransferGp::fit`]:
    /// [`GpError::InvalidTrainingData`] and [`GpError::DimensionMismatch`].
    pub fn new(source: &'a TaskData, target: &'a TaskData, dim: usize) -> Result<Self> {
        if target.is_empty() {
            return Err(GpError::InvalidTrainingData {
                reason: "target task needs at least one observation",
            });
        }
        if source.x.len() != source.y.len() || target.x.len() != target.y.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        if dim == 0 {
            return Err(GpError::InvalidTrainingData {
                reason: "kernel needs at least one lengthscale",
            });
        }
        for row in source.x.iter().chain(target.x.iter()) {
            if row.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::InvalidTrainingData {
                    reason: "training inputs must be finite",
                });
            }
        }
        if source.y.iter().chain(&target.y).any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData {
                reason: "training outputs must be finite",
            });
        }

        let n = source.len();
        let p = n + target.len();
        let point = |i: usize| -> &[f64] {
            if i < n {
                &source.x[i]
            } else {
                &target.x[i - n]
            }
        };
        let mut d2 = Vec::with_capacity(p * (p + 1) / 2 * dim);
        for i in 0..p {
            let xi = point(i);
            for j in i..p {
                let xj = point(j);
                for t in 0..dim {
                    let d = xi[t] - xj[t];
                    d2.push(d * d);
                }
            }
        }

        let std_source = if source.is_empty() {
            Standardizer::identity()
        } else {
            Standardizer::fit(&source.y)
        };
        let std_target = Standardizer::fit(&target.y);
        let mut z_joint = Vec::with_capacity(p);
        z_joint.extend(source.y.iter().map(|&v| std_source.transform(v)));
        z_joint.extend(target.y.iter().map(|&v| std_target.transform(v)));

        Ok(FitCache {
            source,
            target,
            dim,
            n,
            p,
            d2,
            z_joint,
        })
    }

    /// The borrowed source task.
    pub fn source(&self) -> &'a TaskData {
        self.source
    }

    /// The borrowed target task.
    pub fn target(&self) -> &'a TaskData {
        self.target
    }

    /// Assembles the joint transfer kernel matrix `K̃` (Eq. 7; **without**
    /// the noise diagonal) at the given hyper-parameters from the cached
    /// distances: each upper-triangle entry is
    /// `σ²·exp(−½ Σ_t d²_t/ℓ_t²)` (×λ across tasks), mirrored to the
    /// lower triangle by symmetry.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] for out-of-range
    /// hyper-parameters (the same ranges [`crate::TransferGp::fit`]
    /// enforces through its kernel constructors).
    pub fn joint_kernel(&self, config: &TransferGpConfig) -> Result<Matrix> {
        if config.lengthscales.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                got: config.lengthscales.len(),
            });
        }
        if !(config.signal_var.is_finite() && config.signal_var > 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "signal_var",
                value: config.signal_var,
            });
        }
        for &l in &config.lengthscales {
            if !(l.is_finite() && l > 0.0) {
                return Err(GpError::InvalidHyperparameter {
                    name: "lengthscale",
                    value: l,
                });
            }
        }
        if !(config.lambda.is_finite() && config.lambda > -1.0 && config.lambda <= 1.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "lambda",
                value: config.lambda,
            });
        }
        crate::counters::add_kernel_assemblies(1);
        let inv_l2: Vec<f64> = config.lengthscales.iter().map(|&l| 1.0 / (l * l)).collect();
        let (n, p, dim) = (self.n, self.p, self.dim);
        let mut k = Matrix::zeros(p, p);
        let mut pair = 0usize;
        for i in 0..p {
            for j in i..p {
                let d2 = &self.d2[pair * dim..(pair + 1) * dim];
                pair += 1;
                let mut s = 0.0;
                for (d, w) in d2.iter().zip(&inv_l2) {
                    s += d * w;
                }
                let mut v = config.signal_var * (-0.5 * s).exp();
                // With i ≤ j and source points first, the cross-task
                // pairs are exactly i < n ≤ j.
                if i < n && j >= n {
                    v *= config.lambda;
                }
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        Ok(k)
    }

    /// The search objective at one candidate θ: the **negative** log
    /// conditional likelihood `−log p(y_T | y_S, θ)` of the standardized
    /// data (the caller adds its hyper-prior terms). Returns `+∞` when the
    /// hyper-parameters are out of range or the kernel cannot be factored
    /// even with jitter escalation — exactly how the clone-per-eval path
    /// treated infeasible candidates.
    pub fn objective(&self, config: &TransferGpConfig) -> f64 {
        crate::counters::add_fitcache_hits(1);
        match self.neg_log_conditional(config) {
            Ok(v) if !v.is_nan() => v,
            _ => f64::INFINITY,
        }
    }

    fn neg_log_conditional(&self, config: &TransferGpConfig) -> Result<f64> {
        for v in [config.noise_source, config.noise_target] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(GpError::InvalidHyperparameter {
                    name: "noise",
                    value: v,
                });
            }
        }
        let mut k = self.joint_kernel(config)?;
        let n = self.n;
        for i in 0..self.p {
            let noise = if i < n {
                config.noise_source
            } else {
                config.noise_target
            };
            k[(i, i)] += noise;
        }
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        let (chol, _) = Cholesky::new_with_jitter(&k, 1e-10, 12)?;
        let alpha = chol.solve_vec(&self.z_joint)?;
        let lml = -0.5 * linalg::vecops::dot(&self.z_joint, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * self.p as f64 * ln_2pi;
        let source_lml = if n == 0 {
            0.0
        } else {
            let k_ss = k.submatrix(0, n, 0, n);
            let (chol_s, _) = Cholesky::new_with_jitter(&k_ss, 1e-10, 12)?;
            let z_s = &self.z_joint[..n];
            let alpha_s = chol_s.solve_vec(z_s)?;
            -0.5 * linalg::vecops::dot(z_s, &alpha_s)
                - 0.5 * chol_s.log_det()
                - 0.5 * n as f64 * ln_2pi
        };
        Ok(-(lml - source_lml))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Task, TransferKernel};
    use crate::TransferGp;

    fn problem() -> (TaskData, TaskData, TransferGpConfig) {
        let f = |x: &[f64]| (4.0 * x[0]).sin() + 0.5 * x[1];
        let sx: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 / 11.0, (i as f64 * 0.37) % 1.0])
            .collect();
        let sy: Vec<f64> = sx.iter().map(|p| 2.0 * f(p) + 0.3).collect();
        let tx: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![(i as f64 * 0.21) % 1.0, i as f64 / 4.0])
            .collect();
        let ty: Vec<f64> = tx.iter().map(|p| f(p)).collect();
        let cfg = TransferGpConfig {
            lengthscales: vec![0.3, 0.7],
            signal_var: 1.2,
            lambda: 0.6,
            noise_source: 1e-3,
            noise_target: 2e-3,
        };
        (TaskData::new(sx, sy), TaskData::new(tx, ty), cfg)
    }

    #[test]
    fn joint_kernel_matches_direct_evaluation() {
        let (source, target, cfg) = problem();
        let cache = FitCache::new(&source, &target, 2).unwrap();
        let k = cache.joint_kernel(&cfg).unwrap();
        let base = crate::kernel::SquaredExponential::new(cfg.signal_var, cfg.lengthscales.clone())
            .unwrap();
        let kernel = TransferKernel::with_lambda(base, cfg.lambda).unwrap();
        let n = source.len();
        let point = |i: usize| -> (&[f64], Task) {
            if i < n {
                (&source.x[i], Task::Source)
            } else {
                (&target.x[i - n], Task::Target)
            }
        };
        let p = n + target.len();
        for i in 0..p {
            for j in 0..p {
                let (a, ta) = point(i);
                let (b, tb) = point(j);
                let direct = kernel.eval_task(a, ta, b, tb);
                assert!(
                    (k[(i, j)] - direct).abs() <= 1e-12 * direct.abs().max(1.0),
                    "entry ({i},{j}): cached {} vs direct {direct}",
                    k[(i, j)]
                );
            }
        }
    }

    #[test]
    fn objective_matches_clone_per_eval_path() {
        let (source, target, cfg) = problem();
        let cache = FitCache::new(&source, &target, 2).unwrap();
        let model = TransferGp::fit(source.clone(), target.clone(), cfg.clone()).unwrap();
        let direct = -model.log_conditional_likelihood();
        let cached = cache.objective(&cfg);
        assert!(
            (cached - direct).abs() <= 1e-9 * direct.abs().max(1.0),
            "cached {cached} vs direct {direct}"
        );
    }

    #[test]
    fn objective_is_infinite_for_invalid_hyperparameters() {
        let (source, target, cfg) = problem();
        let cache = FitCache::new(&source, &target, 2).unwrap();
        for bad in [
            TransferGpConfig {
                signal_var: -1.0,
                ..cfg.clone()
            },
            TransferGpConfig {
                lambda: 1.5,
                ..cfg.clone()
            },
            TransferGpConfig {
                noise_target: f64::NAN,
                ..cfg.clone()
            },
            TransferGpConfig {
                lengthscales: vec![0.3],
                ..cfg
            },
        ] {
            assert_eq!(cache.objective(&bad), f64::INFINITY);
        }
    }

    #[test]
    fn construction_validates_data() {
        let (source, target, _) = problem();
        assert!(FitCache::new(&source, &TaskData::default(), 2).is_err());
        assert!(FitCache::new(&source, &target, 3).is_err());
        assert!(FitCache::new(&source, &target, 0).is_err());
        let ragged = TaskData::new(vec![vec![0.1, 0.2]], vec![1.0, 2.0]);
        assert!(FitCache::new(&ragged, &target, 2).is_err());
        let nan = TaskData::new(vec![vec![f64::NAN, 0.0]], vec![1.0]);
        assert!(FitCache::new(&nan, &target, 2).is_err());
        // Empty source is fine (no-transfer case).
        let empty = TaskData::default();
        let cache = FitCache::new(&empty, &target, 2).unwrap();
        let cfg = TransferGpConfig::default_for_dim(2);
        assert!(cache.objective(&cfg).is_finite());
    }
}

//! Hyper-parameter optimization: a Nelder–Mead simplex minimizer and
//! multi-start marginal-likelihood training for the transfer GP.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cache::FitCache;
use crate::transfer::{TaskData, TransferGp, TransferGpConfig};
use crate::Result;

/// Options of the Nelder–Mead simplex minimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 200,
            f_tol: 1e-8,
            initial_step: 0.5,
        }
    }
}

/// Minimizes `f` from `x0` with the Nelder–Mead simplex method.
///
/// Returns the best point and its objective value. Objective values that
/// are NaN are treated as `+∞`, so `f` may signal infeasibility that way.
///
/// # Example
///
/// ```
/// use gp::optimize::{nelder_mead, NelderMeadOptions};
///
/// let (x, fx) = nelder_mead(
///     |p| (p[0] - 2.0).powi(2) + (p[1] + 1.0).powi(2),
///     &[0.0, 0.0],
///     NelderMeadOptions::default(),
/// );
/// assert!((x[0] - 2.0).abs() < 1e-3 && (x[1] + 1.0).abs() < 1e-3);
/// assert!(fx < 1e-6);
/// ```
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: NelderMeadOptions,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert!(n > 0, "nelder_mead needs at least one coordinate");
    let clean = |v: f64| if v.is_nan() { f64::INFINITY } else { v };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += opts.initial_step;
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex.iter().map(|p| clean(f(p))).collect();
    let mut evals = simplex.len();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    while evals < opts.max_evals {
        // Order the simplex.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];
        if (values[worst] - values[best]).abs() < opts.f_tol {
            break;
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for &i in &order[..n] {
            for (c, &x) in centroid.iter_mut().zip(&simplex[i]) {
                *c += x / n as f64;
            }
        }

        let lerp = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(&c, &w)| c + t * (c - w))
                .collect()
        };

        // Reflection.
        let xr = lerp(alpha);
        let fr = clean(f(&xr));
        evals += 1;
        if fr < values[best] {
            // Expansion.
            let xe = lerp(gamma);
            let fe = clean(f(&xe));
            evals += 1;
            if fe < fr {
                simplex[worst] = xe;
                values[worst] = fe;
            } else {
                simplex[worst] = xr;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = xr;
            values[worst] = fr;
        } else {
            // Contraction.
            let xc = lerp(-rho);
            let fc = clean(f(&xc));
            evals += 1;
            if fc < values[worst] {
                simplex[worst] = xc;
                values[worst] = fc;
            } else {
                // Shrink toward the best point.
                let best_point = simplex[best].clone();
                for i in 0..=n {
                    if i == best {
                        continue;
                    }
                    for (x, &b) in simplex[i].iter_mut().zip(&best_point) {
                        *x = b + sigma * (*x - b);
                    }
                    values[i] = clean(f(&simplex[i]));
                    evals += 1;
                }
            }
        }
    }

    let mut best_i = 0;
    for i in 1..values.len() {
        if values[i] < values[best_i] {
            best_i = i;
        }
    }
    (simplex.swap_remove(best_i), values[best_i])
}

/// Budget of the transfer-GP hyper-parameter search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitBudget {
    /// Random multi-start restarts.
    pub restarts: usize,
    /// Nelder–Mead evaluations per restart.
    pub evals_per_restart: usize,
}

impl Default for FitBudget {
    fn default() -> Self {
        FitBudget {
            restarts: 3,
            evals_per_restart: 120,
        }
    }
}

/// Internal: negative log of a log-normal(ln 0.5, 0.75) prior over the
/// lengthscales (up to a constant).
fn lengthscale_penalty(lengthscales: &[f64]) -> f64 {
    let mu = 0.5f64.ln();
    let sigma = 0.75;
    lengthscales
        .iter()
        .map(|&l| {
            let d = l.ln() - mu;
            d * d / (2.0 * sigma * sigma)
        })
        .sum()
}

/// Internal: decode an unconstrained optimizer vector into a config.
fn decode(theta: &[f64], dim: usize) -> TransferGpConfig {
    let ls: Vec<f64> = theta[..dim]
        .iter()
        .map(|&t| t.exp().clamp(1e-3, 1e3))
        .collect();
    TransferGpConfig {
        lengthscales: ls,
        signal_var: theta[dim].exp().clamp(1e-6, 1e4),
        lambda: theta[dim + 1].tanh().clamp(-0.999, 0.999),
        noise_source: theta[dim + 2].exp().clamp(1e-8, 1.0),
        noise_target: theta[dim + 3].exp().clamp(1e-8, 1.0),
    }
}

/// How much work a [`fit_transfer_gp_reported`] call actually did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Multi-start restarts executed.
    pub restarts: usize,
    /// MAP-objective evaluations consumed across all restarts.
    pub evals: usize,
    /// Objective evaluations served from the precomputed distance cache
    /// (no data clone, no raw-point kernel rebuild).
    pub cached_evals: usize,
    /// Full `TransferGp::fit` constructions from raw data (the final
    /// model build after the search picks a winner).
    pub fresh_evals: usize,
    /// Best (lowest) MAP objective value found.
    pub best_objective: f64,
    /// Log marginal likelihood of the returned model.
    pub log_marginal: f64,
    /// Diagonal jitter the returned model's factorization needed.
    pub jitter: f64,
}

/// Draws the multi-start initial points for a transfer-GP search:
/// restart 0 is a deterministic sensible default, later restarts are
/// randomized from `rng` (same stream as the sequential search always
/// used). Drawing the starts **up front** is what lets restarts — and
/// whole per-objective fits in the tuner — run on worker threads while
/// staying bit-reproducible at any thread count: the RNG is consumed
/// sequentially here, never inside a thread.
pub fn restart_starts<R: Rng + ?Sized>(dim: usize, restarts: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..restarts.max(1))
        .map(|restart| {
            if restart == 0 {
                let mut v = vec![(0.4f64).ln(); dim];
                v.push(0.0); // signal_var = 1
                v.push(1.0); // λ = tanh(1) ≈ 0.76
                v.push((1e-3f64).ln());
                v.push((1e-3f64).ln());
                v
            } else {
                let mut v: Vec<f64> = (0..dim)
                    .map(|_| rng.gen_range(-2.0..0.5)) // ℓ ∈ [e⁻², e^0.5]
                    .collect();
                v.push(rng.gen_range(-1.0..1.0));
                v.push(rng.gen_range(-1.5..1.5));
                v.push(rng.gen_range(-9.0..-2.0));
                v.push(rng.gen_range(-9.0..-2.0));
                v
            }
        })
        .collect()
}

/// Runs the multi-start search from pre-drawn initial points (see
/// [`restart_starts`]), optionally spreading restarts across `threads`
/// scoped worker threads.
///
/// Every objective evaluation goes through a [`FitCache`] built once per
/// call: candidate kernels are re-weighted from the cached pairwise
/// squared-difference tensor instead of cloning the data and rebuilding
/// from raw points. Restarts are independent (each Nelder–Mead run owns
/// its simplex and eval counter) and the winner is selected in restart
/// order with a first-wins tie-break, so the result is bit-identical for
/// any `threads` value.
///
/// # Errors
///
/// Propagates data-validation errors and fitting errors of the final
/// model (the search treats failed factorizations as infinitely bad).
///
/// # Panics
///
/// Panics when `starts` is empty.
pub fn fit_transfer_gp_from_starts(
    source: &TaskData,
    target: &TaskData,
    dim: usize,
    budget: FitBudget,
    starts: &[Vec<f64>],
    threads: usize,
) -> Result<(TransferGp, FitReport)> {
    assert!(!starts.is_empty(), "need at least one restart start");
    let cache = FitCache::new(source, target, dim)?;
    let opts = NelderMeadOptions {
        max_evals: budget.evals_per_restart,
        ..Default::default()
    };
    let run_restart = |x0: &[f64]| -> (Vec<f64>, f64, usize) {
        let evals = std::cell::Cell::new(0usize);
        let (theta, value) = nelder_mead(
            |theta| {
                evals.set(evals.get() + 1);
                let cfg = decode(theta, dim);
                // MAP objective: a log-normal prior on the lengthscales
                // keeps the few-shot fit from collapsing onto noise.
                cache.objective(&cfg) + lengthscale_penalty(&cfg.lengthscales)
            },
            x0,
            opts,
        );
        (theta, value, evals.get())
    };

    let workers = threads.max(1).min(starts.len());
    let results: Vec<(Vec<f64>, f64, usize)> = if workers <= 1 {
        starts.iter().map(|x0| run_restart(x0)).collect()
    } else {
        let mut slots: Vec<Option<(Vec<f64>, f64, usize)>> = vec![None; starts.len()];
        let chunk = starts.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let run_restart = &run_restart;
            for (out, xs) in slots.chunks_mut(chunk).zip(starts.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, x0) in out.iter_mut().zip(xs) {
                        *slot = Some(run_restart(x0));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every restart slot is filled"))
            .collect()
    };

    // Best-of selection in restart order (ties keep the earlier restart),
    // exactly as the sequential loop always resolved them.
    let mut best_theta: Option<(Vec<f64>, f64)> = None;
    let mut total_evals = 0usize;
    for (theta, value, evals) in results {
        total_evals += evals;
        match &best_theta {
            Some((_, bv)) if *bv <= value => {}
            _ => best_theta = Some((theta, value)),
        }
    }
    let (theta, best_objective) = best_theta.expect("at least one restart ran");
    let model = TransferGp::fit(source.clone(), target.clone(), decode(&theta, dim))?;
    let report = FitReport {
        restarts: starts.len(),
        evals: total_evals,
        cached_evals: total_evals,
        fresh_evals: 1,
        best_objective,
        log_marginal: model.log_marginal_likelihood(),
        jitter: model.jitter(),
    };
    Ok((model, report))
}

/// Trains a [`TransferGp`] by maximizing the log marginal likelihood of
/// the **target** data conditioned on the source (the paper's training
/// objective) over ARD lengthscales, signal variance, cross-task factor
/// λ, and per-task noises, with multi-start Nelder–Mead.
///
/// `dim` is the input dimension; `rng` drives the restart initialization
/// (pass a seeded RNG for reproducibility).
///
/// # Errors
///
/// Propagates fitting errors of the final model (the search itself treats
/// failed factorizations as infinitely bad candidates).
pub fn fit_transfer_gp<R: Rng + ?Sized>(
    source: &TaskData,
    target: &TaskData,
    dim: usize,
    budget: FitBudget,
    rng: &mut R,
) -> Result<TransferGp> {
    fit_transfer_gp_reported(source, target, dim, budget, rng).map(|(model, _)| model)
}

/// Like [`fit_transfer_gp`], but also returns a [`FitReport`] describing
/// the budget actually consumed — for observability sinks and budget
/// tuning.
///
/// # Errors
///
/// Same as [`fit_transfer_gp`].
pub fn fit_transfer_gp_reported<R: Rng + ?Sized>(
    source: &TaskData,
    target: &TaskData,
    dim: usize,
    budget: FitBudget,
    rng: &mut R,
) -> Result<(TransferGp, FitReport)> {
    let starts = restart_starts(dim, budget.restarts, rng);
    fit_transfer_gp_from_starts(source, target, dim, budget, &starts, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let (x, fx) = nelder_mead(
            |p| p.iter().map(|v| (v - 1.0) * (v - 1.0)).sum(),
            &[5.0, -3.0, 0.0],
            NelderMeadOptions {
                max_evals: 500,
                ..Default::default()
            },
        );
        for v in &x {
            assert!((v - 1.0).abs() < 1e-2, "{x:?}");
        }
        assert!(fx < 1e-3);
    }

    #[test]
    fn nelder_mead_minimizes_rosenbrock_2d() {
        let rosen = |p: &[f64]| {
            let (a, b) = (p[0], p[1]);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let (x, fx) = nelder_mead(
            rosen,
            &[-1.0, 1.0],
            NelderMeadOptions {
                max_evals: 2000,
                f_tol: 1e-12,
                initial_step: 0.5,
            },
        );
        assert!(fx < 1e-3, "f={fx} at {x:?}");
    }

    #[test]
    fn nelder_mead_handles_nan_objective() {
        // NaN outside the unit disc; optimum at origin is reachable.
        let (x, fx) = nelder_mead(
            |p| {
                let r2 = p[0] * p[0] + p[1] * p[1];
                if r2 > 1.0 {
                    f64::NAN
                } else {
                    r2
                }
            },
            &[0.4, 0.3],
            NelderMeadOptions {
                max_evals: 300,
                ..Default::default()
            },
        );
        assert!(fx < 1e-3, "f={fx} at {x:?}");
    }

    #[test]
    fn decode_clamps_ranges() {
        let cfg = decode(&[100.0, 100.0, 100.0, 100.0, 100.0], 1);
        assert!(cfg.lengthscales[0] <= 1e3);
        assert!(cfg.signal_var <= 1e4);
        assert!(cfg.lambda <= 0.999);
        assert!(cfg.noise_source <= 1.0);
        let cfg = decode(&[-100.0, -100.0, -100.0, -100.0, -100.0], 1);
        assert!(cfg.lengthscales[0] >= 1e-3);
        assert!(cfg.lambda >= -0.999);
        assert!(cfg.noise_target >= 1e-8);
    }

    #[test]
    fn fit_recovers_positive_transfer() {
        // Source and target are the same function: training should pick a
        // clearly positive λ.
        let f = |x: f64| (4.0 * x).sin();
        let source = TaskData::new(
            (0..25).map(|i| vec![i as f64 / 24.0]).collect(),
            (0..25).map(|i| f(i as f64 / 24.0)).collect(),
        );
        let target = TaskData::new(
            vec![vec![0.1], vec![0.4], vec![0.7], vec![1.0]],
            vec![f(0.1), f(0.4), f(0.7), f(1.0)],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let model = fit_transfer_gp(
            &source,
            &target,
            1,
            FitBudget {
                restarts: 2,
                evals_per_restart: 150,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            model.lambda() > 0.3,
            "expected positive transfer, got λ = {}",
            model.lambda()
        );
        // And the fit should predict well off the target observations.
        let (m, _) = model.predict(&[0.25]).unwrap();
        assert!((m - f(0.25)).abs() < 0.2, "mean {m} vs {}", f(0.25));
    }

    #[test]
    fn reported_fit_accounts_for_budget() {
        let f = |x: f64| (4.0 * x).sin();
        let source = TaskData::new(
            (0..20).map(|i| vec![i as f64 / 19.0]).collect(),
            (0..20).map(|i| f(i as f64 / 19.0)).collect(),
        );
        let target = TaskData::new(
            vec![vec![0.1], vec![0.5], vec![0.9]],
            vec![f(0.1), f(0.5), f(0.9)],
        );
        let budget = FitBudget {
            restarts: 2,
            evals_per_restart: 40,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let (model, report) =
            fit_transfer_gp_reported(&source, &target, 1, budget, &mut rng).unwrap();
        assert_eq!(report.restarts, 2);
        // Each restart consumes at least the initial simplex (dim + 5
        // points) and at most the per-restart cap plus one last shrink
        // round's overshoot.
        assert!(report.evals >= 2 * 6, "evals {}", report.evals);
        assert!(report.evals <= 2 * (40 + 6), "evals {}", report.evals);
        assert!(report.best_objective.is_finite());
        assert!((report.log_marginal - model.log_marginal_likelihood()).abs() < 1e-12);
        assert!(report.jitter >= 0.0);

        // The plain entry point must agree with the reported one.
        let mut rng2 = StdRng::seed_from_u64(1);
        let plain = fit_transfer_gp(&source, &target, 1, budget, &mut rng2).unwrap();
        assert_eq!(plain.config(), model.config());
    }

    #[test]
    fn search_is_thread_count_invariant() {
        let f = |x: f64| (4.0 * x).sin();
        let source = TaskData::new(
            (0..20).map(|i| vec![i as f64 / 19.0]).collect(),
            (0..20).map(|i| f(i as f64 / 19.0)).collect(),
        );
        let target = TaskData::new(
            vec![vec![0.1], vec![0.5], vec![0.9]],
            vec![f(0.1), f(0.5), f(0.9)],
        );
        let budget = FitBudget {
            restarts: 5,
            evals_per_restart: 60,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let starts = restart_starts(1, budget.restarts, &mut rng);

        let (m1, r1) =
            fit_transfer_gp_from_starts(&source, &target, 1, budget, &starts, 1).unwrap();
        for threads in [2, 4, 16] {
            let (mt, rt) =
                fit_transfer_gp_from_starts(&source, &target, 1, budget, &starts, threads).unwrap();
            assert_eq!(m1.config(), mt.config(), "threads={threads}");
            assert_eq!(r1, rt, "threads={threads}");
        }

        // And the RNG-drawing entry point matches the pre-drawn path.
        let mut rng2 = StdRng::seed_from_u64(7);
        let (m2, r2) = fit_transfer_gp_reported(&source, &target, 1, budget, &mut rng2).unwrap();
        assert_eq!(m1.config(), m2.config());
        assert_eq!(r1, r2);
    }

    #[test]
    fn report_counts_cached_and_fresh_evals() {
        let f = |x: f64| x * x;
        let source = TaskData::new(
            (0..10).map(|i| vec![i as f64 / 9.0]).collect(),
            (0..10).map(|i| f(i as f64 / 9.0)).collect(),
        );
        let target = TaskData::new(vec![vec![0.2], vec![0.8]], vec![f(0.2), f(0.8)]);
        let budget = FitBudget {
            restarts: 2,
            evals_per_restart: 30,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (_, report) = fit_transfer_gp_reported(&source, &target, 1, budget, &mut rng).unwrap();
        // The search itself never constructs a model from raw data: every
        // objective evaluation runs off the distance cache, and only the
        // winning θ is fit for real.
        assert_eq!(report.cached_evals, report.evals);
        assert_eq!(report.fresh_evals, 1);
        assert!(report.evals > 0);
    }

    #[test]
    fn restart_starts_first_is_deterministic_default() {
        let mut rng = StdRng::seed_from_u64(0);
        let starts = restart_starts(2, 0, &mut rng);
        assert_eq!(starts.len(), 1, "restarts are clamped to at least one");
        let ln04 = (0.4f64).ln();
        let ln1e3 = (1e-3f64).ln();
        assert_eq!(starts[0], vec![ln04, ln04, 0.0, 1.0, ln1e3, ln1e3]);
    }

    #[test]
    fn fit_detects_unrelated_tasks() {
        // Source is pure noise w.r.t. the target function: λ should stay
        // small in magnitude (the model declines to transfer).
        let source = TaskData::new(
            (0..25).map(|i| vec![i as f64 / 24.0]).collect(),
            (0..25)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let f = |x: f64| x;
        let target = TaskData::new(
            (0..8).map(|i| vec![i as f64 / 7.0]).collect(),
            (0..8).map(|i| f(i as f64 / 7.0)).collect(),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let model = fit_transfer_gp(
            &source,
            &target,
            1,
            FitBudget {
                restarts: 3,
                evals_per_restart: 150,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            model.lambda().abs() < 0.6,
            "unrelated tasks should get weak transfer, got λ = {}",
            model.lambda()
        );
    }
}
